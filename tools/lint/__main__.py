"""``python -m tools.lint`` entry point."""

from __future__ import annotations

import sys

from tools.lint.engine import main

if __name__ == "__main__":
    sys.exit(main())
