"""Intraprocedural dataflow for the concurrency/lifetime lint rules.

The per-node visitors of R001–R008 ask "is this call shaped right?";
the rules built on this module (R009–R013) ask questions that need
*context*: which lock is held at this write, which class owns the
attribute behind this expression, does this loop consult its deadline.
The machinery is deliberately CFG-lite — statement-ordered walks with
a held-guard stack, per-class symbol tables, and annotation-driven
type inference — because that is exactly enough to encode the
invariants the threaded daemon relies on, with zero false positives
on idiomatic code.

Building blocks:

* :func:`parse_guard_comments` / :class:`ClassInfo` /
  :class:`ModuleIndex` — symbol tables.  A ``# guarded-by: _lock``
  comment on an attribute's initializing assignment declares that
  every later write to the attribute must happen inside
  ``with <owner>.<guard>:``.
* :func:`annotation_class_name` / :func:`function_env` /
  :func:`base_class_of` — lightweight type inference from parameter
  annotations and constructor calls, so cross-object writes
  (``plan.read_ops += 1``) resolve to the class whose guard table
  applies.
* :func:`iter_guarded` — the held-guard walk: yields every node of a
  function body together with the set of guard keys acquired by
  enclosing ``with`` statements.
* deadline helpers (:func:`deadline_param_name`,
  :func:`consults_deadline`, :func:`consulting_local_functions`) for
  the loop-budget rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence, Union

from tools.lint.engine import SourceFile

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: ``# guarded-by: _lock`` on an attribute's initializing assignment.
GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_.]*)")

#: Method calls that mutate their receiver (list/set/dict/deque and
#: ``random.Random`` state) — a call on a guarded attribute counts as
#: a write to it.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "appendleft",
    "popleft", "sort", "reverse",
    # random.Random: every draw advances the generator state.
    "random", "randrange", "randint", "getrandbits", "shuffle",
    "choice", "choices", "sample", "uniform", "gauss", "normalvariate",
})


def expr_key(expr: ast.AST) -> str:
    """A stable textual key for simple expressions (``self.plan``),
    used to match a write's base against a held guard's base."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return f"{expr_key(expr.value)}.{expr.attr}"
    if isinstance(expr, ast.Call):
        return f"{expr_key(expr.func)}()"
    return ast.dump(expr)


def annotation_class_name(expr: ast.AST | None) -> str | None:
    """The class name an annotation resolves to, if any.

    Strips ``Optional[...]``, ``X | None`` unions, string annotations
    and module qualifiers: ``"FaultPlan | None"`` -> ``FaultPlan``.
    """
    if expr is None:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        try:
            return annotation_class_name(
                ast.parse(expr.value, mode="eval").body)
        except SyntaxError:
            return None
    if isinstance(expr, ast.Name):
        return None if expr.id == "None" else expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):
        value = annotation_class_name(expr.value)
        if value == "Optional":
            return annotation_class_name(expr.slice)
        return value
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        return (annotation_class_name(expr.left)
                or annotation_class_name(expr.right))
    return None


@dataclass
class ClassInfo:
    """Symbol table of one class: guard annotations, attribute types,
    methods."""

    name: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    #: instance attribute -> guard attribute (``# guarded-by:``).
    guards: dict[str, str] = field(default_factory=dict)
    #: class-level attribute -> guard attribute.
    class_guards: dict[str, str] = field(default_factory=dict)
    #: instance attribute -> inferred class name.
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: dict[str, FunctionNode] = field(default_factory=dict)


@dataclass
class ModuleIndex:
    """Symbol tables of one parsed module."""

    source: SourceFile
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionNode] = field(default_factory=dict)

    @classmethod
    def build(cls, source: SourceFile) -> "ModuleIndex":
        index = cls(source=source)
        guard_lines = parse_guard_comments(source)
        for statement in source.tree.body:
            if isinstance(statement, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                index.functions[statement.name] = statement
            elif isinstance(statement, ast.ClassDef):
                index.classes[statement.name] = _build_class(
                    statement, guard_lines, index)
        # Attribute types need every class name known first.
        for info in index.classes.values():
            _infer_attr_types(info, index)
        return index

    def guard_for(self, class_name: str, attr: str, *,
                  class_level: bool = False) -> str | None:
        """The guard of ``class_name.attr``, following module-local
        base classes."""
        seen: set[str] = set()
        name: str | None = class_name
        while name is not None and name not in seen:
            seen.add(name)
            info = self.classes.get(name)
            if info is None:
                return None
            table = info.class_guards if class_level else info.guards
            if attr in table:
                return table[attr]
            name = next((base for base in info.bases
                         if base in self.classes), None)
        return None


def parse_guard_comments(source: SourceFile) -> "GuardComments":
    """The ``# guarded-by: <name>`` comments of a file, by line."""
    guards: dict[int, str] = {}
    standalone: set[int] = set()
    for number, line in enumerate(source.lines, start=1):
        match = GUARDED_BY_RE.search(line)
        if match is not None:
            guards[number] = match.group(1)
            if line.lstrip().startswith("#"):
                standalone.add(number)
    return GuardComments(guards, frozenset(standalone))


@dataclass(frozen=True)
class GuardComments:
    """Guard declarations by line; a comment-only line annotates the
    statement below it (for assignments too long to share a line)."""

    inline: Mapping[int, str]
    standalone: frozenset[int]

    def at(self, lineno: int) -> str | None:
        guard = self.inline.get(lineno)
        if guard is not None and lineno not in self.standalone:
            return guard
        above = self.inline.get(lineno - 1)
        if above is not None and (lineno - 1) in self.standalone:
            return above
        return guard


def _assign_targets(statement: ast.stmt) -> list[ast.expr]:
    if isinstance(statement, ast.Assign):
        return list(statement.targets)
    if isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
        return [statement.target]
    return []


def _build_class(node: ast.ClassDef, guard_lines: "GuardComments",
                 index: ModuleIndex) -> ClassInfo:
    info = ClassInfo(name=node.name, node=node,
                     bases=[base.id for base in node.bases
                            if isinstance(base, ast.Name)])
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[statement.name] = statement
            for inner in ast.walk(statement):
                if not isinstance(inner, (ast.Assign, ast.AnnAssign,
                                          ast.AugAssign)):
                    continue
                guard = guard_lines.at(inner.lineno)
                if guard is None:
                    continue
                for target in _assign_targets(inner):
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        info.guards[target.attr] = guard
        else:
            guard = guard_lines.at(statement.lineno)
            if guard is None:
                continue
            for target in _assign_targets(statement):
                if isinstance(target, ast.Name):
                    info.class_guards[target.id] = guard
    return info


def infer_expr_class(expr: ast.AST, env: Mapping[str, str],
                     index: ModuleIndex) -> str | None:
    """The class an expression evaluates to, when statically obvious."""
    if isinstance(expr, ast.Call):
        name = None
        if isinstance(expr.func, ast.Name):
            name = expr.func.id
        elif isinstance(expr.func, ast.Attribute):
            name = expr.func.attr
        if name is not None and (name in index.classes
                                 or (name and name[0].isupper())):
            return name
        return None
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.IfExp):
        return (infer_expr_class(expr.body, env, index)
                or infer_expr_class(expr.orelse, env, index))
    if isinstance(expr, ast.BoolOp):
        for value in expr.values:
            inferred = infer_expr_class(value, env, index)
            if inferred is not None:
                return inferred
    return None


def function_env(func: FunctionNode, index: ModuleIndex) -> dict[str, str]:
    """Local name -> class name, from annotations and constructor
    calls (one forward pass; shadowing keeps the last inferable
    binding)."""
    env: dict[str, str] = {}
    arguments = func.args
    for arg in (*arguments.posonlyargs, *arguments.args,
                *arguments.kwonlyargs, arguments.vararg, arguments.kwarg):
        if arg is None or arg.annotation is None:
            continue
        inferred = annotation_class_name(arg.annotation)
        if inferred is not None:
            env[arg.arg] = inferred
    for node in ast.walk(func):
        if isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            inferred = annotation_class_name(node.annotation)
            if inferred is not None:
                env[node.target.id] = inferred
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            inferred = infer_expr_class(node.value, env, index)
            if inferred is not None:
                env[node.targets[0].id] = inferred
    return env


def _infer_attr_types(info: ClassInfo, index: ModuleIndex) -> None:
    for method in info.methods.values():
        env = function_env(method, index)
        for node in ast.walk(method):
            if isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Attribute) \
                    and isinstance(node.target.value, ast.Name) \
                    and node.target.value.id == "self":
                inferred = annotation_class_name(node.annotation)
                if inferred is not None:
                    info.attr_types.setdefault(node.target.attr, inferred)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Attribute):
                target = node.targets[0]
                if isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    inferred = infer_expr_class(node.value, env, index)
                    if inferred is not None:
                        info.attr_types.setdefault(target.attr, inferred)


def base_class_of(expr: ast.AST, env: Mapping[str, str],
                  enclosing_class: str | None,
                  index: ModuleIndex) -> str | None:
    """The class owning the attribute namespace ``expr`` denotes, for a
    write ``<expr>.attr = ...`` — ``self``, annotated locals/params,
    and one level of typed attribute chains (``self.plan``)."""
    if isinstance(expr, ast.Name):
        if expr.id == "self":
            return enclosing_class
        if expr.id in index.classes:
            return expr.id
        return env.get(expr.id)
    if isinstance(expr, ast.Attribute):
        owner = base_class_of(expr.value, env, enclosing_class, index)
        if owner is not None:
            info = index.classes.get(owner)
            if info is not None:
                return info.attr_types.get(expr.attr)
    return None


# ----------------------------------------------------------------------
# Held-guard walk
# ----------------------------------------------------------------------

def guard_key(expr: ast.AST) -> tuple[str, str] | None:
    """``(base key, guard name)`` for a ``with`` context expression
    that looks like a lock acquisition (``self._lock``,
    ``plan.lock``, ``EventLog._SEQ_LOCK``, or a bare name)."""
    if isinstance(expr, ast.Attribute):
        return expr_key(expr.value), expr.attr
    if isinstance(expr, ast.Name):
        return "", expr.id
    return None


def iter_guarded(nodes: Sequence[ast.AST],
                 held: tuple[tuple[str, str], ...] = (),
                 ) -> Iterator[tuple[ast.AST, tuple[tuple[str, str], ...]]]:
    """Yield ``(node, held_guards)`` over a statement list.

    ``held_guards`` is the ordered tuple of :func:`guard_key` s
    acquired by enclosing ``with`` statements, outermost first.
    Nested function and class definitions are *not* descended into —
    a lock held at definition time is not held at call time.
    """
    for node in nodes:
        yield node, held
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = list(held)
            for item in node.items:
                yield from iter_guarded([item.context_expr], held)
                if item.optional_vars is not None:
                    yield from iter_guarded([item.optional_vars], held)
                key = guard_key(item.context_expr)
                if key is not None:
                    acquired.append(key)
            yield from iter_guarded(node.body, tuple(acquired))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda, ast.ClassDef)):
            continue
        else:
            yield from iter_guarded(list(ast.iter_child_nodes(node)), held)


def holds_guard(held: Sequence[tuple[str, str]], base_key: str,
                guard: str) -> bool:
    """Whether ``with <base>.<guard>`` (or ``with <guard>`` for a bare
    name) is among the held guards."""
    for held_base, held_guard in held:
        if held_guard != guard:
            continue
        if held_base == base_key or held_base == "" or base_key == "":
            return True
    return False


# ----------------------------------------------------------------------
# Deadline helpers
# ----------------------------------------------------------------------

def deadline_param_name(func: FunctionNode) -> str | None:
    """The function's deadline parameter name (``deadline``), if any."""
    arguments = func.args
    for arg in (*arguments.posonlyargs, *arguments.args,
                *arguments.kwonlyargs):
        if arg.arg == "deadline":
            return arg.arg
    return None


def is_deadline_consult(node: ast.AST, name: str,
                        consulting_locals: frozenset[str] = frozenset()
                        ) -> bool:
    """Whether one node consults the deadline: ``deadline.check(...)``,
    a call forwarding ``deadline`` as an argument, or a call to a
    local function whose body consults it (closures)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "check" \
            and isinstance(func.value, ast.Name) and func.value.id == name:
        return True
    if isinstance(func, ast.Name) and func.id in consulting_locals:
        return True
    for arg in node.args:
        if isinstance(arg, ast.Name) and arg.id == name:
            return True
    for keyword in node.keywords:
        if isinstance(keyword.value, ast.Name) \
                and keyword.value.id == name:
            return True
    return False


def consults_deadline(node: ast.AST, name: str,
                      consulting_locals: frozenset[str] = frozenset()
                      ) -> bool:
    """Whether any node in the subtree consults the deadline."""
    return any(is_deadline_consult(child, name, consulting_locals)
               for child in ast.walk(node))


def consulting_local_functions(func: FunctionNode,
                               name: str) -> frozenset[str]:
    """Names of functions defined inside ``func`` whose bodies consult
    the (closed-over) deadline, to fixpoint across mutual calls."""
    locals_: dict[str, FunctionNode] = {
        node.name: node for node in ast.walk(func)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node is not func
    }
    consulting: set[str] = set()
    changed = True
    while changed:
        changed = False
        for local_name, local_func in locals_.items():
            if local_name in consulting:
                continue
            if consults_deadline(local_func, name, frozenset(consulting)):
                consulting.add(local_name)
                changed = True
    return frozenset(consulting)


def forwards_deadline(call: ast.Call, name: str) -> bool:
    """Whether a call passes the deadline down (positionally or as a
    keyword)."""
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == name:
            return True
    for keyword in call.keywords:
        if isinstance(keyword.value, ast.Name) \
                and keyword.value.id == name:
            return True
    return False
