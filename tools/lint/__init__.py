"""WALRUS project lint: an AST rule framework for the repository's
correctness invariants.

Run it from the repository root::

    python -m tools.lint src/          # lint the library
    python -m tools.lint --list-rules  # show the registered rules
    walrus lint                        # same, through the CLI

Built-in rules (see ``docs/DEVELOPING.md`` for rationale and the
suppression syntax ``# lint: allow[CODE]``):

=====  ==============================================================
R001   no bare ``ValueError``/``RuntimeError``/``Exception`` raises
R002   no unseeded module-level randomness (``np.random.*`` draws)
R003   no exact float ``==``/``!=`` in ``core``/``index``/``wavelets``
R004   pool submissions must be picklable module-level functions
R005   public functions must carry complete type annotations
=====  ==============================================================
"""

from __future__ import annotations

from tools.lint.engine import (Finding, Rule, SourceFile, default_rules,
                               discover_files, lint_source, main,
                               register, run_paths)

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "default_rules",
    "discover_files",
    "lint_source",
    "main",
    "register",
    "run_paths",
]
