"""Core of the WALRUS lint framework: rules, findings, suppression.

The framework is deliberately small: a :class:`Rule` walks one parsed
:class:`SourceFile` and yields :class:`Finding` records.  The runner
(:func:`run_paths` / :func:`main`) discovers files, applies each rule's
path filter, drops findings suppressed by an inline
``# lint: allow[CODE]`` comment, and reports the rest as
``path:line:col CODE message`` lines, exiting non-zero when anything
survives.

Rules register themselves with the :func:`register` decorator; see
``tools/lint/rules/`` for the built-in set and ``docs/DEVELOPING.md``
for how to add one.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

#: Inline suppression syntax: ``# lint: allow[R001]`` (one code),
#: ``# lint: allow[R001,R003]`` (several) or ``# lint: allow[*]`` (all).
#: Several allow-comments on one line merge their code sets.
_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\[([^\]]+)\]")

#: What ``python -m tools.lint`` runs over when no paths are given:
#: every first-party tree, not just the library.
DEFAULT_PATHS = ("src", "tools", "benchmarks", "scripts")

#: Directories never descended into during file discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache",
                        ".pytest_cache", ".venv", "node_modules",
                        "build", "dist"})


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation, addressable as ``path:line:col CODE msg``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def to_dict(self) -> dict[str, int | str]:
        """The machine-readable (``--format=json``) row."""
        return {"file": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


@dataclass
class SourceFile:
    """A parsed Python file plus the per-line suppression table."""

    path: str
    text: str
    tree: ast.Module
    #: line number -> set of allowed codes (``"*"`` allows everything).
    allowed: dict[int, frozenset[str]] = field(default_factory=dict)
    #: The physical source lines, for position clamping.
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, text: str) -> "SourceFile":
        """Parse ``text``; raises :class:`SyntaxError` on bad input."""
        tree = ast.parse(text, filename=path)
        allowed: dict[int, frozenset[str]] = {}
        lines = text.splitlines()
        for number, line in enumerate(lines, start=1):
            codes: set[str] = set()
            for match in _ALLOW_RE.finditer(line):
                codes.update(code.strip()
                             for code in match.group(1).split(","))
            if codes:
                allowed[number] = frozenset(codes)
        return cls(path=path, text=text, tree=tree, allowed=allowed,
                   lines=lines)

    def suppresses(self, finding: Finding) -> bool:
        """True when an allow-comment on the finding's line covers it."""
        codes = self.allowed.get(finding.line)
        if codes is None:
            return False
        return "*" in codes or finding.code in codes

    def position(self, node: ast.AST) -> tuple[int, int]:
        """``(line, col)`` of ``node``, clamped into the real source.

        Pre-3.12 parsers report unreliable positions for nodes inside
        f-strings (and historically for decorated definitions): a
        column past the end of the physical line, or a line outside
        the file.  Findings anchored there would dodge their own
        ``# lint: allow`` comments, so positions are clamped onto the
        nearest real character instead.
        """
        line = getattr(node, "lineno", None) or 1
        col = getattr(node, "col_offset", None) or 0
        if self.lines:
            line = max(1, min(line, len(self.lines)))
            text = self.lines[line - 1]
            col = max(0, min(col, max(len(text) - 1, 0)))
        else:
            line, col = 1, 0
        return line, col


def path_segments(path: str) -> tuple[str, ...]:
    """The path split on both separators, for segment-based filters."""
    return tuple(part for part in re.split(r"[\\/]+", path) if part)


class Rule:
    """Base class of a lint rule.

    Subclasses set :attr:`code`, :attr:`name` and :attr:`rationale`,
    and implement :meth:`check`.  :meth:`applies_to` narrows the rule
    to a slice of the tree (by default every non-test file); override
    it for rules that only guard specific subpackages.

    Rules with :attr:`project` set are *project rules*: the runner
    calls :meth:`start_run` before the first file, :meth:`check` on
    every in-jurisdiction file as usual (typically to collect facts),
    and :meth:`finish` after the last file for findings that need the
    whole run's state — cross-class lock graphs, spec conformance.
    """

    code: str = "R000"
    name: str = "unnamed"
    rationale: str = ""
    #: Whether the rule accumulates cross-file state (see class doc).
    project: bool = False

    def applies_to(self, path: str) -> bool:
        """Whether ``path`` is in this rule's jurisdiction."""
        return "tests" not in path_segments(path)

    def start_run(self) -> None:
        """Reset per-run state (project rules; default no-op)."""

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield findings for one file.  Must be overridden."""
        raise NotImplementedError

    def finish(self) -> Iterator[Finding]:
        """Yield whole-run findings after every file was checked
        (project rules; default none)."""
        return iter(())

    def finding(self, source: SourceFile, node: ast.AST,
                message: str) -> Finding:
        """Convenience constructor anchored at ``node`` (position
        clamped into the file, see :meth:`SourceFile.position`)."""
        line, col = source.position(node)
        return Finding(path=source.path, line=line, col=col,
                       code=self.code, message=message)


#: The global rule registry, populated by the :func:`register` decorator.
_REGISTRY: list[type[Rule]] = []


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``rule_cls`` to the default rule set."""
    _REGISTRY.append(rule_cls)
    return rule_cls


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    # Importing the rules package triggers registration exactly once.
    from tools.lint import rules as _rules  # noqa: F401

    return sorted((rule_cls() for rule_cls in _REGISTRY),
                  key=lambda rule: rule.code)


def discover_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            found.add(path)
            continue
        for root, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(name for name in dirnames
                                 if name not in _SKIP_DIRS
                                 and not name.startswith("."))
            for filename in filenames:
                if filename.endswith(".py"):
                    found.add(os.path.join(root, filename))
    return sorted(found)


def lint_source(source: SourceFile,
                rules: Sequence[Rule]) -> list[Finding]:
    """Run ``rules`` over one parsed file, honoring suppressions."""
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(source.path):
            continue
        for finding in rule.check(source):
            if not source.suppresses(finding):
                findings.append(finding)
    return findings


def run_paths(paths: Sequence[str], rules: Sequence[Rule] | None = None,
              *, reader: Callable[[str], str] | None = None
              ) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings.

    Unparseable files surface as an ``E999`` finding rather than an
    exception, so one bad file cannot hide the rest of the report.
    Project rules run their :meth:`Rule.finish` pass at the end;
    inline suppressions still apply to finish-phase findings anchored
    in a parsed file.
    """
    active = list(rules) if rules is not None else default_rules()
    read = reader if reader is not None else _read_text
    for rule in active:
        rule.start_run()
    findings: list[Finding] = []
    sources: dict[str, SourceFile] = {}
    for path in discover_files(paths):
        text = read(path)
        try:
            source = SourceFile.parse(path, text)
        except SyntaxError as error:
            findings.append(Finding(
                path=path, line=error.lineno or 1,
                col=(error.offset or 1) - 1, code="E999",
                message=f"syntax error: {error.msg}"))
            continue
        sources[path] = source
        findings.extend(lint_source(source, active))
    for rule in active:
        if not rule.project:
            continue
        for finding in rule.finish():
            source = sources.get(finding.path)
            if source is None or not source.suppresses(finding):
                findings.append(finding)
    return sorted(findings)


def _read_text(path: str) -> str:
    with open(path, "r", encoding="utf-8") as stream:
        return stream.read()


def _list_rules(rules: Iterable[Rule]) -> str:
    lines = []
    for rule in rules:
        lines.append(f"{rule.code}  {rule.name}")
        if rule.rationale:
            lines.append(f"      {rule.rationale}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Command-line entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="WALRUS project lint: AST rules enforcing the "
                    "repository's correctness invariants",
    )
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to lint "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="output_format",
                        help="findings as path:line:col lines (text) or "
                             "one machine-readable JSON object (json)")
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        print(_list_rules(rules))
        return 0
    if args.select is not None:
        wanted = {code.strip() for code in args.select.split(",")}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            print(f"unknown rule code(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.code in wanted]

    findings = run_paths(args.paths, rules)
    if args.output_format == "json":
        print(json.dumps({
            "version": 1,
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        }, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0
