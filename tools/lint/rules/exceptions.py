"""R001 — no bare builtin exceptions in library code.

Every error the library raises must come from the structured taxonomy
in :mod:`repro.exceptions` (``WalrusError`` and subclasses) so callers
can handle failures by subsystem instead of string-matching messages.
This rule replaces — and widens beyond ``core``/``index`` — the old
``lint-exceptions`` grep job in CI.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.engine import Finding, Rule, SourceFile, register

#: Builtin exception types library code must never raise directly.
_FORBIDDEN = frozenset({"ValueError", "RuntimeError", "Exception"})


@register
class BareExceptionRule(Rule):
    code = "R001"
    name = "no-bare-builtin-raise"
    rationale = ("raise WalrusError subclasses from repro.exceptions, "
                 "not bare ValueError/RuntimeError/Exception")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            raised = node.exc
            if isinstance(raised, ast.Call):
                raised = raised.func
            if isinstance(raised, ast.Name) and raised.id in _FORBIDDEN:
                yield self.finding(
                    source, node,
                    f"raise of bare {raised.id}; use the structured "
                    "taxonomy in repro.exceptions instead")
