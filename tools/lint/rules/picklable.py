"""R004 — work submitted to process pools must be picklable.

:class:`repro.core.pipeline.ExtractionPipeline` (and any direct
``multiprocessing.Pool`` use) ships the callable to worker processes
by pickling.  Lambdas, closures (functions defined inside another
function) and bound methods of arbitrary objects either fail to pickle
outright or silently drag an entire object graph across the fork
boundary.  Submit module-level functions; thread per-worker state
through an initializer, as the pipeline does.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.engine import Finding, Rule, SourceFile, register

#: Pool/executor methods whose first argument is shipped to workers.
_SUBMIT_METHODS = frozenset({
    "apply", "apply_async", "map", "map_async",
    "imap", "imap_unordered", "starmap", "starmap_async", "submit",
})


def _nested_function_names(tree: ast.Module) -> frozenset[str]:
    """Names of functions defined inside another function (closures)."""
    nested: set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return frozenset(nested)


def _imported_modules(tree: ast.Module) -> frozenset[str]:
    """Local names that are bound to modules by ``import`` statements."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return frozenset(names)


@register
class PicklableSubmissionRule(Rule):
    code = "R004"
    name = "picklable-pool-submissions"
    rationale = ("callables handed to Pool/ExtractionPipeline methods "
                 "must be module-level functions (lambdas, closures and "
                 "bound methods do not pickle)")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        nested = _nested_function_names(source.tree)
        modules = _imported_modules(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in _SUBMIT_METHODS):
                continue
            if not node.args:
                continue
            submitted = node.args[0]
            if isinstance(submitted, ast.Lambda):
                yield self.finding(
                    source, node,
                    f"lambda submitted to {func.attr}(); lambdas are not "
                    "picklable — use a module-level function")
            elif isinstance(submitted, ast.Name) and submitted.id in nested:
                yield self.finding(
                    source, node,
                    f"closure {submitted.id!r} submitted to {func.attr}(); "
                    "nested functions are not picklable — hoist it to "
                    "module level")
            elif isinstance(submitted, ast.Attribute):
                chain_root = submitted
                while isinstance(chain_root.value, ast.Attribute):
                    chain_root = chain_root.value
                root = chain_root.value
                if isinstance(root, ast.Name) and root.id in modules:
                    continue  # module.function is picklable by reference
                yield self.finding(
                    source, node,
                    f"bound method .{submitted.attr} submitted to "
                    f"{func.attr}(); bound methods pickle their whole "
                    "instance (or fail) — use a module-level function "
                    "with an initializer")
