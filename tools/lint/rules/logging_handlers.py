"""R007 — logging-handler isolation: only the event log touches handlers.

The structured event log (:mod:`repro.observability.events`) owns the
library's only ``logging`` plumbing: it builds private,
non-propagating loggers and attaches rotating handlers to them.  Any
other ``repro`` module that constructs a handler, calls
``logging.basicConfig``, or attaches/detaches handlers can hijack the
application's logging configuration (duplicate lines, stolen root
handlers, surprise files on disk) and silently break the event log's
"disabled means zero work" guarantee.  Library code that wants to
emit a structured record must go through
:func:`repro.observability.events.get_events` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.engine import Finding, Rule, SourceFile, path_segments, register

#: Handler-management methods no repro module may call on a logger.
_BANNED_METHODS = frozenset({"addHandler", "removeHandler", "basicConfig"})


def _is_logging_module(node: ast.expr) -> bool:
    """True for ``logging`` or ``logging.handlers`` references."""
    if isinstance(node, ast.Name):
        return node.id == "logging"
    return (isinstance(node, ast.Attribute)
            and node.attr == "handlers"
            and isinstance(node.value, ast.Name)
            and node.value.id == "logging")


@register
class LoggingHandlerIsolationRule(Rule):
    code = "R007"
    name = "logging-handler-isolation"
    rationale = ("only repro/observability/events.py may construct or "
                 "attach logging handlers; emit structured records via "
                 "repro.observability.events.get_events() instead")

    def applies_to(self, path: str) -> bool:
        segments = path_segments(path)
        if "repro" not in segments or "tests" in segments:
            return False
        return segments[-2:] != ("observability", "events.py")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "logging.handlers":
                    yield self.finding(
                        source, node,
                        "import from logging.handlers: handler classes "
                        "belong to the event-log module only")
                elif node.module == "logging":
                    for alias in node.names:
                        if alias.name.endswith("Handler") \
                                or alias.name == "basicConfig":
                            yield self.finding(
                                source, node,
                                f"from logging import {alias.name}: "
                                "handler plumbing belongs to the "
                                "event-log module only")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                func = node.func
                if _is_logging_module(func.value) \
                        and (func.attr.endswith("Handler")
                             or func.attr == "basicConfig"):
                    yield self.finding(
                        source, node,
                        f"logging.{func.attr}(...) outside the event-log "
                        "module; use repro.observability.events instead")
                elif func.attr in _BANNED_METHODS:
                    yield self.finding(
                        source, node,
                        f".{func.attr}(...) manages logging handlers; "
                        "only repro/observability/events.py may do that")
