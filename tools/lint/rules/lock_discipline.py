"""R009 — writes to ``# guarded-by:`` attributes happen under the lock.

The threaded daemon shares mutable state between handler threads: the
admission controller's counters, the session pool's idle list, the
metrics instruments, the fault plan's op counts.  Each such attribute
declares its lock with a ``# guarded-by: _lock`` comment on its
initializing assignment; this rule then proves every *write* to it —
assignment, augmented assignment, or a mutating method call like
``.append()`` — sits inside ``with <owner>.<lock>:``.

Inference is intraprocedural but cross-object: a write through a
parameter or attribute whose class is statically known
(``plan: FaultPlan | None``, ``self.plan = FaultPlan(...)``) is checked
against *that* class's guard table, so ``self.plan.read_ops += 1`` must
hold ``self.plan.lock``.  Constructor bodies are exempt for ``self``
attributes (the object is not yet shared), but never for class-level
attributes — a ``Cls.counter += 1`` in ``__init__`` races with every
other constructor call.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from tools.lint import dataflow
from tools.lint.engine import Finding, Rule, SourceFile, path_segments, register


def _is_mutator_call(node: ast.Call) -> bool:
    return (isinstance(node.func, ast.Attribute)
            and node.func.attr in dataflow.MUTATOR_METHODS
            and isinstance(node.func.value, ast.Attribute))


@register
class LockDisciplineRule(Rule):
    code = "R009"
    name = "lock-discipline"
    rationale = ("attributes declared '# guarded-by: <lock>' may only "
                 "be written inside 'with <owner>.<lock>:'; an unlocked "
                 "write races with every handler thread")

    def applies_to(self, path: str) -> bool:
        segments = path_segments(path)
        if "tests" in segments or "repro" not in segments:
            return False
        return ("server" in segments or "observability" in segments
                or segments[-1] == "faults.py")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        index = dataflow.ModuleIndex.build(source)
        for info in index.classes.values():
            for method_name, method in info.methods.items():
                yield from self._check_function(
                    source, index, method,
                    enclosing_class=info.name,
                    in_init=(method_name == "__init__"))
        for func in index.functions.values():
            yield from self._check_function(source, index, func,
                                            enclosing_class=None,
                                            in_init=False)

    def _check_function(self, source: SourceFile,
                        index: dataflow.ModuleIndex,
                        func: dataflow.FunctionNode, *,
                        enclosing_class: str | None,
                        in_init: bool) -> Iterator[Finding]:
        env = dataflow.function_env(func, index)
        for node, held in dataflow.iter_guarded(func.body):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = dataflow._assign_targets(node)
                for target in targets:
                    if isinstance(target, ast.Tuple):
                        elements = list(target.elts)
                    else:
                        elements = [target]
                    for element in elements:
                        if isinstance(element, ast.Subscript) \
                                and isinstance(element.value,
                                               ast.Attribute):
                            # ``self._table[key] = v`` mutates the
                            # container held in ``_table``.
                            yield from self._check_write(
                                source, index, env, enclosing_class,
                                in_init, element.value, held, node,
                                verb="keyed write into")
                        elif isinstance(element, ast.Attribute):
                            yield from self._check_write(
                                source, index, env, enclosing_class,
                                in_init, element, held, node)
            elif isinstance(node, ast.Call) and _is_mutator_call(node):
                method = node.func
                assert isinstance(method, ast.Attribute)
                receiver = method.value
                assert isinstance(receiver, ast.Attribute)
                yield from self._check_write(
                    source, index, env, enclosing_class, in_init,
                    receiver, held, node,
                    verb=f".{method.attr}(...) on")

    def _check_write(self, source: SourceFile,
                     index: dataflow.ModuleIndex,
                     env: Mapping[str, str],
                     enclosing_class: str | None, in_init: bool,
                     target: ast.Attribute,
                     held: tuple[tuple[str, str], ...],
                     anchor: ast.AST, *,
                     verb: str = "write to") -> Iterator[Finding]:
        base = target.value
        # Class-attribute write: ``EventLog._SEQUENCE += 1``.
        if isinstance(base, ast.Name) and base.id in index.classes:
            guard = index.guard_for(base.id, target.attr, class_level=True)
            if guard is not None \
                    and not any(name == guard for _, name in held):
                yield self.finding(
                    source, anchor,
                    f"{verb} class attribute '{base.id}.{target.attr}' "
                    f"outside 'with {guard}'; it is declared "
                    f"# guarded-by: {guard}")
            return
        owner = dataflow.base_class_of(base, env, enclosing_class, index)
        if owner is None:
            return
        guard = index.guard_for(owner, target.attr)
        if guard is None:
            return
        if in_init and isinstance(base, ast.Name) and base.id == "self":
            return  # not yet shared with other threads
        base_key = dataflow.expr_key(base)
        if not dataflow.holds_guard(held, base_key, guard):
            yield self.finding(
                source, anchor,
                f"{verb} '{owner}.{target.attr}' outside "
                f"'with {base_key}.{guard}'; it is declared "
                f"# guarded-by: {guard}")
