"""R010 — nested lock acquisitions must not form a cycle.

Deadlock needs exactly two ingredients: more than one lock, and two
code paths acquiring them in opposite orders.  This project rule
builds the static lock-acquisition graph across every linted module —
a node per lock (identified as ``Class.attr`` when the owner class is
inferable), an edge ``A -> B`` wherever ``B`` is acquired while ``A``
is held, either by a nested ``with`` or by a call (one level deep)
into a function whose body acquires ``B`` — and flags every edge that
lies on a cycle.

A self-edge is also a cycle: re-acquiring a non-reentrant
``threading.Lock`` (or ``Condition``) the thread already holds
deadlocks instantly.  Locks whose initializer is ``threading.RLock()``
are reentrant and exempt from self-edges.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from tools.lint import dataflow
from tools.lint.engine import Finding, Rule, SourceFile, path_segments, register

#: A recorded acquisition site: (path, line, col).
Site = tuple[str, int, int]


@register
class LockOrderingRule(Rule):
    code = "R010"
    name = "lock-ordering"
    rationale = ("two paths acquiring the same locks in opposite "
                 "orders deadlock under load; keep the static "
                 "lock-acquisition graph acyclic")
    project = True

    def applies_to(self, path: str) -> bool:
        return "tests" not in path_segments(path)

    def start_run(self) -> None:
        #: lock -> {lock acquired while holding it -> first site}.
        self._edges: dict[str, dict[str, Site]] = {}
        #: (class, method[, module]) -> set of locks acquired inside.
        self._summaries: dict[tuple[str | None, str, str | None],
                              set[str]] = {}
        #: Calls made while holding a lock, resolved in finish().
        self._held_calls: list[tuple[str, tuple[str | None, str,
                                                str | None], Site]] = []
        #: Locks whose initializer is reentrant (``threading.RLock()``).
        self._reentrant: set[str] = set()

    def check(self, source: SourceFile) -> Iterator[Finding]:
        index = dataflow.ModuleIndex.build(source)
        for info in index.classes.values():
            for attr, kind in info.attr_types.items():
                if kind == "RLock":
                    self._reentrant.add(f"{info.name}.{attr}")
            for name, method in info.methods.items():
                self._scan_function(source, index, method,
                                    key=(info.name, name, None),
                                    enclosing_class=info.name)
        for name, func in index.functions.items():
            self._scan_function(source, index, func,
                                key=(None, name, source.path),
                                enclosing_class=None)
        return iter(())

    def _lock_id(self, expr: ast.AST, env: Mapping[str, str],
                 enclosing_class: str | None,
                 index: dataflow.ModuleIndex) -> str:
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) \
                    and expr.value.id in index.classes:
                return f"{expr.value.id}.{expr.attr}"
            owner = dataflow.base_class_of(expr.value, env,
                                           enclosing_class, index)
            if owner is not None:
                return f"{owner}.{expr.attr}"
        return f"?{dataflow.expr_key(expr)}"

    def _resolve_callee(self, call: ast.Call, env: Mapping[str, str],
                        enclosing_class: str | None,
                        index: dataflow.ModuleIndex, path: str
                        ) -> tuple[str | None, str, str | None] | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in index.functions:
                return (None, func.id, path)
            return None
        if isinstance(func, ast.Attribute):
            owner = dataflow.base_class_of(func.value, env,
                                           enclosing_class, index)
            if owner is not None and owner in index.classes:
                return (owner, func.attr, None)
        return None

    def _scan_function(self, source: SourceFile,
                       index: dataflow.ModuleIndex,
                       func: dataflow.FunctionNode, *,
                       key: tuple[str | None, str, str | None],
                       enclosing_class: str | None) -> None:
        env = dataflow.function_env(func, index)
        acquired = self._summaries.setdefault(key, set())
        # Map the guard keys iter_guarded reports back to lock ids.
        id_of: dict[tuple[str, str], str] = {}
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    guard = dataflow.guard_key(item.context_expr)
                    if guard is not None:
                        lock = self._lock_id(item.context_expr, env,
                                             enclosing_class, index)
                        id_of[guard] = lock
                        acquired.add(lock)
        for node, held in dataflow.iter_guarded(func.body):
            held_ids = [id_of[guard] for guard in held if guard in id_of]
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = list(held_ids)
                for item in node.items:
                    guard = dataflow.guard_key(item.context_expr)
                    if guard is None:
                        continue
                    lock = id_of[guard]
                    if inner:
                        self._add_edge(inner[-1], lock,
                                       self._site(source, item.context_expr))
                    inner.append(lock)
            elif isinstance(node, ast.Call) and held_ids:
                callee = self._resolve_callee(node, env, enclosing_class,
                                              index, source.path)
                if callee is not None:
                    self._held_calls.append(
                        (held_ids[-1], callee, self._site(source, node)))

    def _site(self, source: SourceFile, node: ast.AST) -> Site:
        line, col = source.position(node)
        return (source.path, line, col)

    def _add_edge(self, origin: str, target: str, site: Site) -> None:
        if origin == target and target in self._reentrant:
            return
        self._edges.setdefault(origin, {}).setdefault(target, site)

    def finish(self) -> Iterator[Finding]:
        for holder, callee, site in self._held_calls:
            for lock in self._summaries.get(callee, ()):
                self._add_edge(holder, lock, site)
        yield from self._report_cycles()

    def _report_cycles(self) -> Iterator[Finding]:
        # An edge is deadlock-prone iff its target can reach its origin.
        reported: set[tuple[str, str]] = set()
        for origin, targets in sorted(self._edges.items()):
            for target, site in sorted(targets.items()):
                if (origin, target) in reported:
                    continue
                path_back = self._find_path(target, origin)
                if path_back is None:
                    continue
                reported.add((origin, target))
                cycle = " -> ".join([origin, *path_back])
                path, line, col = site
                yield Finding(
                    path=path, line=line, col=col, code=self.code,
                    message=(f"acquiring '{target}' while holding "
                             f"'{origin}' closes a lock-order cycle: "
                             f"{cycle}"))

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """A lock path ``start -> ... -> goal`` along recorded edges
        (``[start]`` when start == goal would need a self-edge)."""
        if start == goal:
            return [start]
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        seen = {start}
        while stack:
            node, trail = stack.pop()
            for nxt in self._edges.get(node, ()):
                if nxt == goal:
                    return trail + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, trail + [nxt]))
        return None
