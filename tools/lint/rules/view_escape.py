"""R012 — ``np.frombuffer`` views must not escape into long-lived state.

v3 reads are zero-copy: ``np.frombuffer`` over the store's shared
``mmap`` returns views that alias the mapping.  The retired-mapping
lifecycle in ``storage_v3``/``nodecodec`` keeps superseded mappings
alive while decoded nodes still reference them — but only for views
*it* handed out.  A view stashed anywhere else (an instance attribute,
a module-level cache, a container that outlives the call) dangles the
moment the store closes its mappings, and "works" until the first
segfault-shaped ``BufferError`` in production.

The rule taints every local bound to a ``frombuffer`` result, keeps
the taint through view-preserving operations (``reshape``, ``view``,
``T``, slicing), drops it through copying ones (``copy``, ``astype``,
``np.array``, ``np.ascontiguousarray``, ``tolist``, ``unpackbits``,
arithmetic), and flags tainted values stored into attributes,
subscripted containers, or via mutating container methods.  Returning
a view is allowed — ownership transfers to the caller, which this
rule checks in turn.  ``nodecodec.py`` and ``storage_v3.py`` are
exempt: they are the lifecycle.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.engine import Finding, Rule, SourceFile, path_segments, register

#: ndarray methods returning a view over the same buffer.
_VIEW_METHODS = frozenset({"reshape", "view", "ravel", "squeeze",
                           "swapaxes", "transpose"})

#: Container methods that store their argument.
_STORING_METHODS = frozenset({"append", "add", "insert", "extend",
                              "appendleft", "setdefault", "update"})

#: Files that own the retired-mapping lifecycle.
_LIFECYCLE_OWNERS = frozenset({"nodecodec.py", "storage_v3.py"})


def _is_frombuffer(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr == "frombuffer"
    return isinstance(func, ast.Name) and func.id == "frombuffer"


@register
class ViewEscapeRule(Rule):
    code = "R012"
    name = "mmap-view-escape"
    rationale = ("np.frombuffer views alias the shared mmap and are "
                 "only kept valid by the retired-mapping lifecycle in "
                 "storage_v3/nodecodec; copy() before storing them "
                 "anywhere long-lived")

    def applies_to(self, path: str) -> bool:
        segments = path_segments(path)
        return ("repro" in segments and "tests" not in segments
                and segments[-1] not in _LIFECYCLE_OWNERS)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(source, node)
        # Module-level: a frombuffer bound at import time is stored in
        # module state by definition.
        for statement in source.tree.body:
            if isinstance(statement, ast.Assign) \
                    and self._tainted(statement.value, frozenset()):
                yield self.finding(
                    source, statement,
                    "np.frombuffer view bound at module level outlives "
                    "every mapping; copy the data instead")

    def _check_function(self, source: SourceFile,
                        func: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> Iterator[Finding]:
        tainted = self._tainted_locals(func)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                if not self._tainted(node.value, tainted):
                    continue
                for target in node.targets:
                    escape = self._escape_target(target)
                    if escape is not None:
                        yield self.finding(
                            source, node,
                            f"np.frombuffer view stored into {escape}; "
                            "the view aliases the shared mmap — "
                            ".copy() it first")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _STORING_METHODS \
                    and isinstance(node.func.value,
                                   (ast.Attribute, ast.Name)):
                receiver = node.func.value
                if isinstance(receiver, ast.Name) \
                        and receiver.id in tainted:
                    continue  # mutating the view itself, not storing it
                if any(self._tainted(arg, tainted) for arg in node.args):
                    yield self.finding(
                        source, node,
                        f"np.frombuffer view passed to "
                        f".{node.func.attr}(...) on a long-lived "
                        "container; .copy() it first")

    def _tainted_locals(self, func: ast.AST) -> frozenset[str]:
        """Local names ever bound to a view, to fixpoint."""
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign):
                    continue
                if not self._tainted(node.value, frozenset(tainted)):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id not in tainted:
                        tainted.add(target.id)
                        changed = True
        return frozenset(tainted)

    def _tainted(self, expr: ast.AST, tainted: frozenset[str]) -> bool:
        """Whether ``expr`` evaluates to (a view of) a frombuffer view."""
        if _is_frombuffer(expr):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in _VIEW_METHODS:
                return self._tainted(func.value, tainted)
            return False  # any other call: assume it copies
        if isinstance(expr, ast.Subscript):
            return self._tainted(expr.value, tainted)
        if isinstance(expr, ast.Attribute) and expr.attr == "T":
            return self._tainted(expr.value, tainted)
        if isinstance(expr, ast.IfExp):
            return (self._tainted(expr.body, tainted)
                    or self._tainted(expr.orelse, tainted))
        return False

    def _escape_target(self, target: ast.AST) -> str | None:
        """A description of the long-lived store ``target`` denotes,
        or ``None`` when assigning there is fine (plain locals)."""
        if isinstance(target, ast.Attribute):
            return f"attribute '{ast.unparse(target)}'"
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Attribute):
                return f"container '{ast.unparse(base)}'"
            if isinstance(base, ast.Name) and base.id.isupper():
                return f"module-level container '{base.id}'"
        return None
