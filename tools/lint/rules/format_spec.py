"""R013 — docs/FORMAT.md and the struct constants cannot drift.

docs/FORMAT.md is the byte-level contract for the v2/v3 page files:
magic strings, struct format codes, field offsets, alignment.  Nothing
executable ties it to ``storage.py`` / ``storage_v3.py`` /
``nodecodec.py``, so a layout change that forgets the doc (or a doc
edit that forgets the code) ships a spec that lies.  This project rule
closes the loop: during the per-file pass it collects the module-level
struct constants from the storage modules (``struct.Struct`` format
strings, magic byte literals, derived offsets like ``_DATA_START =
_SUPER.size + 2 * _SLOT.size`` via a tiny constant evaluator); in the
finish pass it parses the layout anchors out of docs/FORMAT.md and
cross-checks every pair.  A mismatch is a finding on the constant's
line; a *missing* anchor is also a finding, so rewording the doc out
from under the rule fails loudly instead of silently checking nothing.

The doc uses ``<QII>``-style tokens (trailing ``>``) where the code
writes ``"<QII"``; tokens are normalized before comparison.
"""

from __future__ import annotations

import ast
import os
import re
import struct
from dataclasses import dataclass, field
from typing import Iterator

from tools.lint.engine import Finding, Rule, SourceFile, register

#: Storage modules whose constants define the on-disk layout.
_LAYOUT_MODULES = frozenset({"storage.py", "storage_v3.py",
                             "nodecodec.py"})


def _norm(fmt: str) -> str:
    """Doc tokens carry a closing ``>`` (``<QII>``); struct strings
    don't."""
    return fmt[:-1] if fmt.endswith(">") else fmt


@dataclass
class _Constants:
    """Module-level layout constants of one storage module."""

    path: str
    #: name -> (struct format string, line, col)
    formats: dict[str, tuple[str, int, int]] = field(default_factory=dict)
    #: name -> (bytes literal, line, col)
    magics: dict[str, tuple[bytes, int, int]] = field(default_factory=dict)
    #: name -> (evaluated integer, line, col)
    ints: dict[str, tuple[int, int, int]] = field(default_factory=dict)

    def size_of(self, name: str) -> int | None:
        entry = self.formats.get(name)
        if entry is None:
            return None
        try:
            return struct.calcsize(entry[0])
        except struct.error:
            return None


@dataclass
class _DocSpec:
    """The layout anchors parsed out of docs/FORMAT.md.

    ``None`` means the anchor pattern did not match — reported as its
    own finding so the conformance check cannot silently go blind.
    """

    super_offset: int | None = None
    super_size: int | None = None
    super_fmt: str | None = None
    slot_offsets: tuple[int, int] | None = None
    slot_size: int | None = None
    slot_fmt: str | None = None
    record_fmt: str | None = None
    record_size: int | None = None
    heap_offset: int | None = None
    stamp_size: int | None = None
    stamp_fmt: str | None = None
    stamp_magic: str | None = None
    node_size: int | None = None
    node_fmt: str | None = None
    count_fmt: str | None = None
    entry_fmt: str | None = None
    align: int | None = None
    table_id: int | None = None
    meta_id: int | None = None
    magic_strings: frozenset[str] = frozenset()

    @classmethod
    def parse(cls, text: str) -> "_DocSpec":
        spec = cls()
        match = re.search(r"Superblock .* offset (\d+), (\d+) bytes "
                          r"\(`([^`]+)`\)", text)
        if match:
            spec.super_offset = int(match.group(1))
            spec.super_size = int(match.group(2))
            spec.super_fmt = _norm(match.group(3))
        match = re.search(r"Header slots .* offsets (\d+) and (\d+), "
                          r"(\d+) bytes each \(`([^`]+)`\)", text)
        if match:
            spec.slot_offsets = (int(match.group(1)), int(match.group(2)))
            spec.slot_size = int(match.group(3))
            spec.slot_fmt = _norm(match.group(4))
        match = re.search(r"^(<\w+>)\s+page_id, payload_size.*"
                          r"\((\d+)-byte record header\)", text,
                          re.MULTILINE)
        if match:
            spec.record_fmt = _norm(match.group(1))
            spec.record_size = int(match.group(2))
        match = re.search(r"heap from offset (\d+)", text)
        if match:
            spec.heap_offset = int(match.group(1))
        match = re.search(r"(\d+)-byte stamp", text)
        if match:
            spec.stamp_size = int(match.group(1))
        match = re.search(r"\(`(<\w+>?)`: magic `(\w+)`", text)
        if match:
            spec.stamp_fmt = _norm(match.group(1))
            spec.stamp_magic = match.group(2)
        match = re.search(r"\((\d+)-byte node header `([^`]+)`", text)
        if match:
            spec.node_size = int(match.group(1))
            spec.node_fmt = _norm(match.group(2))
        match = re.search(r"^(<\w+>)\s+entry count", text, re.MULTILINE)
        if match:
            spec.count_fmt = _norm(match.group(1))
        match = re.search(r"^(<\w+>)\s+page_id, record_offset, "
                          r"record_size", text, re.MULTILINE)
        if match:
            spec.entry_fmt = _norm(match.group(1))
        match = re.search(r"next (\d+)-byte boundary", text)
        if match:
            spec.align = int(match.group(1))
        match = re.search(r"`2\*\*64 - (\d+)` marks a page-table", text)
        if match:
            spec.table_id = 2 ** 64 - int(match.group(1))
        match = re.search(r"`2\*\*64 - (\d+)`[^`]*application-metadata",
                          text, re.DOTALL)
        if match:
            spec.meta_id = 2 ** 64 - int(match.group(1))
        spec.magic_strings = frozenset(
            re.findall(r"`(WALRUS\w+)`", text))
        return spec


@register
class FormatSpecRule(Rule):
    code = "R013"
    name = "format-spec-conformance"
    rationale = ("docs/FORMAT.md is the on-disk contract; magic "
                 "strings, struct format codes and offsets must match "
                 "the constants in storage.py/storage_v3.py/"
                 "nodecodec.py exactly")
    project = True

    def __init__(self, doc_path: str | None = None) -> None:
        self.doc_path = doc_path
        self.start_run()

    def applies_to(self, path: str) -> bool:
        return os.path.basename(path) in _LAYOUT_MODULES \
            and "tests" not in path.split(os.sep)

    def start_run(self) -> None:
        self._modules: dict[str, _Constants] = {}

    def check(self, source: SourceFile) -> Iterator[Finding]:
        constants = _Constants(path=source.path)
        for statement in source.tree.body:
            if not isinstance(statement, ast.Assign) \
                    or len(statement.targets) != 1 \
                    or not isinstance(statement.targets[0], ast.Name):
                continue
            name = statement.targets[0].id
            value = statement.value
            where = (statement.lineno, statement.col_offset)
            if isinstance(value, ast.Call) \
                    and self._is_struct_ctor(value) and value.args \
                    and isinstance(value.args[0], ast.Constant) \
                    and isinstance(value.args[0].value, str):
                constants.formats[name] = (value.args[0].value, *where)
            elif isinstance(value, ast.Constant) \
                    and isinstance(value.value, bytes):
                constants.magics[name] = (value.value, *where)
            else:
                evaluated = self._eval_int(value, constants)
                if evaluated is not None:
                    constants.ints[name] = (evaluated, *where)
        self._modules[os.path.basename(source.path)] = constants
        return iter(())

    @staticmethod
    def _is_struct_ctor(call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr == "Struct"
        return isinstance(func, ast.Name) and func.id == "Struct"

    def _eval_int(self, expr: ast.AST,
                  constants: _Constants) -> int | None:
        """Evaluate simple constant integer expressions:
        ``2 ** 64 - 1``, ``_SUPER.size + 2 * _SLOT.size``."""
        if isinstance(expr, ast.Constant) \
                and isinstance(expr.value, int) \
                and not isinstance(expr.value, bool):
            return expr.value
        if isinstance(expr, ast.Name):
            entry = constants.ints.get(expr.id)
            return entry[0] if entry is not None else None
        if isinstance(expr, ast.Attribute) and expr.attr == "size" \
                and isinstance(expr.value, ast.Name):
            return constants.size_of(expr.value.id)
        if isinstance(expr, ast.BinOp):
            left = self._eval_int(expr.left, constants)
            right = self._eval_int(expr.right, constants)
            if left is None or right is None:
                return None
            if isinstance(expr.op, ast.Add):
                return left + right
            if isinstance(expr.op, ast.Sub):
                return left - right
            if isinstance(expr.op, ast.Mult):
                return left * right
            if isinstance(expr.op, ast.Pow) and right < 256:
                return left ** right
        return None

    # ------------------------------------------------------------------
    # finish(): cross-check
    # ------------------------------------------------------------------

    def finish(self) -> Iterator[Finding]:
        if not self._modules:
            return
        doc_path = self.doc_path or self._locate_doc()
        first = next(iter(self._modules.values()))
        if doc_path is None or not os.path.isfile(doc_path):
            yield self._at(first.path, 1, 0,
                           "docs/FORMAT.md not found; the on-disk "
                           "format has no checkable spec")
            return
        with open(doc_path, "r", encoding="utf-8") as stream:
            spec = _DocSpec.parse(stream.read())
        doc_name = os.path.relpath(doc_path)
        for module, checks in self._checks(spec):
            constants = self._modules.get(module)
            if constants is None:
                continue
            for kind, name, doc_value, anchor in checks:
                yield from self._compare(constants, kind, name,
                                         doc_value, anchor, doc_name)
        if "storage.py" in self._modules:
            yield from self._check_magics(self._modules["storage.py"],
                                          spec, doc_name)

    def _checks(self, spec: _DocSpec) -> Iterator[
            tuple[str, list[tuple[str, str, object, str]]]]:
        """(module, [(kind, constant, doc value, doc anchor), ...])."""
        slot_off2 = None
        super_entry = self._modules.get("storage.py")
        if super_entry is not None:
            super_size = super_entry.size_of("_SUPER")
            slot_size = super_entry.size_of("_SLOT")
            if super_size is not None and slot_size is not None \
                    and spec.slot_offsets is not None:
                slot_off2 = (spec.slot_offsets
                             == (super_size, super_size + slot_size))
        yield "storage.py", [
            ("fmt", "_SUPER", spec.super_fmt, "superblock layout"),
            ("size", "_SUPER", spec.super_size, "superblock size"),
            ("fmt", "_SLOT", spec.slot_fmt, "header-slot layout"),
            ("size", "_SLOT", spec.slot_size, "header-slot size"),
            ("offsets", "_SLOT", slot_off2, "header-slot offsets"),
            ("fmt", "_RECORD", spec.record_fmt, "record-header layout"),
            ("size", "_RECORD", spec.record_size, "record-header size"),
            ("int", "_DATA_START", spec.heap_offset, "heap start offset"),
            ("fmt", "_TABLE_STAMP", spec.stamp_fmt, "table-stamp layout"),
            ("size", "_TABLE_STAMP", spec.stamp_size, "table-stamp size"),
            ("magic", "_TABLE_MAGIC", spec.stamp_magic,
             "table-stamp magic"),
            ("int", "_TABLE_ID", spec.table_id, "page-table record id"),
            ("int", "_META_ID", spec.meta_id, "metadata record id"),
        ]
        yield "storage_v3.py", [
            ("fmt", "_TABLE_COUNT", spec.count_fmt,
             "v3 table entry count layout"),
            ("fmt", "_TABLE_ENTRY", spec.entry_fmt,
             "v3 table entry layout"),
            ("int", "_RECORD_ALIGN", spec.align, "record alignment"),
        ]
        yield "nodecodec.py", [
            ("fmt", "_NODE_HEADER", spec.node_fmt, "node-header layout"),
            ("size", "_NODE_HEADER", spec.node_size, "node-header size"),
        ]

    def _compare(self, constants: _Constants, kind: str, name: str,
                 doc_value: object, anchor: str,
                 doc_name: str) -> Iterator[Finding]:
        if doc_value is None:
            line, col = self._where(constants, name)
            yield self._at(constants.path, line, col,
                           f"{doc_name} anchor for the {anchor} "
                           f"(checked against {name}) was not found; "
                           "the spec was reworded out from under the "
                           "conformance check")
            return
        if kind == "fmt":
            entry = constants.formats.get(name)
            if entry is None:
                yield self._missing(constants, name, anchor)
            elif entry[0] != doc_value:
                yield self._at(constants.path, entry[1], entry[2],
                               f"{name} packs '{entry[0]}' but "
                               f"{doc_name} documents the {anchor} as "
                               f"'{doc_value}'")
        elif kind == "size":
            size = constants.size_of(name)
            if size is None:
                yield self._missing(constants, name, anchor)
            elif size != doc_value:
                entry = constants.formats[name]
                yield self._at(constants.path, entry[1], entry[2],
                               f"{name} is {size} bytes but {doc_name} "
                               f"documents the {anchor} as {doc_value} "
                               "bytes")
        elif kind == "int":
            entry = constants.ints.get(name)
            if entry is None:
                yield self._missing(constants, name, anchor)
            elif entry[0] != doc_value:
                yield self._at(constants.path, entry[1], entry[2],
                               f"{name} = {entry[0]} but {doc_name} "
                               f"documents the {anchor} as {doc_value}")
        elif kind == "magic":
            entry = constants.magics.get(name)
            if entry is None:
                yield self._missing(constants, name, anchor)
            elif entry[0].decode("ascii", "replace") != doc_value:
                yield self._at(constants.path, entry[1], entry[2],
                               f"{name} = {entry[0]!r} but {doc_name} "
                               f"documents the {anchor} as "
                               f"'{doc_value}'")
        elif kind == "offsets":
            # doc_value is the precomputed boolean from _checks.
            if doc_value is False:
                entry = constants.formats.get(name)
                line, col = (entry[1], entry[2]) if entry \
                    else self._where(constants, name)
                yield self._at(constants.path, line, col,
                               "header-slot offsets in the doc do not "
                               "equal _SUPER.size and _SUPER.size + "
                               "_SLOT.size")

    def _check_magics(self, constants: _Constants, spec: _DocSpec,
                      doc_name: str) -> Iterator[Finding]:
        code_magics = {
            name: value for name, (value, _, _)
            in constants.magics.items()
            if value.startswith(b"WALRUS")
        }
        decoded = {value.decode("ascii", "replace")
                   for value in code_magics.values()}
        for name, (value, line, col) in constants.magics.items():
            if not value.startswith(b"WALRUS"):
                continue
            text = value.decode("ascii", "replace")
            if text not in spec.magic_strings:
                yield self._at(constants.path, line, col,
                               f"magic {name} = {value!r} is not "
                               f"documented in {doc_name}")
        for magic in sorted(spec.magic_strings - decoded):
            yield self._at(constants.path, 1, 0,
                           f"{doc_name} documents magic '{magic}' but "
                           "no storage constant defines it")

    def _locate_doc(self) -> str | None:
        for constants in self._modules.values():
            directory = os.path.dirname(os.path.abspath(constants.path))
            while True:
                candidate = os.path.join(directory, "docs", "FORMAT.md")
                if os.path.isfile(candidate):
                    return candidate
                parent = os.path.dirname(directory)
                if parent == directory:
                    break
                directory = parent
        return None

    def _where(self, constants: _Constants, name: str) -> tuple[int, int]:
        for table in (constants.formats, constants.magics,
                      constants.ints):
            entry = table.get(name)
            if entry is not None:
                return entry[1], entry[2]
        return 1, 0

    def _missing(self, constants: _Constants, name: str,
                 anchor: str) -> Finding:
        return self._at(constants.path, 1, 0,
                        f"expected layout constant {name} (the "
                        f"{anchor}) was not found in this module")

    def _at(self, path: str, line: int, col: int,
            message: str) -> Finding:
        return Finding(path=path, line=line, col=col, code=self.code,
                       message=message)
