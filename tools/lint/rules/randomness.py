"""R002 — all randomness must flow through explicit, seedable RNGs.

WALRUS retrieval correctness depends on exact reproducibility: the
synthetic dataset, fault-injection plans and any future sampling must
be byte-identical across runs and processes.  Module-level
``np.random.*`` calls mutate hidden global state (and differ across
worker processes); bare ``random.*`` module functions share one global
``Random``.  Construct an explicit ``numpy.random.Generator`` (via
``np.random.default_rng(seed)``) or ``random.Random(seed)`` and pass
it down instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.engine import Finding, Rule, SourceFile, register

#: ``np.random.<name>`` attributes that are constructors/types rather
#: than draws from the hidden global state.
_NUMPY_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: ``random.<name>`` attributes that construct an explicit RNG.
_STDLIB_ALLOWED = frozenset({"Random", "SystemRandom"})

#: Names the numpy module is conventionally imported as.
_NUMPY_NAMES = frozenset({"np", "numpy"})


def _attribute_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty when not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


@register
class UnseededRandomnessRule(Rule):
    code = "R002"
    name = "no-unseeded-randomness"
    rationale = ("use an explicit numpy.random.Generator "
                 "(np.random.default_rng(seed)) or random.Random(seed); "
                 "module-level RNG state breaks reproducibility")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            if len(chain) == 3 and chain[0] in _NUMPY_NAMES \
                    and chain[1] == "random" \
                    and chain[2] not in _NUMPY_ALLOWED:
                yield self.finding(
                    source, node,
                    f"{'.'.join(chain)} draws from numpy's hidden global "
                    "RNG; use an explicit np.random.default_rng(seed) "
                    "Generator")
            elif len(chain) == 2 and chain[0] == "random" \
                    and chain[1] not in _STDLIB_ALLOWED:
                yield self.finding(
                    source, node,
                    f"{'.'.join(chain)} uses the shared module-level "
                    "Random; construct random.Random(seed) explicitly")
