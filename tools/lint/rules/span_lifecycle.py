"""R014 — span handles must be entered with ``with``.

``Tracer.span(...)`` returns a context-manager *handle*, not a span:
nothing starts until ``__enter__`` and — critically — nothing ever
finishes without ``__exit__``.  A handle that is called and discarded
(``tracer.span("probe")`` as a bare statement) or parked in a variable
that is never entered records no timing, never resets the
ambient-span context variable, and if entered manually without a
paired exit leaves every subsequent span in the request parented to a
ghost.  The whole-trace invariant (root exit → flight-recorder
hand-off) rests on enter/exit pairing, so the rule insists on the one
form Python guarantees to pair them: the ``with`` statement.

Flagged inside ``src/repro``::

    tracer.span("probe")                  # discarded: never runs
    handle = get_tracer().span("probe")   # parked: nothing pairs it

Allowed::

    with tracer.span("probe") as span: ...
    with get_tracer().span("probe", parent=remote) as span: ...

The two lifecycle owners are exempt: ``observability/spans.py``
(defines the handles) and ``observability/tracing.py`` (the
``SpanStageTrace`` adapter enters/exits handles manually to bridge
the stage-block protocol).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.engine import (Finding, Rule, SourceFile, path_segments,
                               register)

#: Files that own the handle lifecycle and may manage it manually.
_EXEMPT_FILES = frozenset({"spans.py", "tracing.py"})


def _is_span_call(node: ast.Call) -> bool:
    """``<receiver>.span(...)`` where the receiver looks like a tracer:
    a name or attribute mentioning ``tracer`` or a direct
    ``get_tracer()`` call."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "span":
        return False
    receiver = func.value
    if isinstance(receiver, ast.Call):
        inner = receiver.func
        name = inner.attr if isinstance(inner, ast.Attribute) else \
            inner.id if isinstance(inner, ast.Name) else ""
        return name == "get_tracer"
    if isinstance(receiver, ast.Name):
        return "tracer" in receiver.id.lower()
    if isinstance(receiver, ast.Attribute):
        return "tracer" in receiver.attr.lower()
    return False


@register
class SpanLifecycleRule(Rule):
    code = "R014"
    name = "span-lifecycle"
    rationale = ("Tracer.span(...) returns a context-manager handle; "
                 "only a with statement guarantees the __enter__/"
                 "__exit__ pairing that finishes the span and restores "
                 "the ambient-span context")

    def applies_to(self, path: str) -> bool:
        segments = path_segments(path)
        if "repro" not in segments or "tests" in segments:
            return False
        if "observability" in segments and segments \
                and segments[-1] in _EXEMPT_FILES:
            return False
        return True

    def check(self, source: SourceFile) -> Iterator[Finding]:
        managed: set[int] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    managed.add(id(item.context_expr))
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) and _is_span_call(node) \
                    and id(node) not in managed:
                yield self.finding(
                    source, node,
                    "span handle not entered with a with statement; "
                    "write `with tracer.span(...) as span:` so the "
                    "span is guaranteed to finish")
