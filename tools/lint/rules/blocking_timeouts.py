"""R008 — the serving layer never blocks without an explicit timeout.

A long-running daemon dies by accumulation: one ``queue.get()`` or
``lock.acquire()`` with no timeout, one ``urlopen`` with no socket
deadline, and a stuck peer turns into a stuck handler thread, a
drained pool, and a server that is "up" but serves nothing.  Inside
``src/repro/server`` every potentially-blocking primitive call must
carry an explicit bound:

* wait-style calls — ``acquire`` / ``wait`` / ``join`` / ``get`` with
  no arguments — must pass ``timeout=...`` (a positional wait bound,
  e.g. ``wait(5.0)``, also counts; ``acquire(blocking=False)`` is
  non-blocking and allowed);
* network calls — ``urlopen`` / ``create_connection`` — must pass
  ``timeout=...`` always (the stdlib default is "block forever").

The rule is deliberately scoped to the server package: library code
may reasonably block indefinitely under a caller's control, a daemon
may not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.engine import Finding, Rule, SourceFile, path_segments, register

#: Methods that block forever when called with no arguments.
_WAIT_LIKE = frozenset({"acquire", "wait", "join", "get"})

#: Network entry points whose stdlib default timeout is "forever".
_NETWORK = frozenset({"urlopen", "create_connection"})


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _has_keyword(node: ast.Call, name: str) -> bool:
    return any(keyword.arg == name for keyword in node.keywords)


def _is_nonblocking_acquire(node: ast.Call) -> bool:
    """``acquire(False)`` / ``acquire(blocking=False)`` never block."""
    for keyword in node.keywords:
        if keyword.arg == "blocking" \
                and isinstance(keyword.value, ast.Constant) \
                and keyword.value.value is False:
            return True
    if node.args and isinstance(node.args[0], ast.Constant) \
            and node.args[0].value is False:
        return True
    return False


@register
class BlockingTimeoutRule(Rule):
    code = "R008"
    name = "no-unbounded-blocking"
    rationale = ("serving-layer code must bound every blocking call: "
                 "pass timeout= to acquire/wait/join/get and "
                 "urlopen/create_connection so a stuck peer cannot pin "
                 "a handler thread forever")

    def applies_to(self, path: str) -> bool:
        segments = path_segments(path)
        return "repro" in segments and "server" in segments

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in _NETWORK:
                if not _has_keyword(node, "timeout"):
                    yield self.finding(
                        source, node,
                        f"{name}(...) without timeout= blocks forever "
                        "on a dead peer; pass an explicit timeout")
            elif name in _WAIT_LIKE and isinstance(node.func,
                                                   ast.Attribute):
                if node.args or _has_keyword(node, "timeout"):
                    continue  # a positional bound or explicit timeout
                if name == "acquire" and _is_nonblocking_acquire(node):
                    continue
                yield self.finding(
                    source, node,
                    f".{name}() with neither arguments nor timeout= "
                    "can block forever; pass timeout= (or "
                    "blocking=False for acquire)")
