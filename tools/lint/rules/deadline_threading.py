"""R011 — functions that accept a ``Deadline`` must honor it.

PR 6 threaded per-request deadlines from the server handlers down
through the R*-tree search, the region matcher, and the extraction
pipeline: every function on that path takes ``deadline: Deadline |
None`` and consults it inside its loops, so an expired budget stops
work in bounded time instead of after an unbounded traversal.  That
contract was hand-enforced; this rule encodes it.  A function is *on
the budgeted path* exactly when it declares a ``deadline`` parameter,
and then three things must hold:

* the body consults the deadline at least once — ``deadline.check()``,
  forwarding it to a callee, or calling a local closure that does;
  an unconsulted parameter silently drops the caller's budget;
* every ``while`` loop consults the deadline in its own subtree
  (unless an enclosing loop already consults per iteration) — these
  are the unbounded traversals deadlines exist to stop;
* every call to a same-module function or same-class method that
  itself declares a ``deadline`` parameter must pass the deadline on
  (explicitly passing ``deadline=None`` is a visible opt-out and
  accepted; *omitting* the argument silently unbudgets the subtree).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint import dataflow
from tools.lint.engine import Finding, Rule, SourceFile, path_segments, register


def _has_deadline_keyword(call: ast.Call) -> bool:
    return any(keyword.arg == "deadline" for keyword in call.keywords)


@register
class DeadlineThreadingRule(Rule):
    code = "R011"
    name = "deadline-threading"
    rationale = ("a function taking 'deadline' is on the server's "
                 "budgeted path: consult it, check it in every while "
                 "loop, and forward it to budgeted callees so expired "
                 "requests stop in bounded time")

    def applies_to(self, path: str) -> bool:
        segments = path_segments(path)
        return "repro" in segments and "tests" not in segments

    def check(self, source: SourceFile) -> Iterator[Finding]:
        index = dataflow.ModuleIndex.build(source)
        for info in index.classes.values():
            for method in info.methods.values():
                yield from self._check_function(source, index, method,
                                                class_info=info)
        for func in index.functions.values():
            yield from self._check_function(source, index, func,
                                            class_info=None)

    def _check_function(self, source: SourceFile,
                        index: dataflow.ModuleIndex,
                        func: dataflow.FunctionNode, *,
                        class_info: dataflow.ClassInfo | None
                        ) -> Iterator[Finding]:
        name = dataflow.deadline_param_name(func)
        if name is None:
            return
        closures = dataflow.consulting_local_functions(func, name)
        if not dataflow.consults_deadline(func, name, closures):
            yield self.finding(
                source, func,
                f"'{func.name}' takes '{name}' but never consults it; "
                "the caller's budget is silently dropped — call "
                f"{name}.check(...) or forward it")
            return
        yield from self._check_loops(source, func.body, name, closures,
                                     func.name, covered=False)
        yield from self._check_calls(source, index, func, name,
                                     class_info)

    def _check_loops(self, source: SourceFile, body: list[ast.stmt],
                     name: str, closures: frozenset[str],
                     func_name: str, *, covered: bool
                     ) -> Iterator[Finding]:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                continue
            if isinstance(statement, ast.While):
                consults = dataflow.consults_deadline(statement, name,
                                                      closures)
                if not consults and not covered:
                    yield self.finding(
                        source, statement,
                        f"while loop in '{func_name}' never consults "
                        f"'{name}'; an unbounded traversal outlives an "
                        f"expired budget — add {name}.check(...) in "
                        "the loop body")
                yield from self._check_loops(
                    source, statement.body, name, closures, func_name,
                    covered=covered or consults)
                yield from self._check_loops(
                    source, statement.orelse, name, closures, func_name,
                    covered=covered)
            elif isinstance(statement, ast.For):
                consults = dataflow.consults_deadline(statement, name,
                                                      closures)
                yield from self._check_loops(
                    source, statement.body, name, closures, func_name,
                    covered=covered or consults)
                yield from self._check_loops(
                    source, statement.orelse, name, closures, func_name,
                    covered=covered)
            else:
                for child_body in _statement_bodies(statement):
                    yield from self._check_loops(
                        source, child_body, name, closures, func_name,
                        covered=covered)

    def _check_calls(self, source: SourceFile,
                     index: dataflow.ModuleIndex,
                     func: dataflow.FunctionNode, name: str,
                     class_info: dataflow.ClassInfo | None
                     ) -> Iterator[Finding]:
        env = dataflow.function_env(func, index)
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = self._budgeted_callee(node, index, env, class_info)
            if callee is None:
                continue
            if dataflow.forwards_deadline(node, name) \
                    or _has_deadline_keyword(node):
                continue
            yield self.finding(
                source, node,
                f"call to budgeted '{callee}' drops '{name}'; pass "
                f"{name} through (or an explicit deadline=None to "
                "opt out visibly)")

    def _budgeted_callee(self, call: ast.Call,
                         index: dataflow.ModuleIndex,
                         env: dict[str, str],
                         class_info: dataflow.ClassInfo | None
                         ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            target = index.functions.get(func.id)
            if target is not None \
                    and dataflow.deadline_param_name(target) is not None:
                return func.id
            return None
        if isinstance(func, ast.Attribute):
            owner_name = dataflow.base_class_of(
                func.value, env,
                class_info.name if class_info is not None else None,
                index)
            owner = index.classes.get(owner_name) \
                if owner_name is not None else None
            if owner is None:
                return None
            target = owner.methods.get(func.attr)
            if target is not None \
                    and dataflow.deadline_param_name(target) is not None:
                return f"{owner.name}.{func.attr}"
        return None


def _statement_bodies(statement: ast.stmt) -> Iterator[list[ast.stmt]]:
    """The nested statement lists of a compound statement."""
    for field_name in ("body", "orelse", "finalbody"):
        body = getattr(statement, field_name, None)
        if isinstance(body, list) and body \
                and isinstance(body[0], ast.stmt):
            yield body
    handlers = getattr(statement, "handlers", None)
    if handlers:
        for handler in handlers:
            yield handler.body
