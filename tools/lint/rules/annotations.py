"""R005 — the public surface must be completely type-annotated.

``mypy --strict`` only checks what it can see: an unannotated public
function is silently skipped, so its callers get no checking at all.
This rule closes the loop locally (no mypy install needed): every
public function or method in the library — including dunders, which
*are* public surface — must annotate every parameter and its return
type.  Single-underscore helpers are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from tools.lint.engine import Finding, Rule, SourceFile, register

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_public(name: str) -> bool:
    """Public names plus dunders; ``_helper`` style names are exempt."""
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


def _decorator_names(node: _FunctionNode) -> set[str]:
    names: set[str] = set()
    for decorator in node.decorator_list:
        target = decorator
        if isinstance(target, ast.Call):
            target = target.func
        while isinstance(target, ast.Attribute):
            target = target.value
        if isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _missing_parameters(node: _FunctionNode, *,
                        skip_first: bool) -> list[str]:
    arguments = node.args
    ordered: list[ast.arg] = [*arguments.posonlyargs, *arguments.args]
    if skip_first and ordered:
        ordered = ordered[1:]
    ordered.extend(arguments.kwonlyargs)
    missing = [arg.arg for arg in ordered if arg.annotation is None]
    for variadic, prefix in ((arguments.vararg, "*"),
                             (arguments.kwarg, "**")):
        if variadic is not None and variadic.annotation is None:
            missing.append(prefix + variadic.arg)
    return missing


@register
class PublicAnnotationsRule(Rule):
    code = "R005"
    name = "public-annotations"
    rationale = ("public functions and methods must have complete "
                 "parameter and return annotations so mypy --strict "
                 "actually checks them")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        yield from self._check_body(source, source.tree.body,
                                    in_class=False)

    def _check_body(self, source: SourceFile, body: list[ast.stmt], *,
                    in_class: bool) -> Iterator[Finding]:
        for statement in body:
            if isinstance(statement, ast.ClassDef):
                yield from self._check_body(source, statement.body,
                                            in_class=True)
            elif isinstance(statement, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                yield from self._check_function(source, statement,
                                               in_class=in_class)

    def _check_function(self, source: SourceFile, node: _FunctionNode, *,
                        in_class: bool) -> Iterator[Finding]:
        if not _is_public(node.name):
            return
        decorators = _decorator_names(node)
        if "overload" in decorators:
            return
        skip_first = in_class and "staticmethod" not in decorators
        missing = _missing_parameters(node, skip_first=skip_first)
        if missing:
            yield self.finding(
                source, node,
                f"public function {node.name!r} has unannotated "
                f"parameter(s): {', '.join(missing)}")
        if node.returns is None:
            yield self.finding(
                source, node,
                f"public function {node.name!r} has no return annotation")
