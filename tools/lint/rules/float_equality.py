"""R003 — no exact ``==``/``!=`` against floats in numeric hot paths.

The DP sliding-window transform and the R*-tree geometry are specified
to be *bit-identical* across code paths; equivalence is asserted with
``np.array_equal``/``tobytes()`` comparisons in tests.  Inside the
``core``/``index``/``wavelets`` hot paths, however, comparing a
computed float against a float literal with ``==``/``!=`` is almost
always a latent tolerance bug — use ``np.isclose``/``math.isclose``
with an explicit tolerance, restructure around an ordering comparison,
or suppress with ``# lint: allow[R003]`` when exactness is genuinely
intended (e.g. testing against a value that was assigned, not
computed).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.engine import (Finding, Rule, SourceFile, path_segments,
                               register)

#: Subpackage directory names this rule guards.
_HOT_SEGMENTS = frozenset({"core", "index", "wavelets"})


def _is_float_literal(node: ast.expr) -> bool:
    """Float constants, including negated ones and ``float(...)`` calls."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "float":
        return True
    return False


@register
class FloatEqualityRule(Rule):
    code = "R003"
    name = "no-exact-float-equality"
    rationale = ("in core/index/wavelets, compare floats with "
                 "np.isclose/explicit tolerances, not ==/!= against "
                 "float values")

    def applies_to(self, path: str) -> bool:
        segments = path_segments(path)
        return ("tests" not in segments
                and bool(_HOT_SEGMENTS.intersection(segments)))

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        source, node,
                        f"exact float {symbol} comparison in a hot path; "
                        "use np.isclose or an explicit tolerance")
