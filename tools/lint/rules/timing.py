"""R006 — all timing in the library goes through the observability layer.

Scattered ``time.perf_counter()`` pairs are how instrumentation rots:
each call site re-invents start/stop bookkeeping, none of it reaches
the metrics registry, and a disabled registry can't switch it off.
Inside ``repro`` every measurement must use the observability layer's
primitives — ``Stopwatch`` for raw elapsed seconds, or
``get_metrics().timer(name)`` to record straight into a histogram.
The observability package itself is the one sanctioned home of the
underlying clock calls — with one exception: ``spans.py`` stamps
every span timestamp off the module-level ``Stopwatch`` epoch, never
a raw clock, so the rule covers it too (a stray ``perf_counter`` in
the span layer would desynchronize span times from stage timings).

``time.sleep`` and calendar functions (``time.strftime`` etc.) are not
measurements and stay allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.engine import Finding, Rule, SourceFile, path_segments, register

#: ``time.<name>`` clock reads that belong behind the observability API.
_BANNED_CLOCKS = frozenset({
    "time", "time_ns",
    "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
    "process_time", "process_time_ns",
    "thread_time", "thread_time_ns",
})


@register
class DirectTimingRule(Rule):
    code = "R006"
    name = "no-direct-timing"
    rationale = ("use repro.observability.Stopwatch or "
                 "get_metrics().timer(name) instead of raw time.* clock "
                 "reads; only the observability layer touches the clock")

    def applies_to(self, path: str) -> bool:
        segments = path_segments(path)
        if "repro" not in segments:
            return False
        if "observability" not in segments:
            return True
        # Within the sanctioned clock home, the span layer alone is
        # held to the rule: all its times come from the shared epoch.
        return bool(segments) and segments[-1] == "spans.py"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _BANNED_CLOCKS:
                        yield self.finding(
                            source, node,
                            f"from time import {alias.name}: import "
                            "Stopwatch from repro.observability instead")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == "time" \
                    and node.func.attr in _BANNED_CLOCKS:
                yield self.finding(
                    source, node,
                    f"time.{node.func.attr}() bypasses the observability "
                    "layer; use Stopwatch or get_metrics().timer(name)")
