"""Built-in lint rules.

Importing this package registers every rule with the engine's
registry.  Each rule lives in its own module so the framework stays a
plugin API: drop a new module here, decorate the class with
``@register``, import it below, and it runs.

R001–R008 and R014 are per-node rules; R009–R013 are built on the
dataflow layer in ``tools/lint/dataflow.py`` (see
``docs/DEVELOPING.md``).
"""

from __future__ import annotations

from tools.lint.rules.annotations import PublicAnnotationsRule
from tools.lint.rules.blocking_timeouts import BlockingTimeoutRule
from tools.lint.rules.deadline_threading import DeadlineThreadingRule
from tools.lint.rules.exceptions import BareExceptionRule
from tools.lint.rules.float_equality import FloatEqualityRule
from tools.lint.rules.format_spec import FormatSpecRule
from tools.lint.rules.lock_discipline import LockDisciplineRule
from tools.lint.rules.lock_ordering import LockOrderingRule
from tools.lint.rules.logging_handlers import LoggingHandlerIsolationRule
from tools.lint.rules.picklable import PicklableSubmissionRule
from tools.lint.rules.randomness import UnseededRandomnessRule
from tools.lint.rules.span_lifecycle import SpanLifecycleRule
from tools.lint.rules.timing import DirectTimingRule
from tools.lint.rules.view_escape import ViewEscapeRule

__all__ = [
    "BareExceptionRule",
    "BlockingTimeoutRule",
    "DeadlineThreadingRule",
    "FloatEqualityRule",
    "FormatSpecRule",
    "LockDisciplineRule",
    "LockOrderingRule",
    "LoggingHandlerIsolationRule",
    "PicklableSubmissionRule",
    "PublicAnnotationsRule",
    "SpanLifecycleRule",
    "UnseededRandomnessRule",
    "ViewEscapeRule",
]
