"""Built-in lint rules.

Importing this package registers every rule with the engine's
registry.  Each rule lives in its own module so the framework stays a
plugin API: drop a new module here, decorate the class with
``@register``, import it below, and it runs.
"""

from __future__ import annotations

from tools.lint.rules.annotations import PublicAnnotationsRule
from tools.lint.rules.blocking_timeouts import BlockingTimeoutRule
from tools.lint.rules.exceptions import BareExceptionRule
from tools.lint.rules.float_equality import FloatEqualityRule
from tools.lint.rules.logging_handlers import LoggingHandlerIsolationRule
from tools.lint.rules.picklable import PicklableSubmissionRule
from tools.lint.rules.randomness import UnseededRandomnessRule
from tools.lint.rules.timing import DirectTimingRule

__all__ = [
    "BareExceptionRule",
    "BlockingTimeoutRule",
    "UnseededRandomnessRule",
    "FloatEqualityRule",
    "PicklableSubmissionRule",
    "PublicAnnotationsRule",
    "DirectTimingRule",
    "LoggingHandlerIsolationRule",
]
