"""Repository development tools (not shipped with the ``repro`` wheel).

``tools.lint`` is the project's custom AST lint framework; run it as
``python -m tools.lint src/`` from the repository root, or through the
CLI as ``walrus lint``.
"""
