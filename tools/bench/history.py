"""Continuous benchmark regression tracking over ``BENCH_<n>.json``.

Each run executes a small deterministic workload — generate a seeded
dataset, bulk-ingest it, run one EXPLAIN query cold and once more
warm, then persist the same collection to disk and time full node-read
sweeps over both on-disk page formats (v2 pickle and v3 zero-copy
mmap) — and appends the measurements as the next ``BENCH_<n>.json``
entry in the history directory.  The new entry is then compared
against the previous one:

* **Counts** (node reads, probes, candidates, matches, regions …) are
  deterministic under fixed seeds, so any difference between entries
  with the same workload config is a regression — compared exactly.
* **Timings** (ingest / query wall seconds) are hardware-dependent, so
  they are only compared when the machine fingerprint matches the
  previous entry, and then with a relative tolerance plus an absolute
  floor that ignores sub-50 ms noise.

Exit status: ``0`` clean (or nothing comparable), ``1`` regression,
``2`` usage error.

Usage::

    PYTHONPATH=src python -m tools.bench.history [--dir .] [--smoke]
    PYTHONPATH=src python -m tools.bench.history --tolerance 0.5

The entry schema is versioned (``schema_version``); entries from a
different schema or workload config are reported but never compared.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import shutil
import sys
import tempfile
from typing import Any, Sequence

from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.datasets.generator import DatasetSpec, generate_dataset, render_scene
from repro.index.migrate import migrate_page_file
from repro.index.pagestore import open_page_store
from repro.observability import Stopwatch

#: Retrieval-experiment extraction settings (Section 6.4, multi-scale
#: 16..64 windows) — same as the benchmark harnesses use.
WORKLOAD_PARAMS = ExtractionParameters(window_min=16, window_max=64,
                                       stride=8, cluster_threshold=0.05,
                                       color_space="ycc")

SCHEMA_VERSION = 2

#: Full-file node-read sweeps timed per on-disk format.
NODE_READ_SWEEPS = 3

#: Relative slowdown a timing may show before it counts as a regression.
DEFAULT_TOLERANCE = 1.0

#: Timings and deltas below this many seconds are noise, never regressions.
TIMING_FLOOR_SECONDS = 0.05

_ENTRY_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")


def machine_fingerprint() -> dict[str, Any]:
    """Identity of the host, for gating timing comparisons."""
    return {
        "system": platform.system(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def measure_node_reads(collection: list, *, workers: int,
                       sweeps: int = NODE_READ_SWEEPS
                       ) -> tuple[int, dict[str, float]]:
    """Per-format cold node-read sweep timings over one snapshot.

    Persists ``collection`` as a v2 page file, migrates a copy to v3,
    and times ``sweeps`` full read passes over every page on each
    (readonly, ``buffer_pages=1`` so the LRU cannot hide the decode
    cost).  Both files hold byte-equivalent trees, so the delta is
    purely the codec: ``pickle.loads`` vs zero-copy ``np.frombuffer``
    over mmap.  Returns ``(pages, timings)``.
    """
    timings: dict[str, float] = {}
    pages = 0
    with tempfile.TemporaryDirectory(prefix="walrus-bench-") as tmp:
        v2_dir = os.path.join(tmp, "v2")
        database = WalrusDatabase.create(path=v2_dir,
                                         params=WORKLOAD_PARAMS,
                                         page_format=2)
        database.add_images(collection, bulk=True, workers=workers)
        database.checkpoint()
        database.close()
        v3_dir = os.path.join(tmp, "v3")
        shutil.copytree(v2_dir, v3_dir)
        migrate_page_file(os.path.join(v3_dir, WalrusDatabase.PAGE_FILE),
                          to_format=3)
        for label, directory in (("v2", v2_dir), ("v3", v3_dir)):
            page_path = os.path.join(directory, WalrusDatabase.PAGE_FILE)
            store = open_page_store(page_path, readonly=True,
                                    buffer_pages=1)
            try:
                page_ids = sorted(store.page_ids())
                watch = Stopwatch()
                for _ in range(sweeps):
                    for page_id in page_ids:
                        store.read(page_id)
                timings[f"{label}_node_read_seconds"] = watch.elapsed
            finally:
                store.close()
            pages = len(page_ids)
    return pages, timings


def run_workload(*, images: int, seed: int, epsilon: float,
                 workers: int) -> tuple[dict[str, int], dict[str, float]]:
    """Run the deterministic workload; returns ``(counts, timings)``.

    Counts come from the EXPLAIN report of a cold query plus a warm
    repeat (cache behaviour), so the entry records the full funnel:
    probes -> candidates -> matched -> returned, node reads and cache
    hits.  All of it is deterministic in ``(images, seed, epsilon)``.
    """
    per_class = -(-images // 10)
    dataset = generate_dataset(DatasetSpec(images_per_class=per_class,
                                           seed=seed))
    collection = list(dataset.images)[:images]
    query_image = render_scene("flowers", seed=866_866, name="bench-query")

    database = WalrusDatabase(WORKLOAD_PARAMS)
    ingest_watch = Stopwatch()
    database.add_images(collection, bulk=True, workers=workers)
    ingest_seconds = ingest_watch.elapsed

    params = QueryParameters(epsilon=epsilon)
    cold_watch = Stopwatch()
    cold = database.query(query_image, params, explain=True)
    cold_seconds = cold_watch.elapsed
    warm_watch = Stopwatch()
    warm = database.query(query_image, params, explain=True)
    warm_seconds = warm_watch.elapsed

    assert cold.report is not None and warm.report is not None
    counts = {f"cold_{key}": value
              for key, value in cold.report.counts().items()}
    counts["images"] = len(collection)
    counts["regions"] = database.region_count
    counts["warm_signature_cache_hit"] = int(warm.report.signature_cache_hit)
    counts["warm_probe_cache_hits"] = warm.report.probe.probe_cache_hits
    counts["warm_index_node_reads"] = warm.report.probe.node_reads
    warm_lookups = (warm.report.probe.probe_cache_hits
                    + warm.report.probe.probe_cache_misses)
    timings = {
        "ingest_seconds": ingest_seconds,
        "cold_query_seconds": cold_seconds,
        "warm_query_seconds": warm_seconds,
        "warm_probe_cache_hit_rate": (
            warm.report.probe.probe_cache_hits / warm_lookups
            if warm_lookups else 0.0),
    }
    disk_pages, disk_timings = measure_node_reads(collection,
                                                  workers=workers)
    counts["disk_pages"] = disk_pages
    timings.update(disk_timings)
    return counts, timings


def build_entry(*, images: int, seed: int, epsilon: float,
                workers: int) -> dict[str, Any]:
    """One schema-versioned history entry for the given config."""
    counts, timings = run_workload(images=images, seed=seed,
                                   epsilon=epsilon, workers=workers)
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "images": images,
            "seed": seed,
            "epsilon": epsilon,
            "workers": workers,
        },
        "machine": machine_fingerprint(),
        "counts": counts,
        "timings": timings,
    }


def history_entries(directory: str) -> list[tuple[int, str]]:
    """``(number, path)`` of every ``BENCH_<n>.json``, sorted by number."""
    found: list[tuple[int, str]] = []
    for name in os.listdir(directory):
        match = _ENTRY_PATTERN.match(name)
        if match is not None:
            found.append((int(match.group(1)),
                          os.path.join(directory, name)))
    return sorted(found)


def compare_entries(previous: dict[str, Any], current: dict[str, Any], *,
                    tolerance: float = DEFAULT_TOLERANCE
                    ) -> tuple[list[str], list[str]]:
    """Diff two entries; returns ``(regressions, notes)``.

    Regressions make the run fail; notes explain what could not be
    compared (schema or config mismatch, different machine).
    """
    regressions: list[str] = []
    notes: list[str] = []
    if previous.get("schema_version") != current.get("schema_version"):
        notes.append(
            f"schema changed ({previous.get('schema_version')} -> "
            f"{current.get('schema_version')}); entries not comparable")
        return regressions, notes
    if previous.get("config") != current.get("config"):
        notes.append("workload config changed; counts not comparable")
    else:
        prev_counts = previous.get("counts", {})
        for key, value in sorted(current.get("counts", {}).items()):
            if key not in prev_counts:
                notes.append(f"count {key} is new; nothing to compare")
            elif prev_counts[key] != value:
                regressions.append(
                    f"count {key} drifted: {prev_counts[key]} -> {value} "
                    "(deterministic under fixed seeds; this is a "
                    "behaviour change)")
    if previous.get("machine") != current.get("machine"):
        notes.append("machine fingerprint changed; timings not comparable")
        return regressions, notes
    prev_timings = previous.get("timings", {})
    for key, value in sorted(current.get("timings", {}).items()):
        if not key.endswith("_seconds") or key not in prev_timings:
            continue
        baseline = prev_timings[key]
        if baseline < TIMING_FLOOR_SECONDS \
                or value - baseline < TIMING_FLOOR_SECONDS:
            continue
        if value > baseline * (1.0 + tolerance):
            regressions.append(
                f"timing {key} regressed: {baseline:.3f}s -> {value:.3f}s "
                f"(> {tolerance:.0%} over baseline)")
    return regressions, notes


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".",
                        help="history directory holding BENCH_<n>.json "
                             "(default: current directory)")
    parser.add_argument("--images", type=int, default=20,
                        help="collection size for the workload")
    parser.add_argument("--seed", type=int, default=1999)
    parser.add_argument("--epsilon", type=float, default=0.085)
    parser.add_argument("--workers", type=int, default=1,
                        help="ingest pool size (1 keeps the workload "
                             "fully deterministic and fork-free)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="relative slowdown allowed before a timing "
                             "counts as a regression (default: 1.0, i.e. "
                             "2x the baseline)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fixed workload for CI (10 images)")
    args = parser.parse_args(argv)

    if args.images < 1 or args.workers < 1:
        print("history: --images and --workers must be >= 1",
              file=sys.stderr)
        return 2
    if not os.path.isdir(args.dir):
        print(f"history: {args.dir} is not a directory", file=sys.stderr)
        return 2
    if args.smoke:
        args.images = 10

    entry = build_entry(images=args.images, seed=args.seed,
                        epsilon=args.epsilon, workers=args.workers)
    existing = history_entries(args.dir)
    number = existing[-1][0] + 1 if existing else 1
    path = os.path.join(args.dir, f"BENCH_{number}.json")
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(entry, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print(f"wrote {path} "
          f"({entry['counts']['images']} images, "
          f"{entry['counts']['regions']} regions, "
          f"cold query {entry['timings']['cold_query_seconds']:.3f}s)")
    print(f"node-read sweeps over {entry['counts']['disk_pages']} pages: "
          f"v2 {entry['timings']['v2_node_read_seconds'] * 1e3:.1f}ms, "
          f"v3 {entry['timings']['v3_node_read_seconds'] * 1e3:.1f}ms")

    if not existing:
        print("no previous entry; nothing to compare")
        return 0
    with open(existing[-1][1], "r", encoding="utf-8") as stream:
        previous = json.load(stream)
    regressions, notes = compare_entries(previous, entry,
                                         tolerance=args.tolerance)
    print(f"compared against {existing[-1][1]}")
    for note in notes:
        print(f"  note: {note}")
    if regressions:
        print("REGRESSIONS:", file=sys.stderr)
        for regression in regressions:
            print(f"  - {regression}", file=sys.stderr)
        return 1
    print("clean: no regressions against the previous entry")
    return 0


if __name__ == "__main__":
    sys.exit(main())
