"""Benchmark regression tracking.

:mod:`tools.bench.history` runs a deterministic WALRUS workload,
appends a schema-versioned ``BENCH_<n>.json`` entry to a history
directory, and compares the new entry against the previous one —
exact equality for deterministic counts, tolerance-based checks for
wall-clock timings (and only when the machine fingerprint matches).
``make bench-history`` and the CI smoke job drive it.
"""
