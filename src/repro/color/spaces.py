"""Color-space conversions: RGB <-> YCC (BT.601 YCbCr), YIQ, HSV.

The paper stores images in YCC ("we present the result with YCC space
only") and also evaluates RGB; Jacobs et al. use YIQ.  All conversions
are pure numpy, operate on float pixels in ``[0, 1]`` and return values
clipped back into ``[0, 1]`` so downstream wavelet signatures live on a
common scale — this is what makes the paper's epsilon ranges
(``eps_c`` = 0.025-0.1, ``eps`` = 0.05-0.09) meaningful.

Chroma channels (Cb/Cr, I/Q) are offset/rescaled into ``[0, 1]``; the
transforms remain affine and invertible, so round-tripping is lossless
up to float precision.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ImageFormatError
from repro.imaging.image import Image

# BT.601 luma coefficients.
_YCC_FORWARD = np.array([
    [0.299, 0.587, 0.114],
    [-0.168736, -0.331264, 0.5],
    [0.5, -0.418688, -0.081312],
])
_YCC_OFFSET = np.array([0.0, 0.5, 0.5])

# NTSC YIQ. I in [-0.5957, 0.5957], Q in [-0.5226, 0.5226]; we rescale
# each into [0, 1].
_YIQ_FORWARD = np.array([
    [0.299, 0.587, 0.114],
    [0.595716, -0.274453, -0.321263],
    [0.211456, -0.522591, 0.311135],
])
_I_MAX = 0.595716
_Q_MAX = 0.522591


def _require_space(image: Image, space: str, operation: str) -> None:
    if image.color_space != space:
        raise ImageFormatError(
            f"{operation} expects a {space} image, got {image.color_space}"
        )


# ----------------------------------------------------------------------
# YCC (YCbCr, BT.601)
# ----------------------------------------------------------------------
def rgb_to_ycc(image: Image) -> Image:
    """Convert an RGB image to YCC (BT.601 YCbCr, channels in [0, 1])."""
    _require_space(image, "rgb", "rgb_to_ycc")
    ycc = image.pixels @ _YCC_FORWARD.T + _YCC_OFFSET
    return Image(np.clip(ycc, 0.0, 1.0), "ycc", image.name)


def ycc_to_rgb(image: Image) -> Image:
    """Invert :func:`rgb_to_ycc`."""
    _require_space(image, "ycc", "ycc_to_rgb")
    inverse = np.linalg.inv(_YCC_FORWARD)
    rgb = (image.pixels - _YCC_OFFSET) @ inverse.T
    return Image(np.clip(rgb, 0.0, 1.0), "rgb", image.name)


# ----------------------------------------------------------------------
# YIQ (NTSC)
# ----------------------------------------------------------------------
def rgb_to_yiq(image: Image) -> Image:
    """Convert RGB to YIQ with I/Q rescaled into [0, 1]."""
    _require_space(image, "rgb", "rgb_to_yiq")
    yiq = image.pixels @ _YIQ_FORWARD.T
    yiq[:, :, 1] = (yiq[:, :, 1] / _I_MAX + 1.0) / 2.0
    yiq[:, :, 2] = (yiq[:, :, 2] / _Q_MAX + 1.0) / 2.0
    return Image(np.clip(yiq, 0.0, 1.0), "yiq", image.name)


def yiq_to_rgb(image: Image) -> Image:
    """Invert :func:`rgb_to_yiq`."""
    _require_space(image, "yiq", "yiq_to_rgb")
    yiq = image.pixels.copy()
    yiq[:, :, 1] = (yiq[:, :, 1] * 2.0 - 1.0) * _I_MAX
    yiq[:, :, 2] = (yiq[:, :, 2] * 2.0 - 1.0) * _Q_MAX
    rgb = yiq @ np.linalg.inv(_YIQ_FORWARD).T
    return Image(np.clip(rgb, 0.0, 1.0), "rgb", image.name)


# ----------------------------------------------------------------------
# HSV (hexcone)
# ----------------------------------------------------------------------
def rgb_to_hsv(image: Image) -> Image:
    """Convert RGB to HSV; H is stored as hue-angle / 360 in [0, 1]."""
    _require_space(image, "rgb", "rgb_to_hsv")
    rgb = image.pixels
    maxc = rgb.max(axis=2)
    minc = rgb.min(axis=2)
    value = maxc
    delta = maxc - minc
    saturation = np.where(maxc > 0, delta / np.maximum(maxc, 1e-12), 0.0)

    r, g, b = rgb[:, :, 0], rgb[:, :, 1], rgb[:, :, 2]
    safe_delta = np.maximum(delta, 1e-12)
    hue = np.zeros_like(maxc)
    is_r = (maxc == r) & (delta > 0)
    is_g = (maxc == g) & (delta > 0) & ~is_r
    is_b = (delta > 0) & ~is_r & ~is_g
    hue = np.where(is_r, ((g - b) / safe_delta) % 6.0, hue)
    hue = np.where(is_g, (b - r) / safe_delta + 2.0, hue)
    hue = np.where(is_b, (r - g) / safe_delta + 4.0, hue)
    hue = hue / 6.0

    hsv = np.stack([hue, saturation, value], axis=2)
    return Image(np.clip(hsv, 0.0, 1.0), "hsv", image.name)


def hsv_to_rgb(image: Image) -> Image:
    """Invert :func:`rgb_to_hsv`."""
    _require_space(image, "hsv", "hsv_to_rgb")
    h = image.pixels[:, :, 0] * 6.0
    s = image.pixels[:, :, 1]
    v = image.pixels[:, :, 2]
    i = np.floor(h).astype(int) % 6
    f = h - np.floor(h)
    p = v * (1 - s)
    q = v * (1 - s * f)
    t = v * (1 - s * (1 - f))
    # For each sector, pick the (r, g, b) triple.
    r = np.choose(i, [v, q, p, p, t, v])
    g = np.choose(i, [t, v, v, q, p, p])
    b = np.choose(i, [p, p, t, v, v, q])
    rgb = np.stack([r, g, b], axis=2)
    return Image(np.clip(rgb, 0.0, 1.0), "rgb", image.name)


# ----------------------------------------------------------------------
# Generic dispatch
# ----------------------------------------------------------------------
_FROM_RGB = {"ycc": rgb_to_ycc, "yiq": rgb_to_yiq, "hsv": rgb_to_hsv,
             "rgb": lambda image: image}
_TO_RGB = {"ycc": ycc_to_rgb, "yiq": yiq_to_rgb, "hsv": hsv_to_rgb,
           "rgb": lambda image: image}


def convert(image: Image, target: str) -> Image:
    """Convert ``image`` to the ``target`` color space.

    Gray images cannot be converted; three-channel images route through
    RGB as the hub space.
    """
    if target == image.color_space:
        return image
    if image.color_space == "gray" or target == "gray":
        raise ImageFormatError(
            "gray conversion is not supported; use Image.to_gray on RGB"
        )
    if image.color_space not in _TO_RGB or target not in _FROM_RGB:
        raise ImageFormatError(
            f"cannot convert {image.color_space} -> {target}"
        )
    return _FROM_RGB[target](_TO_RGB[image.color_space](image))
