"""Color-space conversions (RGB, YCC, YIQ, HSV)."""

from repro.color.spaces import (
    convert,
    hsv_to_rgb,
    rgb_to_hsv,
    rgb_to_ycc,
    rgb_to_yiq,
    ycc_to_rgb,
    yiq_to_rgb,
)

__all__ = [
    "convert",
    "hsv_to_rgb",
    "rgb_to_hsv",
    "rgb_to_ycc",
    "rgb_to_yiq",
    "ycc_to_rgb",
    "yiq_to_rgb",
]
