"""Haar wavelet transforms, following Section 3 of the WALRUS paper.

Conventions
-----------
The paper uses the *average-preserving* (non-orthonormal) Haar variant:

* 1-D step: ``average = (a + b) / 2``, ``detail = (b - a) / 2`` (the
  paper's "difference of the second of the averaged values from the
  average itself").
* 2-D non-standard step on each 2x2 box ``[[p00, p01], [p10, p11]]``
  (numpy ``[row, col]`` order), dividing by 4 exactly as in Figure 2:

  - average             ``( p00 + p01 + p10 + p11) / 4``
  - horizontal detail   ``(-p00 + p01 - p10 + p11) / 4``  (column diff)
  - vertical detail     ``(-p00 - p01 + p10 + p11) / 4``  (row diff)
  - diagonal detail     ``( p00 - p01 - p10 + p11) / 4``

Average preservation is what makes WALRUS's cross-scale matching work:
the top-left coefficient of any window's transform is the *mean* pixel
value of the window regardless of the window's size, so signatures of a
64x64 window and a 128x128 window over the same uniform texture agree.

Layout
------
The 2-D transform of a ``w x w`` input is stored recursively (the
non-standard layout): for each dyadic scale ``q = w/2, w/4, ..., 1`` the
three detail quadrants of size ``q x q`` occupy ``W[:q, q:2q]``
(horizontal), ``W[q:2q, :q]`` (vertical) and ``W[q:2q, q:2q]``
(diagonal); ``W[0, 0]`` is the overall average.  Consequently the
top-left ``m x m`` block of ``W`` is itself the full transform of the
``m x m`` block-average image — the fact the paper's dynamic programming
algorithm exploits and the definition of an ``s x s`` *signature*.

All functions accept arrays with arbitrary leading batch dimensions;
the transform applies to the trailing one (1-D) or two (2-D) axes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import WaveletError


def _check_power_of_two(value: int, what: str) -> None:
    if value < 1 or value & (value - 1):
        raise WaveletError(f"{what} must be a positive power of two, got {value}")


def is_power_of_two(value: int) -> bool:
    """True if ``value`` is a positive power of two."""
    return value >= 1 and value & (value - 1) == 0


# ----------------------------------------------------------------------
# 1-D transform
# ----------------------------------------------------------------------
def haar_1d(values: np.ndarray, *, normalize: bool = False) -> np.ndarray:
    """Full 1-D Haar decomposition of a power-of-two-length signal.

    Returns ``[overall average, coarsest detail, ..., finest details]``
    as in the paper's example ``[2, 2, 5, 7] -> [4, 2, 0, 1]``.  With
    ``normalize=True``, detail coefficients produced ``k`` levels below
    the coarsest are divided by ``sqrt(2)**k`` (the paper's equalizing
    normalization, ``[4, 2, 0, 1/sqrt(2)]`` for the example).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[-1]
    _check_power_of_two(n, "signal length")
    out = np.empty_like(values)
    current = values
    hi = n
    depth = 0
    scale_of: list[tuple[int, int, int]] = []  # (start, stop, depth)
    while hi > 1:
        a = current[..., 0::2]
        b = current[..., 1::2]
        averages = (a + b) / 2.0
        details = (b - a) / 2.0
        out[..., hi // 2: hi] = details
        scale_of.append((hi // 2, hi, depth))
        current = averages
        hi //= 2
        depth += 1
    out[..., 0] = current[..., 0]
    if normalize:
        # depth counts from finest (0) upward; coarsest detail level is
        # depth == total-1 and must keep weight 1.
        total = depth
        for start, stop, d in scale_of:
            out[..., start:stop] /= np.sqrt(2.0) ** (total - 1 - d)
    return out


def ihaar_1d(coeffs: np.ndarray, *, normalize: bool = False) -> np.ndarray:
    """Invert :func:`haar_1d` (exact up to float rounding)."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    n = coeffs.shape[-1]
    _check_power_of_two(n, "coefficient length")
    work = coeffs.copy()
    if normalize:
        total = int(np.log2(n))
        size = n
        depth = 0
        while size > 1:
            work[..., size // 2: size] *= np.sqrt(2.0) ** (total - 1 - depth)
            size //= 2
            depth += 1
    size = 1
    current = work[..., :1].copy()
    while size < n:
        details = work[..., size: 2 * size]
        expanded = np.empty(current.shape[:-1] + (2 * size,), dtype=np.float64)
        expanded[..., 0::2] = current - details
        expanded[..., 1::2] = current + details
        current = expanded
        size *= 2
    return current


# ----------------------------------------------------------------------
# 2-D non-standard transform (Figure 2 of the paper)
# ----------------------------------------------------------------------
def _step_2d(block: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                         np.ndarray, np.ndarray]:
    """One averaging/differencing pass over every 2x2 box.

    ``block`` has shape ``(..., 2m, 2m)``; returns four ``(..., m, m)``
    arrays: averages, horizontal, vertical and diagonal details.
    """
    p00 = block[..., 0::2, 0::2]
    p01 = block[..., 0::2, 1::2]
    p10 = block[..., 1::2, 0::2]
    p11 = block[..., 1::2, 1::2]
    avg = (p00 + p01 + p10 + p11) / 4.0
    hor = (-p00 + p01 - p10 + p11) / 4.0
    ver = (-p00 - p01 + p10 + p11) / 4.0
    diag = (p00 - p01 - p10 + p11) / 4.0
    return avg, hor, ver, diag


def haar_2d(image: np.ndarray) -> np.ndarray:
    """Full non-standard 2-D Haar transform of a ``w x w`` array.

    Batched: input shape ``(..., w, w)``; ``w`` must be a power of two.
    This is the ``computeWavelet`` procedure of Figure 2.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim < 2 or image.shape[-1] != image.shape[-2]:
        raise WaveletError(
            f"expected square trailing axes, got shape {image.shape}"
        )
    w = image.shape[-1]
    _check_power_of_two(w, "image side")
    out = np.empty_like(image)
    current = image
    size = w
    while size > 1:
        avg, hor, ver, diag = _step_2d(current)
        q = size // 2
        out[..., :q, q:size] = hor
        out[..., q:size, :q] = ver
        out[..., q:size, q:size] = diag
        current = avg
        size = q
    out[..., 0, 0] = current[..., 0, 0]
    return out


def ihaar_2d(coeffs: np.ndarray) -> np.ndarray:
    """Invert :func:`haar_2d` (exact up to float rounding)."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.ndim < 2 or coeffs.shape[-1] != coeffs.shape[-2]:
        raise WaveletError(
            f"expected square trailing axes, got shape {coeffs.shape}"
        )
    w = coeffs.shape[-1]
    _check_power_of_two(w, "coefficient side")
    current = coeffs[..., :1, :1].copy()
    size = 1
    while size < w:
        q = size
        hor = coeffs[..., :q, q:2 * q]
        ver = coeffs[..., q:2 * q, :q]
        diag = coeffs[..., q:2 * q, q:2 * q]
        expanded = np.empty(coeffs.shape[:-2] + (2 * q, 2 * q),
                            dtype=np.float64)
        expanded[..., 0::2, 0::2] = current - hor - ver + diag
        expanded[..., 0::2, 1::2] = current + hor - ver - diag
        expanded[..., 1::2, 0::2] = current - hor + ver - diag
        expanded[..., 1::2, 1::2] = current + hor + ver + diag
        current = expanded
        size *= 2
    return current


def haar_2d_standard(image: np.ndarray, *,
                     normalize: bool = False) -> np.ndarray:
    """Standard-decomposition 2-D Haar transform.

    Fully transforms every row, then every column of the result — the
    variant Jacobs et al. [JFS95] use for their image signatures (WALRUS
    itself uses the non-standard :func:`haar_2d`).  Batched over leading
    axes; square power-of-two trailing axes required.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim < 2 or image.shape[-1] != image.shape[-2]:
        raise WaveletError(
            f"expected square trailing axes, got shape {image.shape}"
        )
    _check_power_of_two(image.shape[-1], "image side")
    rows_done = haar_1d(image, normalize=normalize)
    return haar_1d(rows_done.swapaxes(-1, -2),
                   normalize=normalize).swapaxes(-1, -2)


def ihaar_2d_standard(coeffs: np.ndarray, *,
                      normalize: bool = False) -> np.ndarray:
    """Invert :func:`haar_2d_standard`."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    cols_undone = ihaar_1d(coeffs.swapaxes(-1, -2),
                           normalize=normalize).swapaxes(-1, -2)
    return ihaar_1d(cols_undone, normalize=normalize)


def normalize_2d(coeffs: np.ndarray) -> np.ndarray:
    """Apply the paper's 2-D normalization to a transform (or signature).

    Detail quadrants at dyadic scale ``q`` are divided by ``q`` so that
    coarser coefficients carry proportionally more weight (Section 3.2's
    "the normalization factor is 2^i", with the coarsest scale ``q = 1``
    unchanged).  Works on the full transform or any top-left signature
    block, because the layout is self-similar.
    """
    coeffs = np.asarray(coeffs, dtype=np.float64)
    w = coeffs.shape[-1]
    _check_power_of_two(w, "coefficient side")
    out = coeffs.copy()
    q = w // 2
    while q >= 1:
        out[..., :q, q:2 * q] /= q
        out[..., q:2 * q, :q] /= q
        out[..., q:2 * q, q:2 * q] /= q
        q //= 2
    return out


def denormalize_2d(coeffs: np.ndarray) -> np.ndarray:
    """Invert :func:`normalize_2d`."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    w = coeffs.shape[-1]
    _check_power_of_two(w, "coefficient side")
    out = coeffs.copy()
    q = w // 2
    while q >= 1:
        out[..., :q, q:2 * q] *= q
        out[..., q:2 * q, :q] *= q
        out[..., q:2 * q, q:2 * q] *= q
        q //= 2
    return out


def signature_from_transform(coeffs: np.ndarray, s: int) -> np.ndarray:
    """Extract the ``s x s`` lowest-frequency block of a 2-D transform.

    Because the non-standard layout nests, this block is exactly the
    full Haar transform of the ``s x s`` block-average image of the
    original window — the paper's window signature.
    """
    _check_power_of_two(s, "signature side")
    if s > coeffs.shape[-1]:
        raise WaveletError(
            f"signature side {s} exceeds transform side {coeffs.shape[-1]}"
        )
    return np.ascontiguousarray(coeffs[..., :s, :s])
