"""Daubechies-4 (D4) wavelet transform, used by the WBIIS baseline.

WBIIS [WWFW98] computes 4- and 5-level Daubechies wavelet transforms of
each image and keeps low-frequency coefficient blocks plus their
variances as the image signature.  This module provides the substrate:
a periodic (circular-convolution) D4 transform, 1-D and separable 2-D,
multi-level, with exact inverses.

The 2-D transform follows the usual octave-band ("Mallat") layout: each
level filters rows then columns once and recurses on the LL quadrant,
so after ``levels`` levels the top-left ``w / 2**levels`` square holds
the coarsest approximation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import WaveletError
from repro.wavelets.haar import is_power_of_two

_SQRT3 = np.sqrt(3.0)
#: D4 scaling (low-pass) filter taps.
D4_LOW = np.array([(1 + _SQRT3), (3 + _SQRT3), (3 - _SQRT3), (1 - _SQRT3)],
                  dtype=np.float64) / (4.0 * np.sqrt(2.0))
#: D4 wavelet (high-pass) filter taps (quadrature mirror of the low-pass).
D4_HIGH = np.array([D4_LOW[3], -D4_LOW[2], D4_LOW[1], -D4_LOW[0]],
                   dtype=np.float64)


def _d4_step(signal: np.ndarray) -> np.ndarray:
    """One periodic D4 analysis step along the last axis.

    Input length ``n`` (even, >= 4); output is ``[approx | detail]``
    halves of length ``n/2`` each.
    """
    n = signal.shape[-1]
    rolled = [np.roll(signal, -k, axis=-1) for k in range(4)]
    low = sum(D4_LOW[k] * rolled[k][..., 0::2] for k in range(4))
    high = sum(D4_HIGH[k] * rolled[k][..., 0::2] for k in range(4))
    return np.concatenate([low, high], axis=-1)


def _d4_inverse_step(coeffs: np.ndarray) -> np.ndarray:
    """Invert :func:`_d4_step` (periodic synthesis)."""
    n = coeffs.shape[-1]
    half = n // 2
    low = coeffs[..., :half]
    high = coeffs[..., half:]
    out = np.zeros(coeffs.shape[:-1] + (n,), dtype=np.float64)
    # Each output sample x[2k+i] accumulates h[i]*a[k] + g[i]*d[k],
    # with periodic wrap-around.
    for i in range(4):
        idx = (np.arange(half) * 2 + i) % n
        np.add.at(out, (..., idx), D4_LOW[i] * low + D4_HIGH[i] * high)
    return out


def daubechies_1d(values: np.ndarray, levels: int | None = None) -> np.ndarray:
    """Multi-level periodic D4 analysis along the last axis.

    ``levels=None`` decomposes as far as possible (until length 4 stops
    halving cleanly; D4 needs at least 4 samples per step).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[-1]
    if not is_power_of_two(n) or n < 4:
        raise WaveletError(
            f"D4 needs a power-of-two length >= 4, got {n}"
        )
    max_levels = int(np.log2(n)) - 1
    if levels is None:
        levels = max_levels
    if not 1 <= levels <= max_levels:
        raise WaveletError(
            f"levels must be in [1, {max_levels}] for length {n}, got {levels}"
        )
    out = values.copy()
    size = n
    for _ in range(levels):
        out[..., :size] = _d4_step(out[..., :size])
        size //= 2
    return out


def idaubechies_1d(coeffs: np.ndarray, levels: int | None = None) -> np.ndarray:
    """Invert :func:`daubechies_1d`."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    n = coeffs.shape[-1]
    if not is_power_of_two(n) or n < 4:
        raise WaveletError(f"D4 needs a power-of-two length >= 4, got {n}")
    max_levels = int(np.log2(n)) - 1
    if levels is None:
        levels = max_levels
    out = coeffs.copy()
    size = n >> (levels - 1)
    for _ in range(levels):
        out[..., :size] = _d4_inverse_step(out[..., :size])
        size *= 2
    return out


def daubechies_2d(image: np.ndarray, levels: int) -> np.ndarray:
    """Multi-level separable 2-D D4 transform (octave-band layout).

    ``image`` has shape ``(..., h, w)`` with power-of-two ``h == w``.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim < 2 or image.shape[-1] != image.shape[-2]:
        raise WaveletError(f"expected square trailing axes, got {image.shape}")
    w = image.shape[-1]
    if not is_power_of_two(w) or w < 4:
        raise WaveletError(f"D4 needs power-of-two side >= 4, got {w}")
    max_levels = int(np.log2(w)) - 1
    if not 1 <= levels <= max_levels:
        raise WaveletError(
            f"levels must be in [1, {max_levels}] for side {w}, got {levels}"
        )
    out = image.copy()
    size = w
    for _ in range(levels):
        block = out[..., :size, :size]
        block = _d4_step(block)                      # rows
        block = _d4_step(block.swapaxes(-1, -2)).swapaxes(-1, -2)  # cols
        out[..., :size, :size] = block
        size //= 2
    return out


def idaubechies_2d(coeffs: np.ndarray, levels: int) -> np.ndarray:
    """Invert :func:`daubechies_2d`."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    w = coeffs.shape[-1]
    if not is_power_of_two(w) or w < 4:
        raise WaveletError(f"D4 needs power-of-two side >= 4, got {w}")
    out = coeffs.copy()
    size = w >> (levels - 1)
    for _ in range(levels):
        block = out[..., :size, :size]
        block = _d4_inverse_step(block.swapaxes(-1, -2)).swapaxes(-1, -2)
        block = _d4_inverse_step(block)
        out[..., :size, :size] = block
        size *= 2
    return out
