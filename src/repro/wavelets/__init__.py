"""Wavelet substrate: Haar (1-D/2-D), Daubechies-4, sliding-window DP."""

from repro.wavelets.daubechies import (
    daubechies_1d,
    daubechies_2d,
    idaubechies_1d,
    idaubechies_2d,
)
from repro.wavelets.haar import (
    denormalize_2d,
    haar_1d,
    haar_2d,
    ihaar_1d,
    ihaar_2d,
    is_power_of_two,
    normalize_2d,
    signature_from_transform,
)
from repro.wavelets.sliding import (
    SignatureGrid,
    combine_signatures,
    dp_sliding_signatures,
    dp_window_signatures,
    naive_sliding_signatures,
    naive_window_signatures,
)

__all__ = [
    "SignatureGrid",
    "combine_signatures",
    "daubechies_1d",
    "daubechies_2d",
    "denormalize_2d",
    "dp_sliding_signatures",
    "dp_window_signatures",
    "haar_1d",
    "haar_2d",
    "idaubechies_1d",
    "idaubechies_2d",
    "ihaar_1d",
    "ihaar_2d",
    "is_power_of_two",
    "naive_sliding_signatures",
    "naive_window_signatures",
    "normalize_2d",
    "signature_from_transform",
]
