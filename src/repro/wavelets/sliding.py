"""Sliding-window wavelet signatures: naive and dynamic-programming.

This module implements Section 5.2 of the WALRUS paper.

Problem
-------
Given an ``n1 x n2`` single-channel image, compute the ``s x s`` Haar
signature of every ``w x w`` window (for all powers of two ``w`` up to
``w_max``) slid with stride ``t``.

* :func:`naive_sliding_signatures` recomputes a full ``O(w^2)`` wavelet
  transform per window — the baseline whose cost the paper's Figure 6
  plots; total ``O(N * w_max^2)``.
* :func:`dp_sliding_signatures` implements the paper's dynamic program
  (Figures 3-5): the signature of a ``w x w`` window is assembled from
  the already-computed signatures of its four ``w/2 x w/2`` quadrant
  sub-windows by :func:`combine_signatures` (``computeSingleWindow`` +
  ``copyBlocks``), giving ``O(N * S * log2 w_max)`` with ``S = s^2``.

The two must agree coefficient-for-coefficient; a property test enforces
this.

Data model
----------
Signatures per level are stored in a :class:`SignatureGrid`: an array of
shape ``(ny, nx, m, m)`` where ``m = min(w, s)`` and ``(i, j)`` indexes
the window whose top-left pixel is ``(i * stride, j * stride)`` (numpy
row/col order).  The paper's alignment rule ``dist = min(w, t)``
guarantees that the four sub-windows of every level-``w`` window exist
on the level-``w/2`` grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.exceptions import WaveletError
from repro.observability import get_metrics
from repro.wavelets.haar import haar_2d, is_power_of_two


@dataclass(frozen=True)
class SignatureGrid:
    """All ``s x s`` signatures of the ``w x w`` windows of one image.

    Attributes
    ----------
    window_size:
        Side ``w`` of the windows (a power of two).
    stride:
        Horizontal/vertical distance between adjacent window origins
        (``min(w, t)``, per the paper's alignment rule).
    signatures:
        Array of shape ``(ny, nx, m, m)`` with ``m = min(w, s)``;
        ``signatures[i, j]`` is the signature of the window rooted at
        pixel ``(i * stride, j * stride)``.
    """

    window_size: int
    stride: int
    signatures: np.ndarray

    @property
    def grid_shape(self) -> tuple[int, int]:
        """Number of window positions ``(ny, nx)``."""
        return self.signatures.shape[0], self.signatures.shape[1]

    @property
    def signature_size(self) -> int:
        """Side ``m`` of each stored signature block."""
        return self.signatures.shape[-1]

    def origin(self, i: int, j: int) -> tuple[int, int]:
        """Top-left pixel ``(row, col)`` of window ``(i, j)``."""
        return i * self.stride, j * self.stride

    def positions(self) -> Iterator[tuple[int, int, int, int]]:
        """Yield ``(i, j, row, col)`` for every window on the grid."""
        ny, nx = self.grid_shape
        for i in range(ny):
            for j in range(nx):
                yield i, j, i * self.stride, j * self.stride

    def flat(self) -> np.ndarray:
        """Signatures flattened to ``(ny * nx, m * m)`` feature vectors."""
        ny, nx = self.grid_shape
        m = self.signature_size
        return self.signatures.reshape(ny * nx, m * m)


def _validate_params(height: int, width: int, s: int, w_max: int,
                     stride: int) -> None:
    for name, value in (("signature size s", s),
                        ("maximum window size w_max", w_max),
                        ("stride t", stride)):
        if not is_power_of_two(value):
            raise WaveletError(f"{name} must be a power of two, got {value}")
    if w_max > height or w_max > width:
        raise WaveletError(
            f"w_max={w_max} exceeds image size {height}x{width}"
        )
    if s > w_max:
        raise WaveletError(f"signature size {s} exceeds w_max {w_max}")


def _level_positions(extent: int, w: int, dist: int) -> int:
    """Number of window origins along one axis (Figure 5's loop bound)."""
    return (extent - w) // dist + 1


# ----------------------------------------------------------------------
# Naive algorithm
# ----------------------------------------------------------------------
def naive_window_signatures(channel: np.ndarray, w: int, s: int,
                            stride: int, *,
                            batch: int = 256) -> SignatureGrid:
    """Signatures of all ``w x w`` windows by full per-window transforms.

    Each window costs ``O(w^2)`` (the full 2-D transform is computed,
    then truncated to ``s x s``), exactly the naive scheme of the
    paper.  Windows are processed in batches to amortize numpy call
    overhead without changing the asymptotics.
    """
    channel = np.asarray(channel, dtype=np.float64)
    height, width = channel.shape
    _validate_params(height, width, min(s, w), w, stride)
    dist = min(w, stride)
    ny = _level_positions(height, w, dist)
    nx = _level_positions(width, w, dist)
    m = min(w, s)
    out = np.empty((ny, nx, m, m), dtype=np.float64)
    coords = [(i, j) for i in range(ny) for j in range(nx)]
    for start in range(0, len(coords), batch):
        chunk = coords[start:start + batch]
        stack = np.empty((len(chunk), w, w), dtype=np.float64)
        for k, (i, j) in enumerate(chunk):
            r, c = i * dist, j * dist
            stack[k] = channel[r:r + w, c:c + w]
        transforms = haar_2d(stack)
        for k, (i, j) in enumerate(chunk):
            out[i, j] = transforms[k, :m, :m]
    metrics = get_metrics()
    metrics.counter("wavelets.naive_calls").inc()
    metrics.counter("wavelets.naive_windows").inc(ny * nx)
    return SignatureGrid(w, dist, out)


def naive_sliding_signatures(channel: np.ndarray, s: int, w_max: int,
                             stride: int, *, w_min: int = 2,
                             batch: int = 256) -> dict[int, SignatureGrid]:
    """Naive signatures for every window size ``w_min..w_max`` (powers of 2)."""
    results: dict[int, SignatureGrid] = {}
    w = w_min
    while w <= w_max:
        results[w] = naive_window_signatures(channel, w, s, stride,
                                             batch=batch)
        w *= 2
    return results


# ----------------------------------------------------------------------
# Dynamic programming algorithm
# ----------------------------------------------------------------------
def combine_signatures(c1: np.ndarray, c2: np.ndarray, c3: np.ndarray,
                       c4: np.ndarray, m: int) -> np.ndarray:
    """``computeSingleWindow`` (Figure 4), batched.

    ``c1..c4`` are the signature blocks of the top-left, top-right,
    bottom-left and bottom-right sub-windows (arrays ``(..., mc, mc)``
    with ``mc >= m // 2``, of which only the top-left ``m/2 x m/2``
    corner is read).  Returns the ``(..., m, m)`` signature of the
    parent window.

    The base case performs one averaging/differencing step over the four
    sub-window averages; the recursive case is ``copyBlocks`` (Figure 3):
    the parent's scale-``q`` detail quadrants are the 2x2 arrangement of
    the children's scale-``q/2`` detail quadrants.
    """
    if m == 1:
        out = (c1[..., :1, :1] + c2[..., :1, :1]
               + c3[..., :1, :1] + c4[..., :1, :1]) / 4.0
        return out
    if not is_power_of_two(m):
        raise WaveletError(f"combine size must be a power of two, got {m}")
    out = np.empty(c1.shape[:-2] + (m, m), dtype=np.float64)
    _combine_into(c1, c2, c3, c4, m, out)
    return out


def _combine_into(c1: np.ndarray, c2: np.ndarray, c3: np.ndarray,
                  c4: np.ndarray, m: int, out: np.ndarray) -> None:
    """Recursive body of :func:`combine_signatures` writing into ``out``."""
    if m == 2:
        a1 = c1[..., 0, 0]
        a2 = c2[..., 0, 0]
        a3 = c3[..., 0, 0]
        a4 = c4[..., 0, 0]
        out[..., 0, 0] = (a1 + a2 + a3 + a4) / 4.0
        out[..., 0, 1] = (-a1 + a2 - a3 + a4) / 4.0
        out[..., 1, 0] = (-a1 - a2 + a3 + a4) / 4.0
        out[..., 1, 1] = (a1 - a2 - a3 + a4) / 4.0
        return
    h = m // 2
    q = h // 2
    # copyBlocks: parent's scale-h details <- children's scale-q details.
    children = ((c1, 0, 0), (c2, 0, 1), (c3, 1, 0), (c4, 1, 1))
    for child, bi, bj in children:
        rows = slice(bi * q, (bi + 1) * q)
        cols = slice(bj * q, (bj + 1) * q)
        rows_h = slice(h + rows.start, h + rows.stop)
        cols_h = slice(h + cols.start, h + cols.stop)
        out[..., rows, cols_h] = child[..., :q, q:h]     # horizontal
        out[..., rows_h, cols] = child[..., q:h, :q]     # vertical
        out[..., rows_h, cols_h] = child[..., q:h, q:h]  # diagonal
    _combine_into(c1, c2, c3, c4, h, out[..., :h, :h])


def dp_sliding_signatures(channel: np.ndarray, s: int, w_max: int,
                          stride: int, *, w_min: int = 2
                          ) -> dict[int, SignatureGrid]:
    """``computeSlidingWindows`` (Figure 5): DP over dyadic window sizes.

    Level 1 signatures are the raw pixels; every level-``w`` signature is
    assembled from four level-``w/2`` signatures in ``O(min(w, s)^2)``
    regardless of ``w``, for a total of ``O(N * s^2 * log2 w_max)``.

    Parameters
    ----------
    channel:
        2-D float array (one color channel).
    s:
        Signature side (power of two).
    w_max, w_min:
        Largest / smallest window size to report (powers of two).
    stride:
        Requested slide distance ``t``; the effective per-level stride is
        ``min(w, t)`` as required for sub-window alignment.  Levels below
        ``w_min`` are still computed (the DP needs them) but omitted from
        the result.

    Returns
    -------
    dict mapping window size ``w`` to its :class:`SignatureGrid`, for
    every power of two ``w`` in ``[w_min, w_max]``.
    """
    channel = np.asarray(channel, dtype=np.float64)
    if channel.ndim != 2:
        raise WaveletError(f"expected 2-D channel, got {channel.ndim}-D")
    height, width = channel.shape
    _validate_params(height, width, s, w_max, stride)
    if not is_power_of_two(w_min):
        raise WaveletError(f"w_min must be a power of two, got {w_min}")

    # Level 1: each pixel is its own 1x1 window signature.
    previous = SignatureGrid(1, 1, channel[:, :, np.newaxis, np.newaxis])
    results: dict[int, SignatureGrid] = {}
    w = 2
    while w <= w_max:
        dist = min(w, stride)
        ny = _level_positions(height, w, dist)
        nx = _level_positions(width, w, dist)
        m = min(w, s)
        half = w // 2
        child = previous.signatures
        cdist = previous.stride
        step = dist // cdist        # child-grid index step between windows
        off = half // cdist         # child-grid offset of the far quadrant
        # Strided views (no copies): quadrant k of parent (i, j) is the
        # child at grid position (i*step + dy*off, j*step + dx*off).
        def quadrant(dy: int, dx: int) -> np.ndarray:
            rows = slice(dy * off, dy * off + (ny - 1) * step + 1, step)
            cols = slice(dx * off, dx * off + (nx - 1) * step + 1, step)
            return child[rows, cols]

        c1 = quadrant(0, 0)
        c2 = quadrant(0, 1)
        c3 = quadrant(1, 0)
        c4 = quadrant(1, 1)
        grid = SignatureGrid(w, dist, combine_signatures(c1, c2, c3, c4, m))
        if w >= w_min:
            results[w] = grid
        previous = grid
        w *= 2
    metrics = get_metrics()
    metrics.counter("wavelets.dp_calls").inc()
    metrics.counter("wavelets.dp_windows").inc(sum(
        grid.signatures.shape[0] * grid.signatures.shape[1]
        for grid in results.values()))
    return results


def dp_window_signatures(channel: np.ndarray, w: int, s: int,
                         stride: int) -> SignatureGrid:
    """Signatures for a single window size ``w`` via the DP algorithm."""
    return dp_sliding_signatures(channel, s, w, stride, w_min=w)[w]


# ----------------------------------------------------------------------
# Batched (chunk) API
# ----------------------------------------------------------------------
def dp_sliding_signatures_stack(channels: np.ndarray, s: int, w_max: int,
                                stride: int, *, w_min: int = 2
                                ) -> dict[int, np.ndarray]:
    """The Figure 5 DP over a *stack* of equally-sized channels at once.

    ``channels`` is a ``(B, H, W)`` array — e.g. the color channels of
    one image, or all channels of a whole chunk of same-sized images.
    Returns ``{w: array (B, ny, nx, m, m)}`` where slice ``[b]`` is
    bit-identical to ``dp_sliding_signatures(channels[b], ...)[w]``
    (every coefficient is an elementwise combination of the same
    inputs, so batching changes nothing numerically).

    This is the chunk-friendly entry point for batch ingest: each DP
    level is a handful of large elementwise numpy operations, which
    release the GIL and amortize per-call overhead across the whole
    stack instead of paying it once per channel.
    """
    channels = np.asarray(channels, dtype=np.float64)
    if channels.ndim != 3:
        raise WaveletError(
            f"expected a (batch, height, width) stack, got "
            f"{channels.ndim}-D")
    batch, height, width = channels.shape
    if batch == 0:
        raise WaveletError("empty channel stack")
    _validate_params(height, width, s, w_max, stride)
    if not is_power_of_two(w_min):
        raise WaveletError(f"w_min must be a power of two, got {w_min}")

    # Internal layout (ny, nx, B, m, m): the window grid stays on the
    # two leading axes (so the strided quadrant views below work
    # unchanged) and combine_signatures broadcasts over (ny, nx, B).
    previous = np.moveaxis(channels, 0, -1)[:, :, :, np.newaxis, np.newaxis]
    previous_stride = 1
    results: dict[int, np.ndarray] = {}
    w = 2
    while w <= w_max:
        dist = min(w, stride)
        ny = _level_positions(height, w, dist)
        nx = _level_positions(width, w, dist)
        m = min(w, s)
        half = w // 2
        step = dist // previous_stride
        off = half // previous_stride
        child = previous

        def quadrant(dy: int, dx: int) -> np.ndarray:
            rows = slice(dy * off, dy * off + (ny - 1) * step + 1, step)
            cols = slice(dx * off, dx * off + (nx - 1) * step + 1, step)
            return child[rows, cols]

        grid = combine_signatures(quadrant(0, 0), quadrant(0, 1),
                                  quadrant(1, 0), quadrant(1, 1), m)
        if w >= w_min:
            results[w] = np.moveaxis(grid, 2, 0)
        previous = grid
        previous_stride = dist
        w *= 2
    metrics = get_metrics()
    metrics.counter("wavelets.dp_calls").inc()
    metrics.counter("wavelets.dp_windows").inc(sum(
        level.shape[0] * level.shape[1] * level.shape[2]
        for level in results.values()))
    return results
