"""Clustering Features (CF) — the BIRCH summary statistic [ZRL96].

A CF triple ``(N, LS, SS)`` summarizes a set of d-dimensional points:
count, per-dimension linear sum and the scalar sum of squared norms.
CFs are additive, which is what makes the CF-tree's bottom-up
summarization and node splits cheap.  From a CF one can read off the
centroid, radius (RMS distance of members to the centroid) and diameter
without touching the member points.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError


class ClusteringFeature:
    """Additive summary of a point set: ``(N, LS, SS)``.

    Optionally tracks the ids of absorbed points (``member_ids``), which
    the WALRUS pipeline needs to map clusters back to image windows.
    The id list is carried along on merges; it does not affect any
    statistic.
    """

    __slots__ = ("count", "linear_sum", "square_sum", "member_ids")

    def __init__(self, dimensions: int, *, track_members: bool = False) -> None:
        if dimensions <= 0:
            raise ClusteringError(f"dimensions must be positive, got {dimensions}")
        self.count = 0
        self.linear_sum = np.zeros(dimensions, dtype=np.float64)
        self.square_sum = 0.0
        self.member_ids: list[int] | None = [] if track_members else None

    @classmethod
    def from_point(cls, point: np.ndarray,
                   point_id: int | None = None) -> "ClusteringFeature":
        """CF of a single point."""
        point = np.asarray(point, dtype=np.float64)
        cf = cls(point.shape[0], track_members=point_id is not None)
        cf.add_point(point, point_id)
        return cf

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_point(self, point: np.ndarray, point_id: int | None = None) -> None:
        """Absorb one point."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != self.linear_sum.shape:
            raise ClusteringError(
                f"point dimension {point.shape} != CF dimension "
                f"{self.linear_sum.shape}"
            )
        self.count += 1
        self.linear_sum += point
        self.square_sum += float(point @ point)
        if self.member_ids is not None and point_id is not None:
            self.member_ids.append(point_id)

    def merge(self, other: "ClusteringFeature") -> None:
        """Absorb another CF (additivity of the triple)."""
        if other.linear_sum.shape != self.linear_sum.shape:
            raise ClusteringError("cannot merge CFs of different dimension")
        self.count += other.count
        self.linear_sum += other.linear_sum
        self.square_sum += other.square_sum
        if self.member_ids is not None and other.member_ids is not None:
            self.member_ids.extend(other.member_ids)

    def copy(self) -> "ClusteringFeature":
        """Deep copy (member ids included)."""
        out = ClusteringFeature(self.linear_sum.shape[0])
        out.count = self.count
        out.linear_sum = self.linear_sum.copy()
        out.square_sum = self.square_sum
        out.member_ids = (None if self.member_ids is None
                          else list(self.member_ids))
        return out

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    @property
    def centroid(self) -> np.ndarray:
        """Mean of the absorbed points."""
        if self.count == 0:
            raise ClusteringError("centroid of an empty CF is undefined")
        return self.linear_sum / self.count

    @property
    def radius(self) -> float:
        """RMS distance of members to the centroid (BIRCH's R).

        ``R^2 = SS/N - ||LS/N||^2``; clamped at zero against float
        cancellation.
        """
        if self.count == 0:
            raise ClusteringError("radius of an empty CF is undefined")
        centroid = self.linear_sum / self.count
        r2 = self.square_sum / self.count - float(centroid @ centroid)
        return float(np.sqrt(max(r2, 0.0)))

    @property
    def diameter(self) -> float:
        """RMS pairwise distance between members (BIRCH's D)."""
        if self.count < 2:
            return 0.0
        n = self.count
        d2 = (2.0 * n * self.square_sum
              - 2.0 * float(self.linear_sum @ self.linear_sum)) / (n * (n - 1))
        return float(np.sqrt(max(d2, 0.0)))

    def radius_if_merged(self, other: "ClusteringFeature") -> float:
        """Radius the merged CF would have, without merging."""
        n = self.count + other.count
        if n == 0:
            raise ClusteringError("radius of an empty CF is undefined")
        ls = self.linear_sum + other.linear_sum
        ss = self.square_sum + other.square_sum
        centroid = ls / n
        r2 = ss / n - float(centroid @ centroid)
        return float(np.sqrt(max(r2, 0.0)))

    def centroid_distance(self, other: "ClusteringFeature") -> float:
        """Euclidean distance between the two centroids (BIRCH's D0)."""
        return float(np.linalg.norm(self.centroid - other.centroid))

    def distance_to_point(self, point: np.ndarray) -> float:
        """Euclidean distance from the centroid to ``point``."""
        return float(np.linalg.norm(self.centroid - np.asarray(point)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<CF n={self.count} r={self.radius:.4f}>"
                if self.count else "<CF empty>")
