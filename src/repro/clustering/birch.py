"""Public BIRCH pre-clustering API used by the WALRUS pipeline.

WALRUS feeds every sliding-window signature of an image into BIRCH's
pre-clustering phase with a radius threshold ``eps_c``; each resulting
subcluster becomes one image *region*.  :func:`precluster` wraps the
CF-tree and returns plain :class:`Cluster` records (centroid, radius,
bounding box, member ids) decoupled from the tree internals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.cftree import CFTree
from repro.exceptions import ClusteringError
from repro.observability import Deadline, get_metrics


@dataclass(frozen=True)
class Cluster:
    """One subcluster produced by :func:`precluster`.

    Attributes
    ----------
    centroid:
        Mean of the member points (``d``-vector).
    radius:
        RMS distance of members to the centroid.
    count:
        Number of member points.
    member_ids:
        Ids (as passed to :func:`precluster`) of the member points.
    lower, upper:
        Per-dimension bounding box of the member points — the paper's
        alternative "bounding box" region signature (Definition 4.1).
    """

    centroid: np.ndarray
    radius: float
    count: int
    member_ids: tuple[int, ...]
    lower: np.ndarray
    upper: np.ndarray


def precluster(points: np.ndarray, threshold: float, *,
               branching_factor: int = 50,
               max_leaf_entries: int | None = None,
               deadline: Deadline | None = None) -> list[Cluster]:
    """Run BIRCH's pre-clustering phase over ``points``.

    Parameters
    ----------
    points:
        ``(n, d)`` array of feature vectors.
    threshold:
        Cluster radius threshold (the paper's ``eps_c``).
    branching_factor:
        CF-tree branching factor ``B`` (the [ZRL96] default is 50).
    max_leaf_entries:
        Optional cap on subcluster count; exceeded caps trigger a
        rebuild with an escalated threshold.
    deadline:
        Optional wall-clock budget, checked every few dozen point
        insertions so a serving-path query can abort mid-clustering.

    Returns
    -------
    list of :class:`Cluster`, one per leaf subcluster, in insertion
    discovery order of the tree scan.  Every input point belongs to
    exactly one cluster.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ClusteringError(f"expected (n, d) points, got shape {points.shape}")
    n, d = points.shape
    if n == 0:
        raise ClusteringError("cannot cluster an empty point set")
    tree = CFTree(d, threshold, branching_factor=branching_factor,
                  max_leaf_entries=max_leaf_entries, track_members=True)
    for i in range(n):
        if deadline is not None and i % 64 == 0:
            deadline.check("birch.precluster")
        tree.insert(points[i], point_id=i)

    metrics = get_metrics()
    metrics.counter("birch.points").inc(n)
    metrics.counter("birch.cf_splits").inc(tree.split_count)
    metrics.counter("birch.rebuilds").inc(tree.rebuild_count)
    metrics.counter("birch.clusters").inc(tree.leaf_entry_count)

    clusters: list[Cluster] = []
    for cf in tree.leaf_entries():
        ids = tuple(cf.member_ids or ())
        if not ids:
            raise ClusteringError("leaf subcluster lost its member ids")
        members = points[list(ids)]
        clusters.append(Cluster(
            centroid=cf.centroid,
            radius=cf.radius,
            count=cf.count,
            member_ids=ids,
            lower=members.min(axis=0),
            upper=members.max(axis=0),
        ))
    return clusters


def merge_clusters(points: np.ndarray, clusters: list[Cluster],
                   distance_threshold: float) -> list[Cluster]:
    """Single-link agglomerative merge of subclusters (BIRCH phase 3).

    The CF-tree's insertion order can fragment one natural cluster into
    several subclusters.  [ZRL96] fixes this with a global clustering
    pass over the subcluster summaries; this implementation merges
    (transitively) every pair of subclusters whose centroids lie within
    ``distance_threshold`` and recomputes exact statistics from the
    member points.

    Returns a new cluster list; the union of member ids is preserved.
    """
    if distance_threshold < 0:
        raise ClusteringError("distance_threshold must be >= 0")
    if not clusters:
        return []
    points = np.asarray(points, dtype=np.float64)
    n = len(clusters)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    centroids = np.stack([c.centroid for c in clusters])
    deltas = centroids[:, None, :] - centroids[None, :, :]
    close = (deltas ** 2).sum(axis=2) <= distance_threshold ** 2
    for i in range(n):
        for j in range(i + 1, n):
            if close[i, j]:
                parent[find(i)] = find(j)

    by_root: dict[int, list[int]] = {}
    for i in range(n):
        by_root.setdefault(find(i), []).append(i)

    merged: list[Cluster] = []
    for indices in by_root.values():
        ids: list[int] = []
        for index in indices:
            ids.extend(clusters[index].member_ids)
        members = points[ids]
        centroid = members.mean(axis=0)
        radius = float(np.sqrt(
            ((members - centroid) ** 2).sum(axis=1).mean()))
        merged.append(Cluster(
            centroid=centroid,
            radius=radius,
            count=len(ids),
            member_ids=tuple(ids),
            lower=members.min(axis=0),
            upper=members.max(axis=0),
        ))
    return merged


def refine_clusters(points: np.ndarray, clusters: list[Cluster], *,
                    iterations: int = 2) -> list[Cluster]:
    """Lloyd-style refinement of a pre-clustering (BIRCH phase 4).

    [ZRL96]'s optional final phase: reassign every point to its nearest
    cluster centroid, recompute the centroids, repeat.  Fixes the
    insertion-order artifacts of the CF-tree (points absorbed early by
    a subcluster whose centroid later drifted away).  Clusters that
    lose all members are dropped; the member-id partition is preserved.
    """
    if iterations < 1:
        raise ClusteringError("iterations must be >= 1")
    points = np.asarray(points, dtype=np.float64)
    if not clusters:
        return []
    centroids = np.stack([c.centroid for c in clusters])
    labels = None
    for _ in range(iterations):
        d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = np.argmin(d2, axis=1)
        for k in range(centroids.shape[0]):
            members = points[labels == k]
            if len(members):
                centroids[k] = members.mean(axis=0)

    refined: list[Cluster] = []
    for k in range(centroids.shape[0]):
        ids = np.nonzero(labels == k)[0]
        if not len(ids):
            continue
        members = points[ids]
        centroid = members.mean(axis=0)
        radius = float(np.sqrt(
            ((members - centroid) ** 2).sum(axis=1).mean()))
        refined.append(Cluster(
            centroid=centroid,
            radius=radius,
            count=len(ids),
            member_ids=tuple(int(i) for i in ids),
            lower=members.min(axis=0),
            upper=members.max(axis=0),
        ))
    return refined


def assign_to_clusters(points: np.ndarray,
                       clusters: list[Cluster]) -> np.ndarray:
    """Label each point with the index of the nearest cluster centroid.

    Utility for evaluation and for BIRCH's optional refinement pass; the
    WALRUS pipeline itself uses the exact memberships from
    :func:`precluster`.
    """
    points = np.asarray(points, dtype=np.float64)
    if not clusters:
        raise ClusteringError("no clusters to assign to")
    centroids = np.stack([c.centroid for c in clusters])
    d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    return np.argmin(d2, axis=1)
