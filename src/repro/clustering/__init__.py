"""BIRCH pre-clustering substrate (CF vectors, CF-tree, public API)."""

from repro.clustering.birch import (
    Cluster,
    assign_to_clusters,
    merge_clusters,
    precluster,
    refine_clusters,
)
from repro.clustering.cftree import CFNode, CFTree
from repro.clustering.feature import ClusteringFeature

__all__ = [
    "CFNode",
    "CFTree",
    "Cluster",
    "ClusteringFeature",
    "assign_to_clusters",
    "merge_clusters",
    "refine_clusters",
    "precluster",
]
