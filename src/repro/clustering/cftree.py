"""CF-tree: the in-memory structure behind BIRCH's pre-clustering phase.

The tree is a height-balanced B-tree-like index of Clustering Features.
Non-leaf nodes hold ``(CF, child)`` entries summarizing whole subtrees;
leaf nodes hold CF *subclusters*.  A new point descends the tree along
closest centroids; at the leaf, it is absorbed into the closest
subcluster if doing so keeps that subcluster's radius within the
threshold ``T``, otherwise it starts a new subcluster.  Nodes that
overflow the branching factor split, with the split propagating upward
exactly as in a B-tree; a root split grows the tree.

This implements the first (and, per the WALRUS paper, the only needed)
phase of BIRCH [ZRL96].  When the leaf count exceeds ``max_leaf_entries``
the tree is rebuilt with a larger threshold by reinserting the existing
subclusters — BIRCH's threshold-escalation loop — so memory stays
bounded on adversarial inputs.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.clustering.feature import ClusteringFeature
from repro.exceptions import ClusteringError

#: Absolute slack added to the radius threshold when deciding whether a
#: subcluster absorbs a point.  The CF radius is computed as
#: ``sqrt(SS/N - ||LS/N||^2)``, which suffers catastrophic cancellation
#: for tight clusters: even identical points can yield a radius of
#: ~1e-8 instead of 0, which would otherwise make a zero threshold
#: refuse exact duplicates.
RADIUS_SLACK = 1e-7


class CFNode:
    """One node of the CF-tree.

    ``entries`` is a list of :class:`ClusteringFeature`; for internal
    nodes ``children[i]`` is the subtree summarized by ``entries[i]``.

    The node keeps its entries' centroids mirrored in a preallocated
    ``(capacity, d)`` array so :meth:`closest_entry_index` — the hot
    path of every insertion — is one vectorized distance computation
    instead of a per-entry ``np.stack``.  The mirror is maintained by
    the mutator methods (:meth:`append_entry`, :meth:`refresh_entry`,
    ...); code that only reads ``entries`` is unaffected.
    """

    __slots__ = ("entries", "children", "is_leaf", "_centroids")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[ClusteringFeature] = []
        self.children: list["CFNode"] = []
        self._centroids: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # Centroid-mirror maintenance
    # ------------------------------------------------------------------
    def _ensure_capacity(self, rows: int, dimensions: int) -> None:
        if self._centroids is None:
            self._centroids = np.empty((max(8, rows), dimensions),
                                       dtype=np.float64)
        elif self._centroids.shape[0] < rows:
            grown = np.empty((max(2 * self._centroids.shape[0], rows),
                              dimensions), dtype=np.float64)
            grown[:self._centroids.shape[0]] = self._centroids
            self._centroids = grown

    def append_entry(self, cf: ClusteringFeature,
                     child: "CFNode" | None = None) -> None:
        """Append an entry (and its child, for internal nodes)."""
        index = len(self.entries)
        self.entries.append(cf)
        if child is not None:
            self.children.append(child)
        self._ensure_capacity(index + 1, cf.linear_sum.shape[0])
        self._centroids[index] = cf.centroid

    def set_entry(self, index: int, cf: ClusteringFeature,
                  child: "CFNode" | None = None) -> None:
        """Replace the entry (and child) at ``index``."""
        self.entries[index] = cf
        if child is not None:
            self.children[index] = child
        self._centroids[index] = cf.centroid

    def insert_entry(self, index: int, cf: ClusteringFeature,
                     child: "CFNode" | None = None) -> None:
        """Insert an entry (and child) at ``index``, shifting the rest."""
        count = len(self.entries)
        self.entries.insert(index, cf)
        if child is not None:
            self.children.insert(index, child)
        self._ensure_capacity(count + 1, cf.linear_sum.shape[0])
        self._centroids[index + 1:count + 1] = self._centroids[index:count]
        self._centroids[index] = cf.centroid

    def refresh_entry(self, index: int) -> None:
        """Re-mirror the centroid of entry ``index`` after a merge."""
        self._centroids[index] = self.entries[index].centroid

    def closest_entry_index(self, point: np.ndarray) -> int:
        """Index of the entry whose centroid is nearest to ``point``."""
        if not self.entries:
            raise ClusteringError("closest_entry_index on an empty node")
        if self._centroids is None or \
                self._centroids.shape[0] < len(self.entries):
            # Entries were appended directly (external callers); fall
            # back to a full rebuild of the mirror.
            self._centroids = np.stack([cf.centroid for cf in self.entries])
        deltas = self._centroids[:len(self.entries)] - point
        return int(np.argmin(np.einsum("ij,ij->i", deltas, deltas)))


class CFTree:
    """Height-balanced tree of Clustering Features (BIRCH phase 1).

    Parameters
    ----------
    dimensions:
        Dimensionality of the points.
    threshold:
        Radius threshold ``T``: a leaf subcluster only absorbs a point
        if its radius stays ``<= threshold``.
    branching_factor:
        Maximum entries per node (``B``); a node with more splits.
    max_leaf_entries:
        Soft bound on the number of leaf subclusters.  When exceeded the
        tree rebuilds itself with ``threshold *= growth`` (BIRCH's
        memory-pressure escalation).  ``None`` disables rebuilding.
    track_members:
        Record the ids of the points absorbed into each subcluster
        (required by WALRUS to map clusters back to windows).
    """

    def __init__(self, dimensions: int, threshold: float, *,
                 branching_factor: int = 50,
                 max_leaf_entries: int | None = None,
                 track_members: bool = True,
                 growth: float = 1.5) -> None:
        if dimensions <= 0:
            raise ClusteringError(f"dimensions must be positive, got {dimensions}")
        if threshold < 0:
            raise ClusteringError(f"threshold must be >= 0, got {threshold}")
        if branching_factor < 2:
            raise ClusteringError(
                f"branching factor must be >= 2, got {branching_factor}"
            )
        if growth <= 1.0:
            raise ClusteringError(f"growth must exceed 1, got {growth}")
        self.dimensions = dimensions
        self.threshold = threshold
        self.branching_factor = branching_factor
        self.max_leaf_entries = max_leaf_entries
        self.track_members = track_members
        self.growth = growth
        self.root = CFNode(is_leaf=True)
        self.leaf_entry_count = 0
        self.rebuild_count = 0
        self.split_count = 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray, point_id: int | None = None) -> None:
        """Insert one point, splitting/rebuilding as needed."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dimensions,):
            raise ClusteringError(
                f"expected point of dimension {self.dimensions}, "
                f"got shape {point.shape}"
            )
        cf = ClusteringFeature.from_point(
            point, point_id if self.track_members else None
        )
        if self.track_members and cf.member_ids is None:
            cf.member_ids = []
        self._insert_cf(cf)
        if (self.max_leaf_entries is not None
                and self.leaf_entry_count > self.max_leaf_entries):
            self._rebuild()

    def _insert_cf(self, cf: ClusteringFeature) -> None:
        split = self._insert_into(self.root, cf)
        if split is not None:
            # Root split: grow the tree by one level.
            left_cf, left, right_cf, right = split
            new_root = CFNode(is_leaf=False)
            new_root.append_entry(left_cf, left)
            new_root.append_entry(right_cf, right)
            self.root = new_root

    def _insert_into(self, node: CFNode, cf: ClusteringFeature
                     ) -> tuple[ClusteringFeature, CFNode,
                                ClusteringFeature, CFNode] | None:
        """Insert ``cf`` under ``node``; return split halves on overflow.

        ``cf`` may be a single point or a whole subcluster (during a
        rebuild); either way it is absorbed into the closest leaf
        subcluster only if the merged radius stays within the threshold.
        """
        if node.is_leaf:
            if node.entries:
                centroid = cf.centroid
                index = node.closest_entry_index(centroid)
                closest = node.entries[index]
                if closest.radius_if_merged(cf) <= self.threshold + RADIUS_SLACK:
                    closest.merge(cf)
                    node.refresh_entry(index)
                    return None
            node.append_entry(cf)
            self.leaf_entry_count += 1
            if len(node) > self.branching_factor:
                return self._split(node)
            return None

        index = node.closest_entry_index(cf.centroid)
        child = node.children[index]
        split = self._insert_into(child, cf)
        node.entries[index].merge(cf)
        node.refresh_entry(index)
        if split is None:
            return None
        left_cf, left, right_cf, right = split
        # Replace the split child with its two halves.
        node.set_entry(index, left_cf, left)
        node.insert_entry(index + 1, right_cf, right)
        if len(node) > self.branching_factor:
            return self._split(node)
        return None

    def _split(self, node: CFNode) -> tuple[ClusteringFeature, CFNode,
                                            ClusteringFeature, CFNode]:
        """Split an overflowing node around its two farthest entries."""
        self.split_count += 1
        centroids = np.stack([cf.centroid for cf in node.entries])
        # Pairwise squared distances; pick the farthest pair as seeds.
        sq = np.einsum("ij,ij->i", centroids, centroids)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (centroids @ centroids.T)
        seed_a, seed_b = np.unravel_index(int(np.argmax(d2)), d2.shape)
        left = CFNode(node.is_leaf)
        right = CFNode(node.is_leaf)
        to_a = d2[:, seed_a] <= d2[:, seed_b]
        to_a[seed_a] = True
        to_a[seed_b] = False
        for i, cf in enumerate(node.entries):
            target = left if to_a[i] else right
            target.append_entry(
                cf, node.children[i] if not node.is_leaf else None)
        return (self._summarize(left), left, self._summarize(right), right)

    def _summarize(self, node: CFNode) -> ClusteringFeature:
        """CF summarizing all entries of ``node`` (members not tracked —
        summaries only matter for routing, never for output)."""
        summary = ClusteringFeature(self.dimensions)
        for cf in node.entries:
            summary.count += cf.count
            summary.linear_sum += cf.linear_sum
            summary.square_sum += cf.square_sum
        return summary

    # ------------------------------------------------------------------
    # Rebuild (threshold escalation)
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Reinsert all leaf subclusters into a fresh tree with a larger
        threshold, shrinking the leaf count under memory pressure."""
        subclusters = list(self.leaf_entries())
        self.threshold = max(self.threshold * self.growth, 1e-12)
        self.root = CFNode(is_leaf=True)
        self.leaf_entry_count = 0
        self.rebuild_count += 1
        for cf in subclusters:
            self._insert_cf(cf)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def leaf_entries(self) -> Iterator[ClusteringFeature]:
        """Yield every leaf subcluster CF (the pre-clustering output)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)

    def height(self) -> int:
        """Tree height (1 for a lone leaf root)."""
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def node_count(self) -> int:
        """Total number of nodes."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count
