"""R*-tree [BKSS90] over pluggable paged storage.

This is the disk-based spatial index the paper stores region signatures
in (Section 5.4; the authors used the GiST library's R-tree).  The
implementation follows the original R*-tree design:

* **ChooseSubtree** — at the level above the leaves, minimize *overlap*
  enlargement (ties: area enlargement, then area); higher up, minimize
  area enlargement.
* **Forced reinsert** — the first overflow at each level per insertion
  evicts the ``reinsert_fraction`` of entries whose centers lie farthest
  from the node's MBR center and reinserts them, which re-packs the tree
  and defers splits.
* **R\\* split** — choose the split axis by minimal total margin over all
  allowed distributions of the entries sorted by lower/upper bounds;
  choose the distribution with minimal overlap (ties: minimal combined
  area).

Supported queries: rectangle intersection, point-epsilon range (the
region-matching probe of Section 5.4), and best-first k-nearest-neighbor
(used by the single-signature baselines).  Deletion with the classic
condense-tree/reinsert pass is included so the index supports database
updates ("when new images are added" — and removed).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator

import numpy as np

from repro.exceptions import SpatialIndexError, StorageError
from repro.index.geometry import Rect
from repro.index.node import Entry, Node
from repro.index.pagestore import MemoryPageStore, PageStore
from repro.observability.deadline import Deadline
from repro.observability.events import get_events


class IndexCounters:
    """Exact I/O and maintenance accounting for one R*-tree.

    Always on: each field costs one integer add on its event, which is
    noise next to the page (un)pickling the event performs anyway.
    The observability layer snapshots these around a probe to report
    per-query node accesses and fan-out; cumulative values feed the
    process-wide metrics registry.
    """

    __slots__ = ("node_reads", "node_writes", "splits", "reinsert_ops",
                 "reinserted_entries", "probes", "knn_searches")

    node_reads: int
    node_writes: int
    splits: int
    reinsert_ops: int
    reinserted_entries: int
    probes: int
    knn_searches: int

    _FIELDS = ("node_reads", "node_writes", "splits", "reinsert_ops",
               "reinserted_entries", "probes", "knn_searches")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        for name in self._FIELDS:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Current values as a plain dict (for deltas and reporting)."""
        return {name: getattr(self, name) for name in self._FIELDS}

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Per-field difference against an earlier :meth:`snapshot`."""
        return {name: getattr(self, name) - before.get(name, 0)
                for name in self._FIELDS}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = " ".join(f"{name}={getattr(self, name)}"
                         for name in self._FIELDS)
        return f"<IndexCounters {inner}>"


class RStarTree:
    """An R*-tree indexing ``(Rect, item)`` pairs in d dimensions.

    Parameters
    ----------
    dimensions:
        Dimensionality of the indexed rectangles.
    store:
        Page store for nodes (defaults to a fresh in-memory store).
    max_entries:
        Node capacity ``M`` (>= 4).
    min_fill:
        Minimum fill ratio ``m / M`` used by splits and deletion
        (the R*-tree paper recommends 0.4).
    reinsert_fraction:
        Fraction ``p`` of entries evicted on forced reinsert (0.3 in
        the paper); 0 disables forced reinsert.
    """

    def __init__(self, dimensions: int, *, store: PageStore | None = None,
                 max_entries: int = 32, min_fill: float = 0.4,
                 reinsert_fraction: float = 0.3) -> None:
        if dimensions <= 0:
            raise SpatialIndexError(f"dimensions must be positive, got {dimensions}")
        if max_entries < 4:
            raise SpatialIndexError(f"max_entries must be >= 4, got {max_entries}")
        if not 0.0 < min_fill <= 0.5:
            raise SpatialIndexError(f"min_fill must be in (0, 0.5], got {min_fill}")
        if not 0.0 <= reinsert_fraction < 1.0:
            raise SpatialIndexError(
                f"reinsert_fraction must be in [0, 1), got {reinsert_fraction}"
            )
        self.dimensions = dimensions
        self.store = store if store is not None else MemoryPageStore()
        self.max_entries = max_entries
        self.min_entries = max(1, int(round(min_fill * max_entries)))
        self.reinsert_count = max(1, int(round(reinsert_fraction * max_entries))) \
            if reinsert_fraction > 0 else 0
        self.size = 0
        self.counters = IndexCounters()
        root = Node(self.store.allocate(), level=0)
        self.root_id = root.page_id
        self.store.write(root.page_id, root)

    # ------------------------------------------------------------------
    # Node I/O
    # ------------------------------------------------------------------
    def _read(self, page_id: int) -> Node:
        self.counters.node_reads += 1
        return self.store.read(page_id)

    def _write(self, node: Node) -> None:
        self.counters.node_writes += 1
        self.store.write(node.page_id, node)

    def _new_node(self, level: int) -> Node:
        node = Node(self.store.allocate(), level)
        return node

    def height(self) -> int:
        """Number of levels (1 for a lone leaf root)."""
        return self._read(self.root_id).level + 1

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, dimensions: int, items: list[tuple[Rect, Any]], *,
                  store: PageStore | None = None, max_entries: int = 32,
                  min_fill: float = 0.4,
                  reinsert_fraction: float = 0.3,
                  fill_ratio: float = 0.8) -> "RStarTree":
        """Build a tree from all items at once with STR packing.

        Sort-Tile-Recursive [Leutenegger et al.]: sort by the first
        center coordinate, cut into vertical slabs of ~sqrt(n/c) pages,
        sort each slab by the next coordinate, and so on; leaves are
        filled to ``fill_ratio * max_entries``.  Packing is much faster
        than repeated insertion and produces better-clustered pages —
        the right tool when indexing a whole collection up front.
        """
        tree = cls(dimensions, store=store, max_entries=max_entries,
                   min_fill=min_fill, reinsert_fraction=reinsert_fraction)
        tree._bulk_fill(items, fill_ratio)
        return tree

    def rebuild_bulk(self, items: list[tuple[Rect, Any]], *,
                     fill_ratio: float = 0.8) -> None:
        """Replace the tree's contents with an STR-packed build in place.

        Unlike :meth:`bulk_load`, which creates a brand-new tree, this
        rebuilds *this* tree over its existing page store: the current
        nodes are freed first, so no orphan pages are left behind for
        :meth:`verify` / ``walrus fsck`` to flag.  This is what
        ``WalrusDatabase.add_images`` uses to pack a fresh database
        bottom-up while keeping its (possibly disk-backed) store.
        """
        stack = [self.root_id]
        while stack:
            node = self._read(stack.pop())
            if not node.is_leaf:
                stack.extend(entry.child_id for entry in node.entries)
            self.store.free(node.page_id)
        root = Node(self.store.allocate(), level=0)
        self.root_id = root.page_id
        self.store.write(root.page_id, root)
        self.size = 0
        self._bulk_fill(items, fill_ratio)

    def _bulk_fill(self, items: list[tuple[Rect, Any]],
                   fill_ratio: float) -> None:
        """STR-pack ``items`` into this (empty) tree."""
        if not 0.0 < fill_ratio <= 1.0:
            raise SpatialIndexError(
                f"fill_ratio must be in (0, 1], got {fill_ratio}")
        if not items:
            return
        for rect, _ in items:
            if rect.dimensions != self.dimensions:
                raise SpatialIndexError(
                    f"rect has {rect.dimensions} dimensions, index has "
                    f"{self.dimensions}"
                )
        capacity = max(self.min_entries,
                       int(round(fill_ratio * self.max_entries)))
        entries = [Entry(rect, item=item) for rect, item in items]
        level = 0
        while len(entries) > self.max_entries:
            entries = self._pack_level(entries, level, capacity)
            level += 1
        root = self._read(self.root_id)
        root.level = level
        root.entries = entries
        self._write(root)
        self.size = len(items)

    def _pack_level(self, entries: list[Entry], level: int,
                    capacity: int) -> list[Entry]:
        """Pack ``entries`` into nodes of ``capacity``; return the
        parent entries referencing them."""
        groups = self._str_tile(entries, axis=0, capacity=capacity)
        parents: list[Entry] = []
        for group in groups:
            node = self._new_node(level)
            node.entries = group
            self._write(node)
            parents.append(Entry(node.mbr(), child_id=node.page_id))
        return parents

    def _str_tile(self, entries: list[Entry], axis: int,
                  capacity: int) -> list[list[Entry]]:
        """Recursive STR tiling along ``axis``."""
        n = len(entries)
        pages = -(-n // capacity)  # ceil
        if pages <= 1 or axis >= self.dimensions - 1:
            ordered = sorted(entries,
                             key=lambda e: e.rect.center[axis])
            groups = [ordered[i:i + capacity]
                      for i in range(0, n, capacity)]
            # Keep every node at or above the min-fill invariant: top up
            # an undersized trailing group from its predecessor.
            if len(groups) > 1 and len(groups[-1]) < self.min_entries:
                deficit = self.min_entries - len(groups[-1])
                groups[-1] = groups[-2][-deficit:] + groups[-1]
                groups[-2] = groups[-2][:-deficit]
            return groups
        # Number of slabs along this axis: pages^(1/remaining_dims),
        # with the classic 2-level approximation sqrt(pages).
        slabs = max(1, int(np.ceil(np.sqrt(pages))))
        per_slab = -(-n // slabs)
        ordered = sorted(entries, key=lambda e: e.rect.center[axis])
        chunks = [ordered[start:start + per_slab]
                  for start in range(0, n, per_slab)]
        if len(chunks) > 1 and len(chunks[-1]) < self.min_entries:
            chunks[-2].extend(chunks[-1])
            chunks.pop()
        groups: list[list[Entry]] = []
        for slab in chunks:
            groups.extend(self._str_tile(slab, axis + 1, capacity))
        return groups

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, rect: Rect, item: Any) -> None:
        """Insert one ``(rect, item)`` pair."""
        if rect.dimensions != self.dimensions:
            raise SpatialIndexError(
                f"rect has {rect.dimensions} dimensions, index has "
                f"{self.dimensions}"
            )
        self._insert_entry(Entry(rect, item=item), target_level=0,
                           reinserted_levels=set())
        self.size += 1

    def insert_point(self, point: np.ndarray, item: Any) -> None:
        """Insert a degenerate (point) rectangle."""
        self.insert(Rect.from_point(point), item)

    def _insert_entry(self, entry: Entry, target_level: int,
                      reinserted_levels: set[int]) -> None:
        split = self._insert_recursive(self.root_id, entry, target_level,
                                       reinserted_levels)
        if split is not None:
            old_root = self._read(self.root_id)
            new_root = self._new_node(old_root.level + 1)
            new_root.entries = [
                Entry(old_root.mbr(), child_id=old_root.page_id),
                Entry(self._read(split).mbr(), child_id=split),
            ]
            self._write(new_root)
            self.root_id = new_root.page_id

    def _insert_recursive(self, page_id: int, entry: Entry,
                          target_level: int,
                          reinserted_levels: set[int]) -> int | None:
        """Insert ``entry`` below ``page_id``; return new sibling page id
        if this node split."""
        node = self._read(page_id)
        if node.level == target_level:
            node.entries.append(entry)
            return self._overflow(node, reinserted_levels)

        index = self._choose_subtree(node, entry.rect)
        child_entry = node.entries[index]
        split = self._insert_recursive(child_entry.child_id, entry,
                                       target_level, reinserted_levels)
        # Refresh the child MBR (it may have both grown and shrunk —
        # forced reinserts can shrink it).
        child_entry.rect = self._read(child_entry.child_id).mbr()
        if split is not None:
            node.entries.append(Entry(self._read(split).mbr(),
                                      child_id=split))
            result = self._overflow(node, reinserted_levels)
            self._write(node)
            return result
        self._write(node)
        return None

    def _overflow(self, node: Node, reinserted_levels: set[int]) -> int | None:
        """Handle a possibly overflowing node: reinsert once per level,
        otherwise split.  Returns the new sibling's page id on split."""
        if len(node) <= self.max_entries:
            self._write(node)
            return None
        is_root = node.page_id == self.root_id
        if (self.reinsert_count and not is_root
                and node.level not in reinserted_levels):
            reinserted_levels.add(node.level)
            self._force_reinsert(node, reinserted_levels)
            return None
        return self._split_node(node)

    def _force_reinsert(self, node: Node,
                        reinserted_levels: set[int]) -> None:
        """Evict the entries farthest from the MBR center and reinsert."""
        center = node.mbr().center
        distances = [float(np.linalg.norm(e.rect.center - center))
                     for e in node.entries]
        order = np.argsort(distances)  # close ... far
        keep_count = len(node.entries) - self.reinsert_count
        keep = [node.entries[i] for i in order[:keep_count]]
        evicted = [node.entries[i] for i in order[keep_count:]]
        self.counters.reinsert_ops += 1
        self.counters.reinserted_entries += len(evicted)
        node.entries = keep
        self._write(node)
        for entry in evicted:
            self._insert_entry(entry, target_level=node.level,
                               reinserted_levels=reinserted_levels)

    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        """R* ChooseSubtree: overlap-based just above leaves, area-based
        higher up.  Vectorized over the node's entries (hot path)."""
        lowers = np.stack([e.rect.lower for e in node.entries])
        uppers = np.stack([e.rect.upper for e in node.entries])
        areas = np.prod(uppers - lowers, axis=1)
        enlarged_lowers = np.minimum(lowers, rect.lower)
        enlarged_uppers = np.maximum(uppers, rect.upper)
        enlargements = np.prod(enlarged_uppers - enlarged_lowers,
                               axis=1) - areas

        if node.level == 1:
            # Overlap delta of enlarging candidate i, against all others:
            # sum_j overlap(enlarged_i, j) - overlap(i, j).
            def pairwise_overlap(lo: np.ndarray, up: np.ndarray
                                 ) -> np.ndarray:
                sides = (np.minimum(up[:, None, :], uppers[None, :, :])
                         - np.maximum(lo[:, None, :], lowers[None, :, :]))
                return np.prod(np.clip(sides, 0.0, None), axis=2)

            before = pairwise_overlap(lowers, uppers)
            after = pairwise_overlap(enlarged_lowers, enlarged_uppers)
            delta = after - before
            np.fill_diagonal(delta, 0.0)
            overlap_delta = delta.sum(axis=1)
            order = np.lexsort((areas, enlargements, overlap_delta))
            return int(order[0])
        order = np.lexsort((areas, enlargements))
        return int(order[0])

    # ------------------------------------------------------------------
    # R* split
    # ------------------------------------------------------------------
    def _split_node(self, node: Node) -> int:
        """Split ``node`` in place; return the new sibling's page id."""
        self.counters.splits += 1
        first, second = self._choose_split(node.entries)
        node.entries = first
        sibling = self._new_node(node.level)
        sibling.entries = second
        self._write(node)
        self._write(sibling)
        return sibling.page_id

    def _choose_split(self, entries: list[Entry]
                      ) -> tuple[list[Entry], list[Entry]]:
        """R* ChooseSplitAxis + ChooseSplitIndex."""
        m = self.min_entries
        count = len(entries)
        # dimensions >= 1, so the loop always runs; axis 0 with an
        # infinite sentinel margin keeps best_axis a plain int.
        best_axis = 0
        best_axis_margin = float("inf")
        for axis in range(self.dimensions):
            margin_total = 0.0
            for axis_key in (
                    lambda e, a=axis: (e.rect.lower[a], e.rect.upper[a]),
                    lambda e, a=axis: (e.rect.upper[a], e.rect.lower[a])):
                ordered = sorted(entries, key=axis_key)
                for k in range(m, count - m + 1):
                    left = Rect.union_of([e.rect for e in ordered[:k]])
                    right = Rect.union_of([e.rect for e in ordered[k:]])
                    margin_total += left.margin + right.margin
            if margin_total < best_axis_margin:
                best_axis_margin = margin_total
                best_axis = axis

        best_key: tuple[float, float] | None = None
        best_split: tuple[list[Entry], list[Entry]] | None = None
        for key in (lambda e: (e.rect.lower[best_axis], e.rect.upper[best_axis]),
                    lambda e: (e.rect.upper[best_axis], e.rect.lower[best_axis])):
            ordered = sorted(entries, key=key)
            for k in range(m, count - m + 1):
                left_rect = Rect.union_of([e.rect for e in ordered[:k]])
                right_rect = Rect.union_of([e.rect for e in ordered[k:]])
                candidate_key = (left_rect.intersection_area(right_rect),
                                 left_rect.area + right_rect.area)
                if best_key is None or candidate_key < best_key:
                    best_key = candidate_key
                    best_split = (list(ordered[:k]), list(ordered[k:]))
        assert best_split is not None
        return best_split

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, rect: Rect, *,
               deadline: Deadline | None = None) -> list[Any]:
        """Items whose rectangles intersect ``rect``."""
        return [item
                for _, item in self.search_entries(rect, deadline=deadline)]

    def search_entries(self, rect: Rect, *,
                       deadline: Deadline | None = None
                       ) -> Iterator[tuple[Rect, Any]]:
        """Yield ``(rect, item)`` pairs intersecting ``rect``.

        ``deadline`` is checked before every node read, so an expired
        budget aborts mid-traversal with
        :class:`~repro.exceptions.DeadlineExceededError` instead of
        finishing the probe.
        """
        if rect.dimensions != self.dimensions:
            raise SpatialIndexError("query dimensionality mismatch")
        self.counters.probes += 1
        stack = [self.root_id]
        while stack:
            if deadline is not None:
                deadline.check("rstar.search_entries")
            node = self._read(stack.pop())
            for entry in node.entries:
                if not entry.rect.intersects(rect):
                    continue
                if node.is_leaf:
                    yield entry.rect, entry.item
                else:
                    stack.append(entry.child_id)

    def search_within(self, point: np.ndarray, epsilon: float,
                      *, metric: str = "l2",
                      deadline: Deadline | None = None
                      ) -> list[tuple[float, Any]]:
        """Items whose rectangles lie within ``epsilon`` of ``point``.

        This is the Section 5.4 region probe: signatures (points or
        boxes) within distance ``epsilon`` of a query region signature.
        ``metric`` is ``"l2"`` (euclidean, the paper's experiments) or
        ``"linf"`` (the envelope of Definition 4.1).  Returns
        ``(distance, item)`` pairs sorted by distance.
        """
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dimensions,):
            raise SpatialIndexError("query dimensionality mismatch")
        if epsilon < 0:
            raise SpatialIndexError(f"epsilon must be >= 0, got {epsilon}")
        probe = Rect(point - epsilon, point + epsilon)
        hits: list[tuple[float, Any]] = []
        for rect, item in self.search_entries(probe, deadline=deadline):
            if metric == "l2":
                distance = rect.min_distance_to_point(point)
                if distance <= epsilon:
                    hits.append((distance, item))
            elif metric == "linf":
                deltas = np.maximum(rect.lower - point, 0.0)
                deltas = np.maximum(deltas, point - rect.upper)
                distance = float(deltas.max(initial=0.0))
                hits.append((distance, item))
            else:
                raise SpatialIndexError(f"unknown metric {metric!r}")
        hits.sort(key=lambda pair: pair[0])
        return hits

    def nearest(self, point: np.ndarray, k: int = 1, *,
                deadline: Deadline | None = None
                ) -> list[tuple[float, Any]]:
        """Best-first k-nearest-neighbor search by min-distance."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dimensions,):
            raise SpatialIndexError("query dimensionality mismatch")
        if k < 1:
            raise SpatialIndexError(f"k must be >= 1, got {k}")
        self.counters.knn_searches += 1
        counter = itertools.count()  # tie-breaker for the heap
        heap: list[tuple[float, int, bool, Any]] = [
            (0.0, next(counter), False, self.root_id)
        ]
        results: list[tuple[float, Any]] = []
        while heap and len(results) < k:
            if deadline is not None:
                deadline.check("rstar.nearest")
            distance, _, is_item, payload = heapq.heappop(heap)
            if is_item:
                results.append((distance, payload))
                continue
            node = self._read(payload)
            for entry in node.entries:
                d = entry.rect.min_distance_to_point(point)
                if node.is_leaf:
                    heapq.heappush(heap, (d, next(counter), True, entry.item))
                else:
                    heapq.heappush(heap,
                                   (d, next(counter), False, entry.child_id))
        return results

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, rect: Rect, match: Callable[[Any], bool]) -> int:
        """Delete all leaf entries with rectangle ``rect`` whose item
        satisfies ``match``.  Returns the number of entries removed."""
        removed: list[Entry] = []
        orphans: list[tuple[int, Entry]] = []  # (level, entry)
        self._delete_recursive(self.root_id, rect, match, removed, orphans)
        root = self._read(self.root_id)
        if not root.is_leaf and len(root) == 1:
            # Shrink the tree: the lone child becomes the root.
            old_root_id = self.root_id
            self.root_id = root.entries[0].child_id
            self.store.free(old_root_id)
        for level, entry in orphans:
            self._insert_entry(entry, target_level=level,
                               reinserted_levels=set())
        self.size -= len(removed)
        return len(removed)

    def _delete_recursive(self, page_id: int, rect: Rect,
                          match: Callable[[Any], bool],
                          removed: list[Entry],
                          orphans: list[tuple[int, Entry]]) -> bool:
        """Returns True if the child at ``page_id`` should be dropped."""
        node = self._read(page_id)
        if node.is_leaf:
            kept = []
            for entry in node.entries:
                if entry.rect == rect and match(entry.item):
                    removed.append(entry)
                else:
                    kept.append(entry)
            node.entries = kept
            self._write(node)
            underfull = (len(kept) < self.min_entries
                         and page_id != self.root_id)
            if underfull:
                orphans.extend((0, entry) for entry in kept)
                self.store.free(page_id)
            return underfull

        surviving = []
        changed = False
        for entry in node.entries:
            if entry.rect.intersects(rect):
                drop = self._delete_recursive(entry.child_id, rect, match,
                                              removed, orphans)
                changed = True
                if drop:
                    continue
                entry.rect = self._read(entry.child_id).mbr()
            surviving.append(entry)
        node.entries = surviving
        self._write(node)
        if changed and len(surviving) < self.min_entries \
                and page_id != self.root_id:
            for entry in surviving:
                child = self._read(entry.child_id)
                orphans.extend(
                    (node.level - 1, child_entry)
                    for child_entry in child.entries
                )
                self.store.free(entry.child_id)
            self.store.free(page_id)
            return True
        return False

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state(self) -> dict[str, int]:
        """Picklable metadata needed to reattach to the page store."""
        return {
            "dimensions": self.dimensions,
            "max_entries": self.max_entries,
            "min_entries": self.min_entries,
            "reinsert_count": self.reinsert_count,
            "size": self.size,
            "root_id": self.root_id,
        }

    @classmethod
    def from_state(cls, state: dict[str, int],
                   store: PageStore) -> "RStarTree":
        """Reattach a tree to a store previously populated by a tree
        whose :meth:`state` produced ``state``."""
        tree = cls.__new__(cls)
        tree.dimensions = state["dimensions"]
        tree.max_entries = state["max_entries"]
        tree.min_entries = state["min_entries"]
        tree.reinsert_count = state["reinsert_count"]
        tree.size = state["size"]
        tree.root_id = state["root_id"]
        tree.store = store
        tree.counters = IndexCounters()
        return tree

    # ------------------------------------------------------------------
    # Introspection / validation
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[Rect, Any]]:
        """Yield every stored ``(rect, item)`` pair."""
        stack = [self.root_id]
        while stack:
            node = self._read(stack.pop())
            for entry in node.entries:
                if node.is_leaf:
                    yield entry.rect, entry.item
                else:
                    stack.append(entry.child_id)

    def verify(self) -> list[str]:
        """Non-throwing integrity walk; returns a list of issues.

        Unlike :meth:`check_invariants` (which raises on the first
        structural violation and assumes every page is readable), this
        walk is built for damaged stores: unreadable or corrupt pages
        (checksum failures surface as :class:`StorageError` from the
        page store) become issues instead of exceptions, and the walk
        continues to report dangling child ids, duplicate references,
        orphan pages, leaf-depth violations, and a size mismatch.
        An empty list means the index is healthy.

        :meth:`verify_summary` wraps the same walk in a
        machine-readable dict and reports the outcome to the
        structured event log.
        """
        return list(self.verify_summary()["issues"])

    def verify_summary(self) -> dict[str, Any]:
        """:meth:`verify` as a machine-readable summary dict.

        Keys: ``ok`` (no issues), ``issues`` (the :meth:`verify`
        list), ``nodes_walked``, ``unreadable_nodes``,
        ``leaf_entries`` (entries counted during the walk) and
        ``recorded_size`` (the tree's own entry count).  The summary
        is JSON-serializable; when the structured event log is
        enabled, it is also emitted as a ``verify`` event — CI and
        recovery tooling consume either surface.
        """
        issues: list[str] = []
        reachable: set[int] = set()
        counted = 0
        unreadable = 0
        stack: list[tuple[int, int | None]] = [(self.root_id, None)]
        while stack:
            page_id, expect_level = stack.pop()
            if page_id in reachable:
                issues.append(f"node {page_id} is referenced more "
                              "than once")
                continue
            reachable.add(page_id)
            try:
                node = self._read(page_id)
            except StorageError as error:
                issues.append(f"node {page_id} is unreadable: {error}")
                unreadable += 1
                continue
            if expect_level is not None and node.level != expect_level:
                issues.append(
                    f"node {page_id}: level {node.level} != expected "
                    f"{expect_level}")
            if node.is_leaf:
                counted += len(node.entries)
                continue
            for entry in node.entries:
                if entry.child_id is None:
                    issues.append(f"node {page_id}: internal entry "
                                  "without a child id")
                    continue
                stack.append((entry.child_id, node.level - 1))
        try:
            stored = self.store.page_ids()
        except NotImplementedError:  # pragma: no cover - custom stores
            stored = reachable
        if unreadable == 0:
            # Orphans are only meaningful when the whole tree was
            # walkable; below an unreadable node everything would be
            # misreported as orphaned.
            for orphan in sorted(stored - reachable):
                issues.append(f"page {orphan} is not reachable from "
                              f"the root (orphan)")
        for dangling in sorted(reachable - stored):
            issues.append(f"node {dangling} is referenced but not in "
                          "the store (dangling child id)")
        if not issues and counted != self.size:
            issues.append(f"size mismatch: counted {counted} leaf "
                          f"entries, recorded {self.size}")
        summary: dict[str, Any] = {
            "ok": not issues,
            "issues": issues,
            "nodes_walked": len(reachable),
            "unreadable_nodes": unreadable,
            "leaf_entries": counted,
            "recorded_size": self.size,
        }
        events = get_events()
        if events.enabled:
            events.emit("verify", summary)
        return summary

    def check_invariants(self) -> None:
        """Verify structural invariants; raises on violation.

        Checks: entry counts within bounds (root exempt), parent MBRs
        contain child MBRs exactly, uniform leaf depth, and that the
        recorded size matches the leaf entry count.
        """
        counted = self._check_node(self.root_id, expect_level=None)
        if counted != self.size:
            raise SpatialIndexError(
                f"size mismatch: counted {counted}, recorded {self.size}"
            )

    def _check_node(self, page_id: int, expect_level: int | None) -> int:
        node = self._read(page_id)
        if expect_level is not None and node.level != expect_level:
            raise SpatialIndexError(
                f"node {page_id}: level {node.level} != expected {expect_level}"
            )
        is_root = page_id == self.root_id
        if len(node) > self.max_entries:
            raise SpatialIndexError(f"node {page_id} overflows")
        if not is_root and self.size > 0 and len(node) < self.min_entries:
            raise SpatialIndexError(
                f"node {page_id} underfull ({len(node)} < {self.min_entries})"
            )
        if node.is_leaf:
            return len(node)
        total = 0
        for entry in node.entries:
            child = self._read(entry.child_id)
            child_mbr = child.mbr()
            if entry.rect != child_mbr:
                raise SpatialIndexError(
                    f"node {page_id}: stale MBR for child {entry.child_id}"
                )
            total += self._check_node(entry.child_id, node.level - 1)
        return total
