"""The page-store protocol: pluggable storage behind the R*-tree.

The paper stores region signatures in a *disk-based* R*-tree (via the
GiST C++ library).  To keep that property honest, the tree never holds
object references between nodes — it addresses children by integer
page id through a :class:`PageStore`.  This module defines the
protocol every backend implements, the in-memory reference backend,
and the factory functions that pick an on-disk implementation by
format version:

* :class:`MemoryPageStore` — a dict; zero overhead, the default for
  in-process indexes.
* :class:`~repro.index.storage.FilePageStore` — the v2 on-disk format
  (pickled page payloads in a crash-safe heap file).
* :class:`~repro.index.storage_v3.MmapPageStore` — the v3 on-disk
  format (fixed-layout binary nodes read zero-copy through ``mmap``).

:func:`open_page_store` sniffs an existing file's superblock magic and
returns the matching implementation; :func:`create_page_store` lays
out a fresh file in an explicit (or the default) format.  Callers that
accept "any page file" — ``WalrusDatabase.open``, ``walrus fsck``, the
server's snapshot readers — go through these instead of naming a
concrete class.

The protocol
------------
Beyond the core integer addressing (``allocate`` / ``read`` /
``write`` / ``free`` / ``page_ids`` / ``__len__``), the protocol
covers the whole storage lifecycle so callers never need
``isinstance`` checks:

* :meth:`PageStore.commit` / :meth:`PageStore.sync` — atomically
  persist all state (one commit generation).
* :meth:`PageStore.scan` / :meth:`PageStore.verify` — integrity walk
  over every live page.
* :meth:`PageStore.set_metadata` / :attr:`PageStore.metadata` — an
  opaque application blob that commits atomically with the page table
  (the database keeps its image catalog here).
* :attr:`PageStore.generation` — the commit generation currently
  visible, the snapshot identity the query server reports.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any

from repro.exceptions import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.index.storage import PageFileBase

#: Format version used for newly created on-disk page files.
DEFAULT_PAGE_FORMAT = 3


class PageInfo:
    """One live page's location and health, as reported by
    :meth:`PageStore.scan`."""

    __slots__ = ("page_id", "offset", "size", "error")

    def __init__(self, page_id: int, offset: int, size: int,
                 error: str | None = None) -> None:
        self.page_id = page_id
        self.offset = offset
        self.size = size
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "ok" if self.ok else f"BAD: {self.error}"
        return (f"PageInfo(id={self.page_id}, offset={self.offset}, "
                f"size={self.size}, {state})")


class StoreReport:
    """Result of a :meth:`PageStore.scan` integrity walk."""

    __slots__ = ("pages", "issues")

    def __init__(self, pages: list[PageInfo], issues: list[str]) -> None:
        self.pages = pages
        self.issues = issues

    @property
    def ok(self) -> bool:
        return not self.issues

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"StoreReport(pages={len(self.pages)}, "
                f"issues={len(self.issues)})")


class PageStore:
    """Protocol: integer-addressed storage of R*-tree pages.

    Subclasses must implement the core addressing methods; the
    lifecycle and integrity methods have safe defaults matching an
    ephemeral in-memory store (nothing durable, generation 0, an empty
    scan), so simple backends stay simple.
    """

    # -- core addressing -----------------------------------------------
    def allocate(self) -> int:
        """Reserve and return a fresh page id."""
        raise NotImplementedError

    def read(self, page_id: int) -> Any:
        """Return the object stored at ``page_id``."""
        raise NotImplementedError

    def write(self, page_id: int, page: Any) -> None:
        """Store ``page`` at ``page_id`` (overwriting)."""
        raise NotImplementedError

    def free(self, page_id: int) -> None:
        """Release ``page_id``; reading it afterwards is an error."""
        raise NotImplementedError

    def page_ids(self) -> set[int]:
        """Ids of all live pages."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of live pages."""
        raise NotImplementedError

    # -- durability and lifecycle --------------------------------------
    def commit(self) -> None:
        """Atomically persist all pages, the page table, and metadata.

        Alias of :meth:`sync`; ``commit`` is the protocol-level name,
        ``sync`` the historical one — both remain supported.
        """
        self.sync()

    def sync(self) -> None:
        """Flush everything to durable storage (no-op in memory)."""

    def close(self) -> None:
        """Release resources; the store must not be used afterwards."""

    @property
    def generation(self) -> int:
        """The commit generation this store currently reads from.

        Ephemeral stores report 0; durable stores advance it on every
        :meth:`commit`.
        """
        return 0

    # -- commit-coupled application metadata ---------------------------
    def set_metadata(self, blob: bytes) -> None:
        """Stage an opaque metadata blob to commit with the next
        :meth:`commit`.

        The default keeps the blob in memory only; durable stores
        persist it atomically with the page table.
        """
        if not isinstance(blob, bytes):
            raise StorageError(
                f"metadata must be bytes, got {type(blob).__name__}")
        self._app_metadata = blob

    @property
    def metadata(self) -> bytes | None:
        """The committed (or staged) metadata blob, or ``None``."""
        return getattr(self, "_app_metadata", None)

    # -- integrity ------------------------------------------------------
    def scan(self) -> StoreReport:
        """Verify every live page; memory stores have nothing to check."""
        return StoreReport([], [])

    def verify(self) -> list[str]:
        """Integrity issues found by :meth:`scan` (empty when healthy)."""
        return list(self.scan().issues)


class MemoryPageStore(PageStore):
    """Pages in a dict — the default for in-process indexes."""

    def __init__(self) -> None:
        self._pages: dict[int, Any] = {}
        self._next_id = 0

    def allocate(self) -> int:
        page_id = self._next_id
        self._next_id += 1
        return page_id

    def read(self, page_id: int) -> Any:
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(f"page {page_id} does not exist") from None

    def write(self, page_id: int, page: Any) -> None:
        if not 0 <= page_id < self._next_id:
            raise StorageError(f"page {page_id} was never allocated")
        self._pages[page_id] = page

    def free(self, page_id: int) -> None:
        if self._pages.pop(page_id, None) is None:
            raise StorageError(f"page {page_id} does not exist")

    def page_ids(self) -> set[int]:
        return set(self._pages)

    def __len__(self) -> int:
        return len(self._pages)


def sniff_page_format(path: str | os.PathLike[str]) -> int:
    """Read the superblock of the page file at ``path`` and return its
    format version (2 or 3).

    Raises :class:`StorageError` when the file cannot be read, is not
    a WALRUS page file, is the long-dead v1 format, or carries a
    magic/version mismatch.
    """
    from repro.index.storage import _MAGIC_V1, _SUPER, KNOWN_FORMATS

    spath = os.fspath(path)
    try:
        with open(spath, "rb") as stream:
            raw = stream.read(_SUPER.size)
    except OSError as error:
        raise StorageError(
            f"{spath}: cannot read page-file superblock: {error}"
        ) from error
    if len(raw) < _SUPER.size:
        raise StorageError(f"{spath}: truncated superblock")
    magic, version = _SUPER.unpack(raw)
    if magic == _MAGIC_V1:
        raise StorageError(
            f"{spath}: old-format (v1) WALRUS page file without "
            "checksums; rebuild the index to migrate"
        )
    expected = KNOWN_FORMATS.get(magic)
    if expected is None:
        raise StorageError(f"{spath}: not a WALRUS page file")
    if version != expected:
        raise StorageError(
            f"{spath}: superblock claims format version {version} but "
            f"carries the v{expected} magic"
        )
    return expected


def page_store_class(format_version: int) -> "type[PageFileBase]":
    """The on-disk :class:`PageStore` implementation for a format
    version."""
    if format_version == 2:
        from repro.index.storage import FilePageStore
        return FilePageStore
    if format_version == 3:
        from repro.index.storage_v3 import MmapPageStore
        return MmapPageStore
    raise StorageError(
        f"unsupported page-file format version {format_version} "
        "(supported: 2, 3)"
    )


def open_page_store(path: str | os.PathLike[str], *,
                    buffer_pages: int = 256,
                    readonly: bool = False) -> "PageFileBase":
    """Open an existing page file, dispatching on its superblock magic.

    This is how every "open whatever is on disk" path — database open,
    fsck, snapshot readers — stays format-agnostic: v2 files come back
    as :class:`~repro.index.storage.FilePageStore`, v3 files as
    :class:`~repro.index.storage_v3.MmapPageStore`.
    """
    store_class = page_store_class(sniff_page_format(path))
    return store_class(path, buffer_pages=buffer_pages, readonly=readonly)


def create_page_store(path: str | os.PathLike[str], *,
                      format_version: int | None = None,
                      buffer_pages: int = 256) -> "PageFileBase":
    """Create a fresh page file at ``path`` in ``format_version``
    (default :data:`DEFAULT_PAGE_FORMAT`).

    Refuses to overwrite an existing non-empty file — reopening goes
    through :func:`open_page_store`, and changing an existing file's
    format goes through ``walrus migrate``.
    """
    spath = os.fspath(path)
    if os.path.exists(spath) and os.path.getsize(spath) > 0:
        raise StorageError(
            f"{spath}: page file already exists; open it with "
            "open_page_store() or convert it with 'walrus migrate'"
        )
    version = DEFAULT_PAGE_FORMAT if format_version is None else format_version
    return page_store_class(version)(spath, buffer_pages=buffer_pages)
