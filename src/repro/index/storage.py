"""Paged node storage for the R*-tree: in-memory and file-backed.

The paper stores region signatures in a *disk-based* R*-tree (via the
GiST C++ library).  To keep that property honest, the tree never holds
object references between nodes — it addresses children by integer page
id through a :class:`PageStore`.  Two implementations are provided:

* :class:`MemoryPageStore` — a dict; zero overhead, used by default.
* :class:`FilePageStore` — an append-only heap file of pickled pages
  with an in-memory page table and a small LRU write-back buffer pool.
  ``sync()`` persists the page table so the index can be reopened.

The file format is deliberately simple (this is a reproduction, not a
storage engine): a header, pickled pages at arbitrary offsets, and a
pickled page table written on sync.  Space from rewritten pages is
reclaimed only by :meth:`FilePageStore.compact`.
"""

from __future__ import annotations

import os
import pickle
import struct
from collections import OrderedDict
from typing import Any

from repro.exceptions import StorageError

_MAGIC = b"WALRUSPG"
_HEADER = struct.Struct("<8sQQ")  # magic, table offset, next page id


class PageStore:
    """Interface: integer-addressed storage of picklable pages."""

    def allocate(self) -> int:
        """Reserve and return a fresh page id."""
        raise NotImplementedError

    def read(self, page_id: int) -> Any:
        """Return the object stored at ``page_id``."""
        raise NotImplementedError

    def write(self, page_id: int, page: Any) -> None:
        """Store ``page`` at ``page_id`` (overwriting)."""
        raise NotImplementedError

    def free(self, page_id: int) -> None:
        """Release ``page_id``; reading it afterwards is an error."""
        raise NotImplementedError

    def sync(self) -> None:
        """Flush everything to durable storage (no-op in memory)."""

    def close(self) -> None:
        """Release resources; the store must not be used afterwards."""

    def __len__(self) -> int:
        """Number of live pages."""
        raise NotImplementedError


class MemoryPageStore(PageStore):
    """Pages in a dict — the default for in-process indexes."""

    def __init__(self) -> None:
        self._pages: dict[int, Any] = {}
        self._next_id = 0

    def allocate(self) -> int:
        page_id = self._next_id
        self._next_id += 1
        return page_id

    def read(self, page_id: int) -> Any:
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(f"page {page_id} does not exist") from None

    def write(self, page_id: int, page: Any) -> None:
        if not 0 <= page_id < self._next_id:
            raise StorageError(f"page {page_id} was never allocated")
        self._pages[page_id] = page

    def free(self, page_id: int) -> None:
        if self._pages.pop(page_id, None) is None:
            raise StorageError(f"page {page_id} does not exist")

    def __len__(self) -> int:
        return len(self._pages)


class FilePageStore(PageStore):
    """Append-only heap file of pickled pages with an LRU buffer pool.

    Parameters
    ----------
    path:
        Heap file location.  An existing file is reopened (its page
        table is read from the offset in the header); a missing file is
        created.
    buffer_pages:
        Capacity of the write-back LRU buffer pool.  Dirty pages are
        spilled to the file on eviction and on :meth:`sync`.
    """

    def __init__(self, path: str | os.PathLike,
                 buffer_pages: int = 256) -> None:
        if buffer_pages < 1:
            raise StorageError("buffer pool needs at least one page")
        self.path = os.fspath(path)
        self.buffer_pages = buffer_pages
        self._buffer: OrderedDict[int, Any] = OrderedDict()
        self._dirty: set[int] = set()
        self._offsets: dict[int, tuple[int, int]] = {}  # id -> (offset, size)
        self._next_id = 0
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            self._file = open(self.path, "r+b")
            self._load_header()
        else:
            self._file = open(self.path, "w+b")
            self._write_header(0)

    # -- header / page table ------------------------------------------
    def _write_header(self, table_offset: int) -> None:
        self._file.seek(0)
        self._file.write(_HEADER.pack(_MAGIC, table_offset, self._next_id))
        self._file.flush()

    def _load_header(self) -> None:
        self._file.seek(0)
        raw = self._file.read(_HEADER.size)
        if len(raw) != _HEADER.size:
            raise StorageError(f"{self.path}: truncated header")
        magic, table_offset, next_id = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise StorageError(f"{self.path}: not a WALRUS page file")
        self._next_id = next_id
        if table_offset:
            self._file.seek(table_offset)
            self._offsets = pickle.load(self._file)

    # -- PageStore interface -------------------------------------------
    def allocate(self) -> int:
        page_id = self._next_id
        self._next_id += 1
        return page_id

    def read(self, page_id: int) -> Any:
        if page_id in self._buffer:
            self._buffer.move_to_end(page_id)
            return self._buffer[page_id]
        location = self._offsets.get(page_id)
        if location is None:
            raise StorageError(f"page {page_id} does not exist")
        offset, size = location
        self._file.seek(offset)
        page = pickle.loads(self._file.read(size))
        self._cache(page_id, page, dirty=False)
        return page

    def write(self, page_id: int, page: Any) -> None:
        if not 0 <= page_id < self._next_id:
            raise StorageError(f"page {page_id} was never allocated")
        self._cache(page_id, page, dirty=True)

    def free(self, page_id: int) -> None:
        in_buffer = self._buffer.pop(page_id, None) is not None
        self._dirty.discard(page_id)
        on_disk = self._offsets.pop(page_id, None) is not None
        if not in_buffer and not on_disk:
            raise StorageError(f"page {page_id} does not exist")

    def sync(self) -> None:
        for page_id in sorted(self._dirty):
            self._spill(page_id)
        self._dirty.clear()
        self._file.seek(0, os.SEEK_END)
        table_offset = self._file.tell()
        pickle.dump(self._offsets, self._file)
        self._file.flush()
        self._write_header(table_offset)

    def close(self) -> None:
        if self._file.closed:
            return
        self.sync()
        self._file.close()

    def __len__(self) -> int:
        live = set(self._offsets) | set(self._buffer)
        return len(live)

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- buffer pool ----------------------------------------------------
    def _cache(self, page_id: int, page: Any, *, dirty: bool) -> None:
        self._buffer[page_id] = page
        self._buffer.move_to_end(page_id)
        if dirty:
            self._dirty.add(page_id)
        while len(self._buffer) > self.buffer_pages:
            victim, victim_page = self._buffer.popitem(last=False)
            if victim in self._dirty:
                self._spill(victim, victim_page)
                self._dirty.discard(victim)

    def _spill(self, page_id: int, page: Any | None = None) -> None:
        if page is None:
            page = self._buffer[page_id]
        blob = pickle.dumps(page, protocol=pickle.HIGHEST_PROTOCOL)
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        self._file.write(blob)
        self._offsets[page_id] = (offset, len(blob))

    def compact(self) -> None:
        """Rewrite the heap file, dropping dead page versions."""
        self.sync()
        pages = {pid: self.read(pid) for pid in list(self._offsets)}
        self._file.close()
        self._file = open(self.path, "w+b")
        self._offsets.clear()
        self._buffer.clear()
        self._dirty.clear()
        self._write_header(0)
        self._file.seek(0, os.SEEK_END)
        for page_id, page in pages.items():
            self._spill(page_id, page)
        self.sync()
