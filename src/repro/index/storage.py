"""Crash-safe paged file storage for the R*-tree (the v2 format).

The protocol the R*-tree programs against lives in
:mod:`repro.index.pagestore` (:class:`PageStore`,
:class:`MemoryPageStore`, and the :func:`~repro.index.pagestore.\
open_page_store` / :func:`~repro.index.pagestore.create_page_store`
factories); those names are re-exported here for compatibility.  This
module holds the shared on-disk machinery — superblock, dual header
slots, checksummed records, atomic commit — as :class:`PageFileBase`,
plus the v2 implementation :class:`FilePageStore` whose page payloads
are pickles.  The zero-copy v3 format builds on the same base in
:mod:`repro.index.storage_v3`.

On-disk format (shared by v2 and v3)
------------------------------------
The file is crash-safe and self-verifying:

* A 16-byte superblock (magic + format version) followed by **two
  fixed-size header slots**.  Each slot carries a monotonically
  increasing generation number, the offset/size of the committed page
  table, the allocation cursor, and a CRC32 over the slot.  Commits
  alternate slots; a reader picks the valid slot with the highest
  generation, so a torn header write can damage at most the slot being
  written and the previous commit always remains reachable.
* Every page (and the page table itself) is stored as a
  **length-prefixed record**: ``(page_id, payload_size, crc32)`` header
  followed by the payload.  The CRC covers the header fields and the
  payload, so a bit flip, truncation, or a record stitched from two
  versions fails verification.  A failed check raises
  :class:`~repro.exceptions.PageCorruptionError` carrying the page id
  and file offset.
* The committed page table is **stamped** with a 4-byte magic and the
  writing store's format version, so opening a file whose table was
  written by a different format fails fast with a structured
  :class:`StorageError` instead of decoding garbage.  (v2 files
  written before the stamp existed still open: an unstamped pickled
  table is accepted by the v2 decoder.)
* An optional **application metadata blob** (see :meth:`set_metadata`)
  is stored as a record and referenced from the header slot, so it
  commits atomically with the page table — the database keeps its
  image catalog here, eliminating the torn-commit window between two
  separate files.
* ``sync()`` is an atomic commit: spill dirty pages, append the page
  table record and any staged metadata, ``fsync``, then write the
  *inactive* header slot and ``fsync`` again.  A crash at any byte
  boundary reopens to the previous committed generation.
* ``compact()`` rewrites into a side file and ``os.replace``\\ s it into
  place (plus a directory fsync), so compaction is also crash-safe.

What differs between v2 and v3 is only the *payload encoding* — the
codec hooks ``_encode_page`` / ``_decode_page`` / ``_encode_table`` /
``_decode_table`` — and how reads are served (buffered file reads in
v2, ``mmap`` views in v3).  Version 1 files (no checksums, single
header) are detected and rejected with a clear "old format" error.
Space from rewritten pages is reclaimed only by :meth:`compact`.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from collections import OrderedDict
from typing import Any, TypeVar

from repro.exceptions import PageCorruptionError, StorageError
from repro.index.pagestore import MemoryPageStore as MemoryPageStore
from repro.index.pagestore import PageInfo as PageInfo
from repro.index.pagestore import PageStore as PageStore
from repro.index.pagestore import StoreReport as StoreReport

_MAGIC_V1 = b"WALRUSPG"
_MAGIC = b"WALRUSP2"
_MAGIC_V3 = b"WALRUSP3"
_FORMAT_VERSION = 2

#: Superblock magic -> the format version it must carry.
KNOWN_FORMATS = {_MAGIC: 2, _MAGIC_V3: 3}

#: Superblock: magic, format version, padding (16 bytes).
_SUPER = struct.Struct("<8sI4x")
#: Header slot: generation, table offset/size, metadata offset/size,
#: next page id, CRC32 of the preceding fields (56 bytes with padding).
_SLOT = struct.Struct("<QQQQQQI4x")
_SLOT_BODY = struct.Struct("<QQQQQQ")
#: Record header: page id, payload size, CRC32 of (id, size, payload).
_RECORD = struct.Struct("<QII")
_RECORD_BODY = struct.Struct("<QI")

#: Page-table stamp: magic + the writing store's format version.
_TABLE_MAGIC = b"WPTB"
_TABLE_STAMP = struct.Struct("<4sI")

_DATA_START = _SUPER.size + 2 * _SLOT.size
#: Reserved page id marking a page-table record.
_TABLE_ID = 2 ** 64 - 1
#: Reserved page id marking an application-metadata record.
_META_ID = 2 ** 64 - 2
#: Attempts for transient-IO-error read retries.
_READ_RETRIES = 3

_SelfT = TypeVar("_SelfT", bound="PageFileBase")


def fsync_directory(directory: str) -> None:
    """``fsync`` a directory so a rename/create inside it is durable.

    Best-effort on platforms where directories cannot be opened
    (Windows); silently returns there.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_stream(stream: Any) -> None:
    """Flush ``stream`` all the way to disk.

    A stream may provide its own ``fsync`` (the fault-injection wrapper
    does, to observe the sync barrier); otherwise flush + ``os.fsync``.
    """
    fsync = getattr(stream, "fsync", None)
    if fsync is not None:
        fsync()
        return
    stream.flush()
    os.fsync(stream.fileno())


def _record_crc(page_id: int, payload: bytes | bytearray | memoryview) -> int:
    return zlib.crc32(payload, zlib.crc32(
        _RECORD_BODY.pack(page_id, len(payload))))


def committed_generation(path: str | os.PathLike[str]) -> int:
    """The newest committed generation number of the page file at
    ``path``, read from the dual header slots without opening a store.

    Works on any supported format (v2 or v3) — the superblock and
    header-slot layout are shared.  This is the cheap staleness probe
    the query server's snapshot reader sessions use: a reader pinned
    to generation G can compare against the current commit with two
    fixed-size reads and reopen only when a writer has actually
    committed since.  Raises :class:`StorageError` when the file is
    missing or not a WALRUS page file,
    :class:`PageCorruptionError` when both header slots are corrupt.
    """
    try:
        with open(os.fspath(path), "rb") as stream:
            raw = stream.read(_SUPER.size)
            if len(raw) < _SUPER.size:
                raise StorageError(f"{os.fspath(path)}: truncated superblock")
            magic, version = _SUPER.unpack(raw)
            if KNOWN_FORMATS.get(magic) != version:
                raise StorageError(
                    f"{os.fspath(path)}: not a v{_FORMAT_VERSION} or v3 "
                    "WALRUS page file")
            generations = []
            for index in range(2):
                blob = stream.read(_SLOT.size)
                if len(blob) < _SLOT.size:
                    continue
                fields = _SLOT.unpack(blob)
                if fields[-1] != zlib.crc32(_SLOT_BODY.pack(*fields[:-1])):
                    continue
                generations.append(fields[0])
    except OSError as error:
        raise StorageError(
            f"{os.fspath(path)}: cannot read header: {error}") from error
    if not generations:
        raise PageCorruptionError(
            f"{os.fspath(path)}: both header slots are corrupt", offset=0)
    return max(generations)


class PageFileBase(PageStore):
    """Shared machinery of the on-disk page formats.

    Subclasses pin the class attributes ``MAGIC`` / ``FORMAT_VERSION``
    and implement the codec hooks:

    * :meth:`_encode_page` / :meth:`_decode_page` — page payloads
      (pickle in v2, fixed binary node layout in v3).
    * :meth:`_encode_table` / :meth:`_decode_table` — the committed
      offset table.

    Everything else — superblock, dual-slot atomic commit, record
    framing, CRCs, the LRU write-back buffer pool, compaction, and the
    integrity scan — is format-independent and lives here.

    Parameters
    ----------
    path:
        Heap file location.  An existing file is reopened (its page
        table is read from the newest valid header slot); a missing
        file is created.
    buffer_pages:
        Capacity of the write-back LRU buffer pool.  Dirty pages are
        spilled to the file on eviction and on :meth:`sync`.
    readonly:
        Open an existing file without write access: ``allocate`` /
        ``write`` / ``free`` / ``sync`` / ``compact`` raise
        :class:`StorageError` and ``close`` does not sync.  Used by
        integrity tooling (``walrus fsck``).
    """

    MAGIC: bytes
    FORMAT_VERSION: int

    def __init__(self, path: str | os.PathLike[str], buffer_pages: int = 256,
                 *, readonly: bool = False) -> None:
        if buffer_pages < 1:
            raise StorageError("buffer pool needs at least one page")
        self.path = os.fspath(path)
        self.buffer_pages = buffer_pages
        self.readonly = readonly
        self._buffer: OrderedDict[int, Any] = OrderedDict()
        self._dirty: set[int] = set()
        self._offsets: dict[int, tuple[int, int]] = {}  # id -> (offset, size)
        self._next_id = 0
        self._generation = 0
        self._closed = False
        self._meta_location: tuple[int, int] | None = None
        self._meta_blob: bytes | None = None
        self._meta_dirty = False
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if readonly and not exists:
            raise StorageError(f"{self.path}: no page file to open readonly")
        try:
            if exists:
                mode = "rb" if readonly else "r+b"
                self._file = self._wrap_file(open(self.path, mode))
                self._load_header()
            else:
                self._file = self._wrap_file(open(self.path, "w+b"))
                self._init_file()
        except Exception:
            stream = getattr(self, "_file", None)
            if stream is not None:
                try:
                    stream.close()
                except Exception:
                    pass
            self._closed = True
            raise

    def _wrap_file(self, stream: Any) -> Any:
        """Hook for subclasses (fault injection) to intercept file IO."""
        return stream

    # -- codec hooks ----------------------------------------------------
    def _encode_page(self, page_id: int, page: Any) -> bytes:
        """Serialize ``page`` into this format's record payload."""
        raise NotImplementedError

    def _decode_page(self, page_id: int, payload: bytes | memoryview,
                     offset: int) -> Any:
        """Deserialize a checksum-verified record payload."""
        raise NotImplementedError

    def _encode_table(self) -> bytes:
        """Serialize ``self._offsets`` (stamped; see ``_stamp_table``)."""
        raise NotImplementedError

    def _decode_table(self, payload: bytes | memoryview,
                      offset: int) -> dict[int, tuple[int, int]]:
        """Deserialize a committed offset table."""
        raise NotImplementedError

    # -- superblock / header slots -------------------------------------
    def _init_file(self) -> None:
        """Lay out superblock + both header slots for a fresh file."""
        self._file.seek(0)
        self._file.write(_SUPER.pack(self.MAGIC, self.FORMAT_VERSION))
        self._file.write(self._pack_slot(0, 0, 0, 0, 0, 0))
        self._file.write(self._pack_slot(0, 0, 0, 0, 0, 0))
        _fsync_stream(self._file)

    @staticmethod
    def _pack_slot(generation: int, table_offset: int, table_size: int,
                   meta_offset: int, meta_size: int, next_id: int) -> bytes:
        body = _SLOT_BODY.pack(generation, table_offset, table_size,
                               meta_offset, meta_size, next_id)
        return _SLOT.pack(generation, table_offset, table_size,
                          meta_offset, meta_size, next_id, zlib.crc32(body))

    def _write_slot(self, generation: int, table_offset: int,
                    table_size: int) -> None:
        """Commit by writing the slot *not* holding the current
        generation, then fsync — the single atomic header flip."""
        meta_offset, meta_size = self._meta_location or (0, 0)
        slot_index = generation % 2
        self._file.seek(_SUPER.size + slot_index * _SLOT.size)
        self._file.write(self._pack_slot(generation, table_offset,
                                         table_size, meta_offset,
                                         meta_size, self._next_id))
        _fsync_stream(self._file)

    def _check_magic(self, magic: bytes, version: int) -> None:
        """Validate a superblock against this store's format."""
        if magic == self.MAGIC:
            if version != self.FORMAT_VERSION:
                raise StorageError(
                    f"{self.path}: unsupported page-file format version "
                    f"{version} (this build reads version "
                    f"{self.FORMAT_VERSION})"
                )
            return
        other = KNOWN_FORMATS.get(magic)
        if other is not None:
            raise StorageError(
                f"{self.path}: this is a v{other} WALRUS page file, not "
                f"v{self.FORMAT_VERSION}; open it with "
                "repro.index.pagestore.open_page_store() or convert it "
                "with 'walrus migrate'"
            )
        raise StorageError(f"{self.path}: not a WALRUS page file")

    def _load_header(self) -> None:
        raw = self._read_at(0, _SUPER.size, "superblock")
        if len(raw) < _SUPER.size:
            raise StorageError(f"{self.path}: truncated superblock")
        magic, version = _SUPER.unpack(raw)
        self._check_magic(bytes(magic), version)
        slots = []
        for index in range(2):
            offset = _SUPER.size + index * _SLOT.size
            blob = self._read_at(offset, _SLOT.size, f"header slot {index}")
            if len(blob) < _SLOT.size:
                continue
            fields = _SLOT.unpack(blob)
            if fields[-1] != zlib.crc32(_SLOT_BODY.pack(*fields[:-1])):
                continue  # torn/corrupt slot; the other one commits
            slots.append(fields[:-1])
        if not slots:
            raise PageCorruptionError(
                f"{self.path}: both header slots are corrupt", offset=0)
        (generation, table_offset, table_size,
         meta_offset, meta_size, next_id) = max(slots)
        self._generation = generation
        self._next_id = next_id
        self._meta_location = (meta_offset, meta_size) if meta_offset else None
        self._meta_blob = None
        self._meta_dirty = False
        self._offsets = (self._load_table(table_offset, table_size)
                         if table_offset else {})

    def _load_table(self, offset: int,
                    size: int) -> dict[int, tuple[int, int]]:
        payload = self._read_record(_TABLE_ID, offset, size,
                                    what="page table")
        return self._decode_table(payload, offset)

    def _stamp_table(self, body: bytes) -> bytes:
        """Prefix a serialized table with this format's version stamp."""
        return _TABLE_STAMP.pack(_TABLE_MAGIC, self.FORMAT_VERSION) + body

    def _unstamp_table(self, payload: bytes | memoryview,
                       offset: int) -> bytes | memoryview | None:
        """Split the version stamp off a table payload.

        Returns the table body, or ``None`` when the payload carries no
        stamp (a v2 file written before stamping existed — the v2
        decoder falls back to the legacy bare pickle).  Raises
        :class:`StorageError` when the stamp names another format:
        that means the superblock and the committed table disagree,
        i.e. the file was stitched together or rewritten by the wrong
        tool.
        """
        if len(payload) >= _TABLE_STAMP.size:
            magic, version = _TABLE_STAMP.unpack_from(payload)
            if magic == _TABLE_MAGIC:
                if version != self.FORMAT_VERSION:
                    raise StorageError(
                        f"{self.path}: page table at offset {offset} was "
                        f"written by format v{version} but this is a "
                        f"v{self.FORMAT_VERSION} store; run 'walrus "
                        "migrate' instead of mixing formats"
                    )
                return payload[_TABLE_STAMP.size:]
        return None

    # -- record IO ------------------------------------------------------
    def _read_at(self, offset: int, size: int,
                 what: str) -> bytes | memoryview:
        """Positioned read with bounded retry on transient ``OSError``."""
        last_error: OSError | None = None
        for _ in range(_READ_RETRIES):
            try:
                self._file.seek(offset)
                return self._file.read(size)
            except OSError as error:
                last_error = error
        raise StorageError(
            f"{self.path}: reading {what} at offset {offset} failed "
            f"after {_READ_RETRIES} attempts: {last_error}"
        ) from last_error

    def _read_record(self, page_id: int, offset: int, size: int,
                     *, what: str | None = None) -> bytes | memoryview:
        """Read and verify one record; return its payload."""
        what = what or f"page {page_id}"
        corrupt_id = None if page_id in (_TABLE_ID, _META_ID) else page_id
        blob = self._read_at(offset, size, what)
        if len(blob) < size:
            raise PageCorruptionError(
                f"{self.path}: {what} at offset {offset} is truncated "
                f"({len(blob)} of {size} bytes)",
                page_id=corrupt_id, offset=offset)
        stored_id, payload_size, crc = _RECORD.unpack_from(blob)
        payload = blob[_RECORD.size:]
        if stored_id != page_id or payload_size != len(payload):
            raise PageCorruptionError(
                f"{self.path}: {what} at offset {offset} has a "
                f"mismatched record header (id {stored_id}, "
                f"size {payload_size})",
                page_id=corrupt_id, offset=offset)
        if _record_crc(stored_id, payload) != crc:
            raise PageCorruptionError(
                f"{self.path}: {what} at offset {offset} failed its "
                "checksum", page_id=corrupt_id, offset=offset)
        return payload

    def _append_record(self, page_id: int, payload: bytes) -> tuple[int, int]:
        """Append one checksummed record; return ``(offset, size)``."""
        header = _RECORD.pack(page_id, len(payload),
                              _record_crc(page_id, payload))
        self._file.seek(0, os.SEEK_END)
        offset = max(self._file.tell(), _DATA_START)
        self._file.seek(offset)
        self._file.write(header + payload)
        return offset, _RECORD.size + len(payload)

    def _check_open(self) -> None:
        if self._closed or self._file.closed:
            raise StorageError(f"{self.path}: store is closed")

    def _check_writable(self) -> None:
        self._check_open()
        if self.readonly:
            raise StorageError(f"{self.path}: store is readonly")

    # -- PageStore interface -------------------------------------------
    def allocate(self) -> int:
        self._check_writable()
        page_id = self._next_id
        self._next_id += 1
        return page_id

    def read(self, page_id: int) -> Any:
        self._check_open()
        if page_id in self._buffer:
            self._buffer.move_to_end(page_id)
            return self._buffer[page_id]
        location = self._offsets.get(page_id)
        if location is None:
            raise StorageError(f"page {page_id} does not exist")
        offset, size = location
        payload = self._read_record(page_id, offset, size)
        page = self._decode_page(page_id, payload, offset)
        self._cache(page_id, page, dirty=False)
        return page

    def write(self, page_id: int, page: Any) -> None:
        self._check_writable()
        if not 0 <= page_id < self._next_id:
            raise StorageError(f"page {page_id} was never allocated")
        self._cache(page_id, page, dirty=True)

    def free(self, page_id: int) -> None:
        self._check_writable()
        in_buffer = self._buffer.pop(page_id, None) is not None
        self._dirty.discard(page_id)
        on_disk = self._offsets.pop(page_id, None) is not None
        if not in_buffer and not on_disk:
            raise StorageError(f"page {page_id} does not exist")

    def page_ids(self) -> set[int]:
        return set(self._offsets) | set(self._buffer)

    @property
    def generation(self) -> int:
        """The commit generation this store currently reads from.

        For a writer this advances on every :meth:`sync`; for a
        readonly store it identifies the dual-header commit the open
        pinned — the snapshot identity the query server reports per
        response.
        """
        return self._generation

    # -- commit-coupled application metadata ----------------------------
    def set_metadata(self, blob: bytes) -> None:
        """Stage an opaque metadata blob to commit with the next
        :meth:`sync`.

        The blob becomes durable *atomically* with the page table —
        both belong to the same commit generation, so a reader never
        observes metadata from one checkpoint with pages from another.
        :class:`~repro.core.database.WalrusDatabase` stores its image
        catalog and index root here.
        """
        self._check_writable()
        if not isinstance(blob, bytes):
            raise StorageError(
                f"metadata must be bytes, got {type(blob).__name__}")
        self._meta_blob = blob
        self._meta_dirty = True

    @property
    def metadata(self) -> bytes | None:
        """The committed (or staged) metadata blob, or ``None``."""
        self._check_open()
        if self._meta_blob is None and self._meta_location is not None:
            offset, size = self._meta_location
            self._meta_blob = bytes(
                self._read_record(_META_ID, offset, size,
                                  what="metadata record"))
        return self._meta_blob

    def sync(self) -> None:
        """Atomically commit all pages, the page table, and metadata.

        Order matters: spill dirty pages, append the table record and
        any staged metadata, fsync so the data is durable, then flip
        the header (write the inactive slot, fsync).  A crash before
        the header flip reopens to the previous generation; the flip
        itself is protected by the dual slots' generation + CRC scheme.
        """
        self._check_writable()
        for page_id in sorted(self._dirty):
            self._spill(page_id)
        self._dirty.clear()
        table_blob = self._encode_table()
        table_offset, table_size = self._append_record(_TABLE_ID, table_blob)
        if self._meta_dirty:
            assert self._meta_blob is not None
            self._meta_location = self._append_record(_META_ID,
                                                      self._meta_blob)
            self._meta_dirty = False
        _fsync_stream(self._file)
        self._write_slot(self._generation + 1, table_offset, table_size)
        self._generation += 1

    def close(self) -> None:
        if self._closed or self._file.closed:
            self._closed = True
            return
        try:
            if not self.readonly:
                self.sync()
        finally:
            self._closed = True
            self._file.close()

    def __len__(self) -> int:
        return len(self.page_ids())

    def __enter__(self: _SelfT) -> _SelfT:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- buffer pool ----------------------------------------------------
    def _cache(self, page_id: int, page: Any, *, dirty: bool) -> None:
        self._buffer[page_id] = page
        self._buffer.move_to_end(page_id)
        if dirty:
            self._dirty.add(page_id)
        while len(self._buffer) > self.buffer_pages:
            victim, victim_page = self._buffer.popitem(last=False)
            if victim in self._dirty:
                self._spill(victim, victim_page)
                self._dirty.discard(victim)

    def _spill(self, page_id: int, page: Any | None = None) -> None:
        if page is None:
            page = self._buffer[page_id]
        blob = self._encode_page(page_id, page)
        self._offsets[page_id] = self._append_record(page_id, blob)

    def _replacement_store(self, side_path: str) -> "PageFileBase":
        """A fresh same-format store for :meth:`compact` to fill."""
        return type(self)(side_path, buffer_pages=1)

    def _discard_maps(self) -> None:
        """Drop any OS-level read mappings before the backing file is
        swapped out (no-op for plain file IO; v3 overrides)."""

    def compact(self) -> None:
        """Rewrite the heap file, dropping dead page versions.

        The replacement is built in a side file and swapped in with
        ``os.replace`` + directory fsync, so a crash mid-compaction
        leaves the original file untouched.

        The replacement inherits this store's commit generation so the
        counter stays monotonic across the swap — a snapshot reader
        pinned at generation N must never see a later, different
        commit also numbered N (the ABA case for
        :func:`committed_generation` staleness probes).
        """
        self._check_writable()
        self.sync()
        pages = {pid: self.read(pid) for pid in sorted(self._offsets)}
        side_path = self.path + ".compact"
        if os.path.exists(side_path):
            os.unlink(side_path)
        replacement = self._replacement_store(side_path)
        try:
            replacement._next_id = self._next_id
            replacement._generation = self._generation
            if self.metadata is not None:
                replacement.set_metadata(self.metadata)
            for page_id, page in pages.items():
                replacement._spill(page_id, page)
            replacement.sync()
            replacement.close()
        except Exception:
            try:
                replacement.close()
            except Exception:
                pass
            if os.path.exists(side_path):
                os.unlink(side_path)
            raise
        self._discard_maps()
        self._file.close()
        os.replace(side_path, self.path)
        fsync_directory(os.path.dirname(os.path.abspath(self.path)))
        self._buffer.clear()
        self._dirty.clear()
        self._offsets.clear()
        self._file = self._wrap_file(open(self.path, "r+b"))
        self._load_header()

    # -- integrity ------------------------------------------------------
    def scan(self) -> StoreReport:
        """Verify every live page's record against its checksum.

        Returns a :class:`StoreReport`; issues include checksum
        failures, truncated records, and table entries pointing past
        the end of the file.  Buffered-but-unsynced pages are skipped
        (they have no on-disk record yet).
        """
        self._check_open()
        self._file.seek(0, os.SEEK_END)
        file_size = self._file.tell()
        pages: list[PageInfo] = []
        issues: list[str] = []
        for page_id in sorted(self._offsets):
            offset, size = self._offsets[page_id]
            info = PageInfo(page_id, offset, size)
            if offset + size > file_size:
                info.error = (f"page {page_id} record at offset {offset} "
                              f"extends past end of file "
                              f"({offset + size} > {file_size})")
            else:
                try:
                    self._read_record(page_id, offset, size)
                except StorageError as error:
                    info.error = str(error)
            if info.error is not None:
                issues.append(info.error)
            pages.append(info)
        if self._meta_location is not None:
            offset, size = self._meta_location
            try:
                self._read_record(_META_ID, offset, size,
                                  what="metadata record")
            except StorageError as error:
                issues.append(f"metadata record at offset {offset}: "
                              f"{error}")
        return StoreReport(pages, issues)


class FilePageStore(PageFileBase):
    """The v2 on-disk format: page payloads are pickles.

    General-purpose — any picklable object can be a page — at the cost
    of a full deserialization per cold read.  New databases default to
    the v3 format (:class:`~repro.index.storage_v3.MmapPageStore`),
    which reads R*-tree nodes zero-copy; v2 remains fully supported
    for existing files and as the fallback for non-node pages.
    """

    MAGIC = _MAGIC
    FORMAT_VERSION = _FORMAT_VERSION

    def _check_magic(self, magic: bytes, version: int) -> None:
        if magic == _MAGIC_V1:
            raise StorageError(
                f"{self.path}: old-format (v1) WALRUS page file without "
                "checksums; rebuild the index to migrate to format v2"
            )
        super()._check_magic(magic, version)

    def _encode_page(self, page_id: int, page: Any) -> bytes:
        return pickle.dumps(page, protocol=pickle.HIGHEST_PROTOCOL)

    def _decode_page(self, page_id: int, payload: bytes | memoryview,
                     offset: int) -> Any:
        try:
            return pickle.loads(payload)
        except Exception as error:
            # The checksum passed, so this is our bug or a format skew —
            # still surface it as a structured storage error.
            raise StorageError(
                f"{self.path}: page {page_id} at offset {offset} does "
                f"not unpickle: {error}"
            ) from error

    def _encode_table(self) -> bytes:
        return self._stamp_table(
            pickle.dumps(self._offsets, protocol=pickle.HIGHEST_PROTOCOL))

    def _decode_table(self, payload: bytes | memoryview,
                      offset: int) -> dict[int, tuple[int, int]]:
        body = self._unstamp_table(payload, offset)
        if body is None:
            body = payload  # a v2 file from before table stamping
        try:
            table = pickle.loads(body)
        except Exception as error:
            raise StorageError(
                f"{self.path}: page table at offset {offset} does not "
                f"unpickle: {error}"
            ) from error
        if not isinstance(table, dict):
            raise StorageError(
                f"{self.path}: page table at offset {offset} has type "
                f"{type(table).__name__}, expected dict"
            )
        return table
