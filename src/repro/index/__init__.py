"""Spatial-index substrate: R*-tree over pluggable paged storage."""

from repro.index.faults import (
    FaultInjectingPageStore,
    FaultPlan,
    SimulatedCrash,
    corrupt_page,
)
from repro.index.geometry import Rect
from repro.index.gist import BTreeKey, GiST, KeyClass, RTreeKey
from repro.index.node import Entry, Node
from repro.index.rstar import RStarTree
from repro.index.storage import (
    FilePageStore,
    MemoryPageStore,
    PageInfo,
    PageStore,
    StoreReport,
    fsync_directory,
)

__all__ = [
    "BTreeKey",
    "Entry",
    "FaultInjectingPageStore",
    "FaultPlan",
    "GiST",
    "KeyClass",
    "RTreeKey",
    "FilePageStore",
    "MemoryPageStore",
    "Node",
    "PageInfo",
    "PageStore",
    "RStarTree",
    "Rect",
    "SimulatedCrash",
    "StoreReport",
    "corrupt_page",
    "fsync_directory",
]
