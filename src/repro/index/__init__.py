"""Spatial-index substrate: R*-tree over pluggable paged storage."""

from repro.index.geometry import Rect
from repro.index.gist import BTreeKey, GiST, KeyClass, RTreeKey
from repro.index.node import Entry, Node
from repro.index.rstar import RStarTree
from repro.index.storage import FilePageStore, MemoryPageStore, PageStore

__all__ = [
    "BTreeKey",
    "Entry",
    "GiST",
    "KeyClass",
    "RTreeKey",
    "FilePageStore",
    "MemoryPageStore",
    "Node",
    "PageStore",
    "RStarTree",
    "Rect",
]
