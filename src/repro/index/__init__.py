"""Spatial-index substrate: R*-tree over pluggable paged storage."""

from repro.index.faults import (
    FaultInjectingMmapPageStore,
    FaultInjectingPageStore,
    FaultPlan,
    SimulatedCrash,
    corrupt_page,
    fault_injecting_store,
)
from repro.index.geometry import Rect
from repro.index.gist import BTreeKey, GiST, KeyClass, RTreeKey
from repro.index.migrate import MigrationReport, migrate_page_file
from repro.index.node import Entry, Node
from repro.index.pagestore import (
    DEFAULT_PAGE_FORMAT,
    MemoryPageStore,
    PageInfo,
    PageStore,
    StoreReport,
    create_page_store,
    open_page_store,
    sniff_page_format,
)
from repro.index.rstar import RStarTree
from repro.index.storage import (
    FilePageStore,
    PageFileBase,
    committed_generation,
    fsync_directory,
)
from repro.index.storage_v3 import MmapPageStore

__all__ = [
    "BTreeKey",
    "DEFAULT_PAGE_FORMAT",
    "Entry",
    "FaultInjectingMmapPageStore",
    "FaultInjectingPageStore",
    "FaultPlan",
    "GiST",
    "KeyClass",
    "MigrationReport",
    "MmapPageStore",
    "RTreeKey",
    "FilePageStore",
    "MemoryPageStore",
    "Node",
    "PageFileBase",
    "PageInfo",
    "PageStore",
    "RStarTree",
    "Rect",
    "SimulatedCrash",
    "StoreReport",
    "committed_generation",
    "corrupt_page",
    "create_page_store",
    "fault_injecting_store",
    "fsync_directory",
    "migrate_page_file",
    "open_page_store",
    "sniff_page_format",
]
