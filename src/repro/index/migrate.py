"""Offline page-file format migration (v2 ↔ v3).

:func:`migrate_page_file` rewrites a page file into another format the
same way ``compact()`` rewrites within one: build the replacement in a
side file, then swap it into place with ``os.replace`` + directory
fsync.  A crash at any point leaves either the intact original or the
complete replacement — never a hybrid.

The migrated file preserves everything a reader can observe:

* every live page (decoded with the source codec, re-encoded with the
  target codec — queries return bit-identical results because the v3
  layout stores the exact float64/int64 values the pickles held),
* the application metadata blob,
* the allocation cursor (``next_id``), and
* the commit **generation** — the replacement's single closing commit
  is primed to land on the source's generation, keeping
  :func:`~repro.index.storage.committed_generation` monotonic for
  snapshot readers (same ABA rule as compaction; identical content,
  identical generation).

Migration is strictly offline: no other process may have the file open
for writing while it runs.  Readers holding the old inode keep working
until they reopen, exactly as with compaction.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass

from repro.exceptions import StorageError
from repro.index.pagestore import (
    DEFAULT_PAGE_FORMAT,
    open_page_store,
    page_store_class,
)
from repro.index.storage import fsync_directory


@dataclass(frozen=True)
class MigrationReport:
    """What one :func:`migrate_page_file` run did."""

    path: str
    source_format: int
    target_format: int
    pages: int
    generation: int
    backup_path: str | None

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "source_format": self.source_format,
            "target_format": self.target_format,
            "pages": self.pages,
            "generation": self.generation,
            "backup_path": self.backup_path,
        }


def migrate_page_file(path: str | os.PathLike[str], *,
                      to_format: int | None = None,
                      keep_backup: bool = False) -> MigrationReport:
    """Rewrite the page file at ``path`` into ``to_format`` (default
    :data:`~repro.index.pagestore.DEFAULT_PAGE_FORMAT`).

    With ``keep_backup`` the original survives next to the migrated
    file as ``<path>.v<source_format>.bak``.  Raises
    :class:`StorageError` when the file already has the target format
    or holds pages the target codec cannot represent (e.g. non-node
    pages moving to v3).
    """
    spath = os.fspath(path)
    target = DEFAULT_PAGE_FORMAT if to_format is None else to_format
    target_class = page_store_class(target)
    side_path = spath + ".migrate"
    source = open_page_store(spath, readonly=True)
    try:
        source_format = source.FORMAT_VERSION
        if source_format == target:
            raise StorageError(
                f"{spath}: already a v{target} page file")
        if os.path.exists(side_path):
            os.unlink(side_path)
        replacement = target_class(side_path, buffer_pages=1)
        try:
            replacement._next_id = source._next_id
            # close() commits exactly once, so priming one generation
            # below the source lands the replacement's only commit on
            # the source's generation — the counter snapshot readers
            # compare against never moves backwards.
            replacement._generation = max(source.generation - 1, 0)
            metadata = source.metadata
            if metadata is not None:
                replacement.set_metadata(bytes(metadata))
            pages = 0
            for page_id in sorted(source._offsets):
                replacement._spill(page_id, source.read(page_id))
                pages += 1
            replacement.close()
            generation = replacement.generation
        except BaseException:
            try:
                replacement.close()
            except Exception:
                pass
            if os.path.exists(side_path):
                os.unlink(side_path)
            raise
    finally:
        source.close()
    backup_path: str | None = None
    if keep_backup:
        backup_path = f"{spath}.v{source_format}.bak"
        if os.path.exists(backup_path):
            os.unlink(backup_path)
        try:
            os.link(spath, backup_path)
        except OSError:  # pragma: no cover - filesystem dependent
            shutil.copy2(spath, backup_path)
    os.replace(side_path, spath)
    fsync_directory(os.path.dirname(os.path.abspath(spath)))
    return MigrationReport(path=spath, source_format=source_format,
                           target_format=target, pages=pages,
                           generation=generation, backup_path=backup_path)
