"""Fault injection for the file-backed page stores.

Crash-safety claims are only as good as the tests that attack them, so
this module provides a deterministic fault harness used by the
crash-consistency suite (and available for ad-hoc torture runs):

* :class:`FaultPlan` — a seeded, declarative schedule of faults:
  simulated crashes after N mutating file operations (optionally with a
  *torn* final write that persists only a prefix), transient
  ``OSError`` s on scheduled or random reads, and in-flight bit flips
  on read payloads.
* :class:`FaultInjectingPageStore` — a v2
  :class:`~repro.index.storage.FilePageStore` whose underlying file
  handle is wrapped by :class:`FaultyFile`, which executes the plan.
* :class:`FaultInjectingMmapPageStore` — the v3 twin: writes still go
  through :class:`FaultyFile` (mutation counting, torn writes,
  crashes), while ``mmap``-served reads run the same read-fault
  schedule through :func:`inject_read_faults`.
* :func:`fault_injecting_store` — sniffs an existing file's format and
  mounts the matching fault-injecting store, the way
  :func:`~repro.index.pagestore.open_page_store` does for clean opens.
* :func:`corrupt_page` — at-rest corruption: flip one bit inside a
  committed page record on disk, returning the flipped offset.

Both fault stores are byte-for-byte format compatible with their clean
counterparts, so after a simulated crash a test reopens the same path
with a plain store, exactly like a restarted process.

A simulated crash raises :class:`SimulatedCrash`, which deliberately
does **not** derive from :class:`~repro.exceptions.WalrusError` or
``OSError``: the storage layer must never swallow it, just as it cannot
swallow a real power failure.  After the crash fires, every further
operation on the wrapped file raises ``SimulatedCrash`` too — the
process is "dead".
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Any, Callable

from repro.exceptions import InvalidParameterError, StorageError
from repro.index.pagestore import open_page_store, sniff_page_format
from repro.index.storage import _RECORD, FilePageStore, PageFileBase
from repro.index.storage_v3 import MmapPageStore
from repro.observability.events import get_events


def _emit_fault(kind: str, **detail: int | bool | str) -> None:
    """Report one fault hit to the structured event log (no-op while
    the log is disabled) — torture runs become auditable streams."""
    events = get_events()
    if events.enabled:
        events.emit("fault", {"kind": kind, **detail})


class SimulatedCrash(Exception):
    """The fault plan killed the process at a scheduled fault point."""


class FaultPlan:
    """Deterministic schedule of storage faults.

    Parameters
    ----------
    seed:
        Seed for the plan's private RNG (prefix length of torn writes,
        probabilistic faults, bit positions).
    crash_after_ops:
        Simulate a crash on the Nth *mutating* file operation (write or
        fsync, 1-based) counted across the store's lifetime.  ``None``
        disables crashes.
    torn_writes:
        When the crashing operation is a write, persist a random proper
        prefix of the data first (a torn write).  When ``False`` the
        crashing write persists nothing.
    read_error_schedule:
        1-based read-operation indexes that raise a transient
        ``OSError`` (the read succeeds if retried).
    read_error_rate:
        Probability in ``[0, 1)`` that any read raises a transient
        ``OSError``.  Keep well below 1: the store retries only a
        bounded number of times.
    bitflip_rate:
        Probability that a read's returned bytes come back with one
        random bit flipped (in-flight corruption; the on-disk bytes are
        untouched).
    read_delay_seconds, read_delay_rate:
        Slow-read injection: with probability ``read_delay_rate`` a
        read sleeps ``read_delay_seconds`` before returning.  This is
        the chaos-harness knob for torturing a live ``walrus serve``
        daemon — slow storage must surface as bounded tail latency and
        deadline aborts, never as crashes.

    The plan's mutable state (operation counters, the RNG) is guarded
    by an internal lock, so one plan can be shared by several stores
    under a multithreaded server; scheduling stays deterministic only
    for single-threaded use, which is what the crash-consistency sweep
    relies on.
    """

    def __init__(self, *, seed: int = 0, crash_after_ops: int | None = None,
                 torn_writes: bool = True,
                 read_error_schedule: tuple[int, ...] = (),
                 read_error_rate: float = 0.0,
                 bitflip_rate: float = 0.0,
                 read_delay_seconds: float = 0.0,
                 read_delay_rate: float = 0.0) -> None:
        if crash_after_ops is not None and crash_after_ops < 1:
            raise InvalidParameterError("crash_after_ops must be >= 1")
        for name, rate in (("read_error_rate", read_error_rate),
                           ("bitflip_rate", bitflip_rate),
                           ("read_delay_rate", read_delay_rate)):
            if not 0.0 <= rate < 1.0:
                raise InvalidParameterError(
                    f"{name} must be in [0, 1), got {rate}")
        if read_delay_seconds < 0:
            raise InvalidParameterError(
                f"read_delay_seconds must be >= 0, got {read_delay_seconds}")
        self.rng = random.Random(seed)  # guarded-by: lock
        self.crash_after_ops = crash_after_ops
        self.torn_writes = torn_writes
        self.read_error_schedule = frozenset(read_error_schedule)
        self.read_error_rate = read_error_rate
        self.bitflip_rate = bitflip_rate
        self.read_delay_seconds = read_delay_seconds
        self.read_delay_rate = read_delay_rate
        self.mutation_ops = 0  # guarded-by: lock
        self.read_ops = 0  # guarded-by: lock
        self.crashed = False  # guarded-by: lock
        self.lock = threading.Lock()


def inject_read_faults(plan: FaultPlan,
                       fetch: Callable[[], Any]) -> Any:
    """Run one read operation under ``plan``'s read-fault schedule.

    Counts the read, raises a transient ``OSError`` when the schedule
    or rate says so, injects the optional slow-read delay, calls
    ``fetch`` for the actual bytes, and applies the bit-flip lottery
    to the result.  Shared by :class:`FaultyFile` (v2 file reads) and
    :class:`FaultInjectingMmapPageStore` (v3 mapped reads) so both
    formats consume the plan's RNG in exactly the same order — the
    crash-consistency sweep depends on that determinism.

    A bit flip copies the payload (the on-disk/mapped bytes stay
    intact); a clean read returns ``fetch``'s result untouched, so
    zero-copy views stay zero-copy.
    """
    with plan.lock:
        plan.read_ops += 1
        read_ops = plan.read_ops
        fail = read_ops in plan.read_error_schedule \
            or (plan.read_error_rate
                and plan.rng.random() < plan.read_error_rate)
    if fail:
        _emit_fault("read_error", read_ops=read_ops)
        raise OSError("injected transient read error "
                      f"(read op {read_ops})")
    if plan.read_delay_rate:
        with plan.lock:
            delayed = plan.rng.random() < plan.read_delay_rate
        if delayed:
            _emit_fault("slow_read", read_ops=read_ops,
                        seconds=plan.read_delay_seconds)
            # Sleep outside the lock: a slow read stalls one
            # reader session, not every store sharing the plan.
            time.sleep(plan.read_delay_seconds)
    data = fetch()
    if len(data) and plan.bitflip_rate:
        with plan.lock:
            flip = plan.rng.random() < plan.bitflip_rate
            if flip:
                index = plan.rng.randrange(len(data))
                bit = 1 << plan.rng.randrange(8)
        if flip:
            flipped = bytearray(data)
            flipped[index] ^= bit
            data = bytes(flipped)
            _emit_fault("bit_flip", read_ops=read_ops)
    return data


class FaultyFile:
    """A binary file wrapper that executes a :class:`FaultPlan`.

    Mutating operations (``write``, ``fsync``) advance the plan's
    mutation counter and may trigger the scheduled crash; reads advance
    the read counter and may raise transient errors or flip bits.
    """

    def __init__(self, raw: Any, plan: FaultPlan) -> None:
        self._raw = raw
        self.plan = plan

    # -- fault machinery ------------------------------------------------
    def _check_alive(self) -> None:
        if self.plan.crashed:
            raise SimulatedCrash("process already crashed")

    def _count_mutation(self) -> bool:
        """Advance the mutation counter; True when this op must crash."""
        self._check_alive()
        with self.plan.lock:
            self.plan.mutation_ops += 1
            if self.plan.crash_after_ops is not None \
                    and self.plan.mutation_ops >= self.plan.crash_after_ops:
                self.plan.crashed = True
                return True
        return False

    # -- mutating operations --------------------------------------------
    def write(self, data: bytes) -> int:
        if self._count_mutation():
            torn = self.plan.torn_writes and len(data) > 1
            if torn:
                with self.plan.lock:
                    prefix = self.plan.rng.randrange(1, len(data))
                self._raw.write(data[:prefix])
                self._raw.flush()
            _emit_fault("crash", operation="write",
                        mutation_ops=self.plan.mutation_ops, torn_write=torn)
            raise SimulatedCrash(
                f"crash during write of {len(data)} bytes")
        count = self._raw.write(data)
        # Push the bytes to the OS immediately: a later simulated crash
        # must freeze the file exactly as a reopening reader would see
        # it, with no data hiding in (or later leaking from) this
        # process's userspace buffer.
        self._raw.flush()
        return count

    def fsync(self) -> None:
        if self._count_mutation():
            _emit_fault("crash", operation="fsync",
                        mutation_ops=self.plan.mutation_ops)
            raise SimulatedCrash("crash during fsync")
        self._raw.flush()
        os.fsync(self._raw.fileno())

    def truncate(self, size: int | None = None) -> int:
        if self._count_mutation():
            _emit_fault("crash", operation="truncate",
                        mutation_ops=self.plan.mutation_ops)
            raise SimulatedCrash("crash during truncate")
        return self._raw.truncate(size)

    # -- reads -----------------------------------------------------------
    def read(self, size: int = -1) -> bytes:
        self._check_alive()
        data: bytes = inject_read_faults(self.plan,
                                         lambda: self._raw.read(size))
        return data

    # -- passthrough ------------------------------------------------------
    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        self._check_alive()
        return self._raw.seek(offset, whence)

    def tell(self) -> int:
        return self._raw.tell()

    def flush(self) -> None:
        self._check_alive()
        self._raw.flush()

    def fileno(self) -> int:
        return self._raw.fileno()

    def close(self) -> None:
        self._raw.close()

    @property
    def closed(self) -> bool:
        return self._raw.closed


class FaultInjectingPageStore(FilePageStore):
    """A :class:`FilePageStore` whose file IO runs through a
    :class:`FaultPlan`.

    Construction itself performs file operations (header reads or the
    initial superblock write), so an aggressive enough plan can crash
    the store before it is ever usable — exactly like a real process.
    """

    def __init__(self, path: str | os.PathLike, buffer_pages: int = 256,
                 *, plan: FaultPlan | None = None,
                 readonly: bool = False) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        super().__init__(path, buffer_pages, readonly=readonly)

    def _wrap_file(self, stream: Any) -> Any:
        return FaultyFile(stream, self.plan)


class FaultInjectingMmapPageStore(MmapPageStore):
    """A v3 :class:`MmapPageStore` whose IO runs through a
    :class:`FaultPlan`.

    Writes (and the fsync commit barrier) go through
    :class:`FaultyFile` exactly as in the v2 store, so crash points
    land on the same mutation schedule.  Reads are served from the
    mapping, not the file handle, so the read-fault schedule is
    applied at the :meth:`_mapped_read` hook instead — transient
    errors, slow reads, and bit flips all hit the zero-copy path.
    """

    def __init__(self, path: str | os.PathLike, buffer_pages: int = 256,
                 *, plan: FaultPlan | None = None,
                 readonly: bool = False) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        super().__init__(path, buffer_pages, readonly=readonly)

    def _wrap_file(self, stream: Any) -> Any:
        return FaultyFile(stream, self.plan)

    def _mapped_read(self, offset: int, size: int) -> bytes | memoryview:
        if self.plan.crashed:
            raise SimulatedCrash("process already crashed")
        result: bytes | memoryview = inject_read_faults(
            self.plan,
            lambda: MmapPageStore._mapped_read(self, offset, size))
        return result


def fault_injecting_store(path: str | os.PathLike, *,
                          plan: FaultPlan | None = None,
                          buffer_pages: int = 256,
                          readonly: bool = False) -> PageFileBase:
    """Open an existing page file of either format with fault injection
    mounted — the chaos-harness counterpart of
    :func:`~repro.index.pagestore.open_page_store`."""
    version = sniff_page_format(path)
    if version == 2:
        return FaultInjectingPageStore(path, buffer_pages, plan=plan,
                                       readonly=readonly)
    return FaultInjectingMmapPageStore(path, buffer_pages, plan=plan,
                                       readonly=readonly)


def corrupt_page(path: str | os.PathLike, page_id: int, *,
                 seed: int = 0) -> int:
    """Flip one bit inside the committed record of ``page_id``.

    Opens the page file read-only (either format) to find the record,
    then flips a random bit of its payload in place.  Returns the
    absolute file offset of the corrupted byte.  Raises
    :class:`StorageError` when the page has no committed record.
    """
    store = open_page_store(path, readonly=True)
    try:
        location = store._offsets.get(page_id)
    finally:
        store.close()
    if location is None:
        raise StorageError(f"page {page_id} has no committed record")
    offset, size = location
    rng = random.Random(seed)
    target = offset + _RECORD.size + rng.randrange(size - _RECORD.size)
    with open(os.fspath(path), "r+b") as stream:
        stream.seek(target)
        byte = stream.read(1)[0]
        stream.seek(target)
        stream.write(bytes([byte ^ (1 << rng.randrange(8))]))
    return target
