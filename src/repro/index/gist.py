"""Generalized Search Tree (GiST) with R-tree and B-tree key classes.

The original WALRUS stored its region index in the libGiST C++ library
— "a template index structure that makes it easy to implement any type
of hierarchical access method … prepackaged with a B-tree and an R-tree
extension" (Section 6.1).  This module reproduces that substrate: a
height-balanced tree parameterized by a *key class* supplying the four
GiST methods (Hellerstein, Naughton & Pfeffer, VLDB '95):

* ``consistent(predicate, query)`` — may the subtree contain matches?
* ``union(predicates)`` — the bounding predicate of a node;
* ``penalty(predicate, new)`` — cost of routing ``new`` under
  ``predicate`` (drives ChooseSubtree);
* ``pick_split(predicates)`` — partition an overflowing node.

Instantiations provided:

* :class:`RTreeKey` — Guttman R-tree semantics over :class:`Rect`
  (union = MBR, penalty = area enlargement, quadratic split);
* :class:`BTreeKey` — 1-D interval keys over ordered scalars (union =
  span, penalty = span growth, split = sort-and-halve), giving
  B+-tree-like range search.

The production index used by WALRUS itself is the tuned
:class:`~repro.index.rstar.RStarTree`; the GiST exists because the
paper's infrastructure had it, and it doubles as a reference
implementation the R*-tree's results are tested against.

Nodes live in a :class:`~repro.index.storage.PageStore`, like the
R*-tree's, so the GiST can also be disk-backed.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.exceptions import SpatialIndexError
from repro.index.geometry import Rect
from repro.index.pagestore import MemoryPageStore, PageStore


class KeyClass:
    """The four extension methods a GiST needs (plus an equality used
    by deletion).  Predicates are opaque to the tree."""

    def consistent(self, predicate: Any, query: Any) -> bool:
        """True if a subtree bounded by ``predicate`` may contain
        entries matching ``query``."""
        raise NotImplementedError

    def union(self, predicates: list[Any]) -> Any:
        """The smallest predicate covering all of ``predicates``."""
        raise NotImplementedError

    def penalty(self, predicate: Any, new: Any) -> float:
        """Cost of inserting ``new`` into a subtree bounded by
        ``predicate``; insertion descends along minimal penalty."""
        raise NotImplementedError

    def pick_split(self, predicates: list[Any]) -> tuple[list[int],
                                                         list[int]]:
        """Partition entry indices into two non-empty groups."""
        raise NotImplementedError

    def same(self, first: Any, second: Any) -> bool:
        """Predicate equality (used by delete)."""
        return bool(first == second)


class RTreeKey(KeyClass):
    """Guttman R-tree semantics over :class:`Rect` predicates."""

    def consistent(self, predicate: Rect, query: Rect) -> bool:
        return predicate.intersects(query)

    def union(self, predicates: list[Rect]) -> Rect:
        return Rect.union_of(predicates)

    def penalty(self, predicate: Rect, new: Rect) -> float:
        return predicate.enlargement(new)

    def pick_split(self, predicates: list[Rect]
                   ) -> tuple[list[int], list[int]]:
        """Guttman's quadratic split."""
        count = len(predicates)
        worst = None
        seeds = (0, 1)
        for i in range(count):
            for j in range(i + 1, count):
                dead_space = (predicates[i].union(predicates[j]).area
                              - predicates[i].area - predicates[j].area)
                if worst is None or dead_space > worst:
                    worst = dead_space
                    seeds = (i, j)
        left = [seeds[0]]
        right = [seeds[1]]
        left_mbr = predicates[seeds[0]]
        right_mbr = predicates[seeds[1]]
        for index in range(count):
            if index in seeds:
                continue
            grow_left = left_mbr.enlargement(predicates[index])
            grow_right = right_mbr.enlargement(predicates[index])
            if grow_left < grow_right or (
                    grow_left == grow_right and len(left) <= len(right)):
                left.append(index)
                left_mbr = left_mbr.union(predicates[index])
            else:
                right.append(index)
                right_mbr = right_mbr.union(predicates[index])
        return left, right

    def same(self, first: Rect, second: Rect) -> bool:
        return first == second


class BTreeKey(KeyClass):
    """1-D interval predicates over ordered scalar keys.

    Leaf predicates are degenerate intervals ``(k, k)``; internal
    predicates are ``(low, high)`` spans.  Range queries pass an
    ``(low, high)`` tuple; point queries a degenerate one.
    """

    def consistent(self, predicate: tuple[Any, Any],
                   query: tuple[Any, Any]) -> bool:
        return predicate[0] <= query[1] and query[0] <= predicate[1]

    def union(self, predicates: list[tuple[Any, Any]]) -> tuple[Any, Any]:
        return (min(p[0] for p in predicates),
                max(p[1] for p in predicates))

    def penalty(self, predicate: tuple[Any, Any],
                new: tuple[Any, Any]) -> float:
        low = min(predicate[0], new[0])
        high = max(predicate[1], new[1])
        return float((high - low) - (predicate[1] - predicate[0]))

    def pick_split(self, predicates: list[tuple[Any, Any]]
                   ) -> tuple[list[int], list[int]]:
        order = sorted(range(len(predicates)),
                       key=lambda i: predicates[i])
        half = len(order) // 2
        return order[:half], order[half:]

    @staticmethod
    def key(value: Any) -> tuple[Any, Any]:
        """Degenerate interval for a scalar (leaf insertion key)."""
        return (value, value)

    @staticmethod
    def range(low: Any, high: Any) -> tuple[Any, Any]:
        """Query predicate for the closed range ``[low, high]``."""
        if low > high:
            raise SpatialIndexError("range low exceeds high")
        return (low, high)


class _GistNode:
    __slots__ = ("page_id", "level", "predicates", "payloads")

    def __init__(self, page_id: int, level: int) -> None:
        self.page_id = page_id
        self.level = level
        self.predicates: list[Any] = []
        # child page ids (internal) or items (leaves)
        self.payloads: list[Any] = []

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def __getstate__(self) -> tuple[int, int, list[Any], list[Any]]:
        return (self.page_id, self.level, self.predicates, self.payloads)

    def __setstate__(
            self, state: tuple[int, int, list[Any], list[Any]]) -> None:
        self.page_id, self.level, self.predicates, self.payloads = state


class GiST:
    """A height-balanced generalized search tree.

    Parameters
    ----------
    key_class:
        The extension methods (e.g. :class:`RTreeKey`, :class:`BTreeKey`).
    store:
        Page store for nodes (memory by default).
    max_entries:
        Node capacity (>= 4).
    """

    def __init__(self, key_class: KeyClass, *,
                 store: PageStore | None = None,
                 max_entries: int = 32) -> None:
        if max_entries < 4:
            raise SpatialIndexError(
                f"max_entries must be >= 4, got {max_entries}")
        self.key_class = key_class
        self.store = store if store is not None else MemoryPageStore()
        self.max_entries = max_entries
        self.size = 0
        root = _GistNode(self.store.allocate(), level=0)
        self.root_id = root.page_id
        self.store.write(root.page_id, root)

    # ------------------------------------------------------------------
    def _read(self, page_id: int) -> _GistNode:
        return self.store.read(page_id)

    def _write(self, node: _GistNode) -> None:
        self.store.write(node.page_id, node)

    def height(self) -> int:
        return self._read(self.root_id).level + 1

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, predicate: Any, item: Any) -> None:
        """Insert one ``(predicate, item)`` pair."""
        split = self._insert_into(self.root_id, predicate, item)
        if split is not None:
            (left_pred, left_id), (right_pred, right_id) = split
            old_root = self._read(self.root_id)
            new_root = _GistNode(self.store.allocate(),
                                 old_root.level + 1)
            new_root.predicates = [left_pred, right_pred]
            new_root.payloads = [left_id, right_id]
            self._write(new_root)
            self.root_id = new_root.page_id
        self.size += 1

    def _insert_into(self, page_id: int, predicate: Any, item: Any
                     ) -> tuple | None:
        node = self._read(page_id)
        if node.is_leaf:
            node.predicates.append(predicate)
            node.payloads.append(item)
        else:
            index = self._choose(node, predicate)
            split = self._insert_into(node.payloads[index], predicate,
                                      item)
            if split is None:
                node.predicates[index] = self.key_class.union(
                    [node.predicates[index], predicate])
            else:
                (left_pred, left_id), (right_pred, right_id) = split
                node.predicates[index] = left_pred
                node.payloads[index] = left_id
                node.predicates.insert(index + 1, right_pred)
                node.payloads.insert(index + 1, right_id)
        if len(node.predicates) > self.max_entries:
            return self._split(node)
        self._write(node)
        return None

    def _choose(self, node: _GistNode, predicate: Any) -> int:
        penalties = [self.key_class.penalty(p, predicate)
                     for p in node.predicates]
        return int(np.argmin(penalties))

    def _split(self, node: _GistNode
               ) -> tuple[tuple[Any, int], tuple[Any, int]]:
        left_idx, right_idx = self.key_class.pick_split(node.predicates)
        if not left_idx or not right_idx:
            raise SpatialIndexError("pick_split produced an empty group")
        sibling = _GistNode(self.store.allocate(), node.level)
        sibling.predicates = [node.predicates[i] for i in right_idx]
        sibling.payloads = [node.payloads[i] for i in right_idx]
        node.predicates = [node.predicates[i] for i in left_idx]
        node.payloads = [node.payloads[i] for i in left_idx]
        self._write(node)
        self._write(sibling)
        left_pred = self.key_class.union(node.predicates)
        right_pred = self.key_class.union(sibling.predicates)
        return ((left_pred, node.page_id), (right_pred, sibling.page_id))

    # ------------------------------------------------------------------
    # Search / delete / scan
    # ------------------------------------------------------------------
    def search(self, query: Any) -> list[Any]:
        """Items whose predicates are consistent with ``query``."""
        results: list[Any] = []
        stack = [self.root_id]
        while stack:
            node = self._read(stack.pop())
            for predicate, payload in zip(node.predicates, node.payloads):
                if not self.key_class.consistent(predicate, query):
                    continue
                if node.is_leaf:
                    results.append(payload)
                else:
                    stack.append(payload)
        return results

    def delete(self, predicate: Any, item: Any) -> int:
        """Delete leaf entries with equal predicate and item.

        GiST deletion here is the simple variant: entries are removed
        and ancestor predicates are left (valid but possibly loose);
        they re-tighten as unions are recomputed on later splits.
        Returns the number of entries removed.
        """
        removed = self._delete_from(self.root_id, predicate, item)
        self.size -= removed
        return removed

    def _delete_from(self, page_id: int, predicate: Any,
                     item: Any) -> int:
        node = self._read(page_id)
        removed = 0
        if node.is_leaf:
            kept_preds = []
            kept_items = []
            for p, payload in zip(node.predicates, node.payloads):
                if self.key_class.same(p, predicate) and payload == item:
                    removed += 1
                else:
                    kept_preds.append(p)
                    kept_items.append(payload)
            node.predicates = kept_preds
            node.payloads = kept_items
            self._write(node)
            return removed
        for p, child in zip(node.predicates, node.payloads):
            if self.key_class.consistent(p, predicate):
                removed += self._delete_from(child, predicate, item)
        return removed

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Yield every ``(predicate, item)`` pair."""
        stack = [self.root_id]
        while stack:
            node = self._read(stack.pop())
            for predicate, payload in zip(node.predicates, node.payloads):
                if node.is_leaf:
                    yield predicate, payload
                else:
                    stack.append(payload)

    def check_invariants(self) -> None:
        """Uniform leaf depth, capacity bounds, predicates cover
        children."""
        counted = self._check(self.root_id, None)
        if counted != self.size:
            raise SpatialIndexError(
                f"size mismatch: counted {counted}, recorded {self.size}")

    def _check(self, page_id: int, expect_level: int | None) -> int:
        node = self._read(page_id)
        if expect_level is not None and node.level != expect_level:
            raise SpatialIndexError(
                f"node {page_id}: level {node.level} != {expect_level}")
        if len(node.predicates) > self.max_entries:
            raise SpatialIndexError(f"node {page_id} overflows")
        if len(node.predicates) != len(node.payloads):
            raise SpatialIndexError(f"node {page_id}: ragged entries")
        if node.is_leaf:
            return len(node.predicates)
        total = 0
        for predicate, child_id in zip(node.predicates, node.payloads):
            child = self._read(child_id)
            child_union = self.key_class.union(child.predicates)
            # The parent predicate must cover the child's union: check
            # via consistency of every child predicate with the parent.
            for child_pred in child.predicates:
                if not self.key_class.consistent(predicate, child_pred):
                    raise SpatialIndexError(
                        f"node {page_id}: predicate does not cover "
                        f"child {child_id}")
            del child_union
            total += self._check(child_id, node.level - 1)
        return total
