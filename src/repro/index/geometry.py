"""Axis-aligned n-dimensional rectangles for the R*-tree.

Region signatures in WALRUS are points (cluster centroids) or boxes
(bounding boxes of window signatures) in a ``3 * s^2``-dimensional
feature space; both are represented as :class:`Rect` (a point is a
degenerate box).  All geometry the R*-tree needs — hypervolume, margin,
enlargement, overlap, min-distance — lives here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import SpatialIndexError


class Rect:
    """An immutable axis-aligned box ``[lower, upper]`` in d dimensions."""

    __slots__ = ("lower", "upper")

    def __init__(self, lower: np.ndarray, upper: np.ndarray) -> None:
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        if lower.ndim != 1 or lower.shape != upper.shape:
            raise SpatialIndexError(
                f"bounds must be equal-length vectors, got {lower.shape} "
                f"and {upper.shape}"
            )
        if np.any(lower > upper):
            raise SpatialIndexError("lower bound exceeds upper bound")
        lower.setflags(write=False)
        upper.setflags(write=False)
        self.lower = lower
        self.upper = upper

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _trusted(cls, lower: np.ndarray, upper: np.ndarray) -> "Rect":
        """Wrap bounds without validating or copying them.

        The zero-copy storage decode path
        (:func:`repro.index.nodecodec.decode_node`) calls this with
        float64 row views of a checksum-verified, read-only buffer —
        every ``__init__`` invariant already holds by construction, and
        re-validating ~500 rectangles per cold query would dominate
        the read cost the binary format exists to remove.
        """
        rect = cls.__new__(cls)
        rect.lower = lower
        rect.upper = upper
        return rect

    @classmethod
    def from_point(cls, point: np.ndarray) -> "Rect":
        """Degenerate box around a single point."""
        point = np.asarray(point, dtype=np.float64)
        return cls(point, point.copy())

    @classmethod
    def union_of(cls, rects: Sequence["Rect"]) -> "Rect":
        """Smallest box enclosing all ``rects``."""
        if not rects:
            raise SpatialIndexError("union of zero rectangles is undefined")
        lower = np.minimum.reduce([r.lower for r in rects])
        upper = np.maximum.reduce([r.upper for r in rects])
        return cls(lower, upper)

    # ------------------------------------------------------------------
    # Scalar measures
    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        return self.lower.shape[0]

    @property
    def extents(self) -> np.ndarray:
        """Per-dimension side lengths."""
        return self.upper - self.lower

    @property
    def area(self) -> float:
        """Hypervolume (0 for points and lower-dimensional boxes)."""
        return float(np.prod(self.extents))

    @property
    def margin(self) -> float:
        """Sum of side lengths (the R* split criterion's perimeter)."""
        return float(self.extents.sum())

    @property
    def center(self) -> np.ndarray:
        return (self.lower + self.upper) / 2.0

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def intersects(self, other: "Rect") -> bool:
        """True if the closed boxes share at least one point."""
        return bool(np.all(self.lower <= other.upper)
                    and np.all(other.lower <= self.upper))

    def contains(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this box."""
        return bool(np.all(self.lower <= other.lower)
                    and np.all(other.upper <= self.upper))

    def contains_point(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(self.lower <= point) and np.all(point <= self.upper))

    def union(self, other: "Rect") -> "Rect":
        return Rect(np.minimum(self.lower, other.lower),
                    np.maximum(self.upper, other.upper))

    def intersection_area(self, other: "Rect") -> float:
        """Hypervolume of the overlap (0 when disjoint)."""
        sides = np.minimum(self.upper, other.upper) - np.maximum(
            self.lower, other.lower)
        if np.any(sides < 0):
            return 0.0
        return float(np.prod(sides))

    def enlargement(self, other: "Rect") -> float:
        """Increase in area needed to also cover ``other``."""
        return self.union(other).area - self.area

    def expand(self, epsilon: float) -> "Rect":
        """Box grown by ``epsilon`` on every side (Definition 4.1's
        epsilon-envelope for bounding-box region signatures)."""
        if epsilon < 0:
            raise SpatialIndexError(f"epsilon must be >= 0, got {epsilon}")
        return Rect(self.lower - epsilon, self.upper + epsilon)

    def min_distance_to_point(self, point: np.ndarray) -> float:
        """Euclidean distance from ``point`` to the nearest box point."""
        point = np.asarray(point, dtype=np.float64)
        deltas = np.maximum(self.lower - point, 0.0)
        deltas = np.maximum(deltas, point - self.upper)
        return float(np.linalg.norm(deltas))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return (np.array_equal(self.lower, other.lower)
                and np.array_equal(self.upper, other.upper))

    def __hash__(self) -> int:
        return hash((self.lower.tobytes(), self.upper.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Rect({self.lower.tolist()}, {self.upper.tolist()})"
