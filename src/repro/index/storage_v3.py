"""Zero-copy v3 page format: ``mmap`` reads over fixed binary nodes.

:class:`MmapPageStore` shares every durability property of the v2
format — superblock, dual header slots, CRC32-per-record, atomic
commit, crash-safe compaction; see :mod:`repro.index.storage` — and
changes only how payloads are encoded and served:

* Page payloads are the fixed binary node layout of
  :mod:`repro.index.nodecodec` instead of pickles, so a cold node
  read performs **zero** ``pickle.loads`` calls and reconstructs
  bounding rectangles as ``np.frombuffer`` views.
* Reads come from a shared read-only ``mmap`` of the heap file, so a
  verified record's payload is never copied — the decoded node's
  arrays alias the page cache directly.
* Records are padded to 8-byte alignment so those views are aligned
  ``float64``/``int64`` arrays (unaligned numpy views work but decay
  to byte-wise access on some platforms).
* The committed offset table is a flat binary array (count +
  ``(page_id, offset, size)`` triples), stamped with the format
  version like every table (see ``_stamp_table``).

Mapping lifecycle: writes append through the ordinary (fault-
injectable) file handle, and the mapping is refreshed lazily whenever
a read lands past its end.  Superseded mappings are *retired*, not
closed, while decoded nodes may still hold views into them — a
``mmap`` with exported buffers refuses to close — and are released on
:meth:`close` once nothing references them.
"""

from __future__ import annotations

import mmap
import os
import struct
from typing import Any

from repro.exceptions import StorageError
from repro.index.nodecodec import decode_node, encode_node
from repro.index.storage import (
    _DATA_START,
    _MAGIC_V3,
    _READ_RETRIES,
    _RECORD,
    PageFileBase,
    _record_crc,
)

#: Offset-table framing: entry count, then (page_id, offset, size) each.
_TABLE_COUNT = struct.Struct("<Q")
_TABLE_ENTRY = struct.Struct("<QQQ")

#: Records are padded so every payload starts 8-byte aligned
#: (record header is 16 bytes, so aligning the record aligns the payload).
_RECORD_ALIGN = 8


class MmapPageStore(PageFileBase):
    """The v3 on-disk format: binary node records read zero-copy
    through ``mmap``.

    Only R*-tree :class:`~repro.index.node.Node` pages can be stored
    (the fixed layout is what buys the zero-copy read); storing
    anything else raises :class:`StorageError`.  The database keeps
    its catalog in the metadata blob, which is format-agnostic, so
    this restriction is invisible above the index layer.
    """

    MAGIC = _MAGIC_V3
    FORMAT_VERSION = 3

    def __init__(self, path: str | os.PathLike[str], buffer_pages: int = 256,
                 *, readonly: bool = False) -> None:
        # The mapping attributes must exist before the base constructor
        # reads the header (which lands in _read_at -> _view).
        self._map: mmap.mmap | None = None
        self._retired_maps: list[mmap.mmap] = []
        super().__init__(path, buffer_pages, readonly=readonly)

    # -- mmap lifecycle -------------------------------------------------
    def _remap(self) -> None:
        """(Re)map the current extent of the heap file.

        Pending writes are flushed first so the mapping sees them; the
        superseded mapping is retired because decoded nodes may still
        hold views into it.
        """
        if not self.readonly:
            self._file.flush()
        size = os.fstat(self._file.fileno()).st_size
        if size <= 0:
            return
        mapped = mmap.mmap(self._file.fileno(), size, access=mmap.ACCESS_READ)
        if self._map is not None:
            self._retired_maps.append(self._map)
        self._map = mapped

    def _view(self, offset: int, size: int) -> memoryview:
        """A zero-copy view of ``size`` bytes at ``offset``.

        Like ``file.read``, the view is silently short when the range
        extends past end-of-file — record verification turns that into
        a structured truncation error.
        """
        mapped = self._map
        if mapped is None or offset + size > len(mapped):
            self._remap()
            mapped = self._map
        if mapped is None:
            return memoryview(b"")
        return memoryview(mapped)[offset:offset + size]

    def _mapped_read(self, offset: int, size: int) -> bytes | memoryview:
        """Serve one read from the mapping.

        The single override point for fault injection, mirroring what
        the file wrapper is for v2 reads.
        """
        return self._view(offset, size)

    def _discard_maps(self) -> None:
        if self._map is not None:
            self._retired_maps.append(self._map)
            self._map = None

    def close(self) -> None:
        try:
            super().close()
        finally:
            self._discard_maps()
            still_referenced = []
            for mapped in self._retired_maps:
                try:
                    mapped.close()
                except BufferError:
                    # Live node views still alias this mapping; closing
                    # it would invalidate them.  Keep it; the GC frees
                    # it when the last view dies.
                    still_referenced.append(mapped)
            self._retired_maps = still_referenced

    # -- record IO ------------------------------------------------------
    def _read_at(self, offset: int, size: int,
                 what: str) -> bytes | memoryview:
        last_error: OSError | None = None
        for _ in range(_READ_RETRIES):
            try:
                return self._mapped_read(offset, size)
            except OSError as error:
                last_error = error
        raise StorageError(
            f"{self.path}: reading {what} at offset {offset} failed "
            f"after {_READ_RETRIES} attempts: {last_error}"
        ) from last_error

    def _append_record(self, page_id: int, payload: bytes) -> tuple[int, int]:
        """Append one checksummed record at the next 8-byte boundary.

        Padding and record go down in a single ``write`` call so fault
        injection still sees one mutation per append and a torn write
        cannot split the pad from its record.
        """
        header = _RECORD.pack(page_id, len(payload),
                              _record_crc(page_id, payload))
        self._file.seek(0, os.SEEK_END)
        end = max(self._file.tell(), _DATA_START)
        padding = (-end) % _RECORD_ALIGN
        self._file.seek(end)
        self._file.write(b"\0" * padding + header + payload)
        return end + padding, _RECORD.size + len(payload)

    # -- codecs ---------------------------------------------------------
    def _encode_page(self, page_id: int, page: Any) -> bytes:
        return encode_node(page)

    def _decode_page(self, page_id: int, payload: bytes | memoryview,
                     offset: int) -> Any:
        try:
            return decode_node(page_id, payload)
        except StorageError as error:
            # The checksum passed, so a decode failure is format skew —
            # add where it happened.
            raise StorageError(f"{self.path}: offset {offset}: {error}")\
                from error

    def _encode_table(self) -> bytes:
        parts = [_TABLE_COUNT.pack(len(self._offsets))]
        for page_id in sorted(self._offsets):
            record_offset, record_size = self._offsets[page_id]
            parts.append(_TABLE_ENTRY.pack(page_id, record_offset,
                                           record_size))
        return self._stamp_table(b"".join(parts))

    def _decode_table(self, payload: bytes | memoryview,
                      offset: int) -> dict[int, tuple[int, int]]:
        body = self._unstamp_table(payload, offset)
        if body is None:
            raise StorageError(
                f"{self.path}: page table at offset {offset} has no "
                "format-version stamp"
            )
        if len(body) < _TABLE_COUNT.size:
            raise StorageError(
                f"{self.path}: page table at offset {offset} is shorter "
                "than its entry count"
            )
        (count,) = _TABLE_COUNT.unpack_from(body)
        expected = _TABLE_COUNT.size + count * _TABLE_ENTRY.size
        if len(body) != expected:
            raise StorageError(
                f"{self.path}: page table at offset {offset} has "
                f"{len(body)} bytes, expected {expected} for {count} "
                "entries"
            )
        table: dict[int, tuple[int, int]] = {}
        position = _TABLE_COUNT.size
        for _ in range(count):
            page_id, record_offset, record_size = _TABLE_ENTRY.unpack_from(
                body, position)
            table[page_id] = (record_offset, record_size)
            position += _TABLE_ENTRY.size
        return table
