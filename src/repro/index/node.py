"""Node and entry records for the paged R*-tree.

Nodes are plain picklable records addressed by page id; they never hold
Python references to other nodes, only child page ids, so the same code
runs over the in-memory and the file-backed page stores.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import SpatialIndexError
from repro.index.geometry import Rect


class Entry:
    """One slot of a node: a rectangle plus either a child page id
    (internal nodes) or an opaque item (leaf nodes)."""

    __slots__ = ("rect", "child_id", "item")

    def __init__(self, rect: Rect, *, child_id: int | None = None,
                 item: Any = None) -> None:
        if (child_id is None) == (item is None):
            raise SpatialIndexError(
                "entry needs exactly one of child_id / item"
            )
        self.rect = rect
        self.child_id = child_id
        self.item = item

    def __getstate__(self) -> tuple[Rect, int | None, Any]:
        return (self.rect, self.child_id, self.item)

    def __setstate__(self, state: tuple[Rect, int | None, Any]) -> None:
        self.rect, self.child_id, self.item = state

    def __eq__(self, other: object) -> bool:
        """Structural equality (used by tree-comparison tests)."""
        if not isinstance(other, Entry):
            return NotImplemented
        return (self.rect == other.rect
                and self.child_id == other.child_id
                and self.item == other.item)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = (f"child={self.child_id}" if self.child_id is not None
                  else f"item={self.item!r}")
        return f"Entry({target})"


class Node:
    """An R*-tree node: ``level`` 0 is a leaf, the root has the highest
    level.  The node's own MBR is maintained by its parent entry; the
    root's MBR is tracked by the tree."""

    __slots__ = ("page_id", "level", "entries")

    def __init__(self, page_id: int, level: int) -> None:
        self.page_id = page_id
        self.level = level
        self.entries: list[Entry] = []

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of all entries."""
        if not self.entries:
            raise SpatialIndexError(
                f"node {self.page_id} has no entries; its MBR is undefined"
            )
        return Rect.union_of([e.rect for e in self.entries])

    def __getstate__(self) -> tuple[int, int, list[Entry]]:
        return (self.page_id, self.level, self.entries)

    def __setstate__(self, state: tuple[int, int, list[Entry]]) -> None:
        self.page_id, self.level, self.entries = state

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else f"level-{self.level}"
        return f"<Node {self.page_id} {kind} n={len(self.entries)}>"
