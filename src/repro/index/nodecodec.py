"""Fixed-layout binary codec for R*-tree nodes — the v3 page payload.

The v2 format pickles whole :class:`~repro.index.node.Node` objects,
which makes every cold node read pay a full deserialization.  The v3
format instead lays nodes out as struct-packed headers followed by
numpy-native arrays, so a reader can reconstruct a node with three
``np.frombuffer`` calls over an ``mmap``\\ ed region — the bounding
rectangles become *zero-copy views* into the page file.

Payload layout (little-endian), immediately after the record header:

====================  =================================================
``int32  level``      0 for a leaf, >0 for an internal node
``uint32 count``      number of entries
``uint32 dims``       dimensionality ``d`` shared by every rectangle
``4 bytes padding``   reserved; keeps the arrays 8-byte aligned
``float64[count*d]``  entry lower bounds, row-major
``float64[count*d]``  entry upper bounds, row-major
then, for a leaf:
``int64[count*2]``    ``(image_id, region_index)`` per entry
or, for an internal node:
``uint64[count]``     child page ids
====================  =================================================

The record CRC32 (see :mod:`repro.index.storage`) covers the whole
payload, so decode only runs on verified bytes; a length or layout
mismatch after a passing checksum means format skew and raises
:class:`StorageError`.

:func:`decode_node` returns entries whose :class:`Rect` bounds are
read-only views of the given buffer.  When that buffer is an ``mmap``
the node costs no payload copy at all; the store keeps the mapping
alive for as long as any view can reference it.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.exceptions import StorageError
from repro.index.geometry import Rect
from repro.index.node import Entry, Node

#: level, count, dims, 4 bytes padding (16 bytes).
_NODE_HEADER = struct.Struct("<iII4x")

_BOUND_DTYPE = np.dtype("<f8")
_ITEM_DTYPE = np.dtype("<i8")
_CHILD_DTYPE = np.dtype("<u8")


def encode_node(node: object) -> bytes:
    """Serialize ``node`` into the v3 fixed binary layout.

    Leaf items must be ``(image_id, region_index)`` pairs of Python
    ints — the only item shape the database writes — because the
    layout stores them as two ``int64`` columns.  Anything else raises
    :class:`StorageError` (use the v2 format for arbitrary payloads).
    """
    if not isinstance(node, Node):
        raise StorageError(
            "v3 page files store R*-tree nodes only, got "
            f"{type(node).__name__}; use the v2 format for arbitrary "
            "picklable pages"
        )
    entries = node.entries
    count = len(entries)
    dims = int(entries[0].rect.lower.shape[0]) if count else 0
    parts = [_NODE_HEADER.pack(node.level, count, dims)]
    if not count:
        return parts[0]
    lowers = np.empty((count, dims), dtype=_BOUND_DTYPE)
    uppers = np.empty((count, dims), dtype=_BOUND_DTYPE)
    for index, entry in enumerate(entries):
        rect = entry.rect
        if rect.lower.shape[0] != dims:
            raise StorageError(
                f"node {node.page_id}: entry {index} has "
                f"{rect.lower.shape[0]} dimensions, the node's first "
                f"entry has {dims}"
            )
        lowers[index] = rect.lower
        uppers[index] = rect.upper
    parts.append(lowers.tobytes())
    parts.append(uppers.tobytes())
    if node.is_leaf:
        items = np.empty((count, 2), dtype=_ITEM_DTYPE)
        for index, entry in enumerate(entries):
            item = entry.item
            if (not isinstance(item, tuple) or len(item) != 2 or not all(
                    isinstance(part, int) and not isinstance(part, bool)
                    for part in item)):
                raise StorageError(
                    f"node {node.page_id}: leaf entry {index} item must "
                    f"be an (image_id, region_index) pair of ints, got "
                    f"{item!r}"
                )
            items[index, 0] = item[0]
            items[index, 1] = item[1]
        parts.append(items.tobytes())
    else:
        children = np.empty(count, dtype=_CHILD_DTYPE)
        for index, entry in enumerate(entries):
            if entry.child_id is None:  # pragma: no cover - Node forbids it
                raise StorageError(
                    f"node {node.page_id}: internal entry {index} has no "
                    "child id"
                )
            children[index] = entry.child_id
        parts.append(children.tobytes())
    return b"".join(parts)


def decode_node(page_id: int, payload: bytes | memoryview) -> Node:
    """Rebuild a :class:`Node` from a v3 payload, zero-copy.

    Every entry's :class:`Rect` bounds are read-only ``frombuffer``
    views of ``payload``; nothing numeric is copied.  Leaf items come
    back as plain Python-int tuples, bit-identical to what
    :func:`encode_node` consumed.
    """
    if len(payload) < _NODE_HEADER.size:
        raise StorageError(
            f"page {page_id}: node payload of {len(payload)} bytes is "
            f"shorter than the {_NODE_HEADER.size}-byte node header"
        )
    level, count, dims = _NODE_HEADER.unpack_from(payload)
    if level < 0:
        raise StorageError(f"page {page_id}: negative node level {level}")
    if count and not dims:
        raise StorageError(
            f"page {page_id}: {count} entries with zero dimensions")
    bounds = count * dims
    per_entry_tail = 2 * _ITEM_DTYPE.itemsize if level == 0 \
        else _CHILD_DTYPE.itemsize
    expected = (_NODE_HEADER.size + 2 * bounds * _BOUND_DTYPE.itemsize
                + count * per_entry_tail)
    if len(payload) != expected:
        raise StorageError(
            f"page {page_id}: node payload has {len(payload)} bytes, "
            f"expected {expected} (level {level}, {count} entries, "
            f"{dims} dims)"
        )
    node = Node(page_id, level)
    if not count:
        return node
    offset = _NODE_HEADER.size
    lowers = np.frombuffer(payload, dtype=_BOUND_DTYPE, count=bounds,
                           offset=offset).reshape(count, dims)
    offset += bounds * _BOUND_DTYPE.itemsize
    uppers = np.frombuffer(payload, dtype=_BOUND_DTYPE, count=bounds,
                           offset=offset).reshape(count, dims)
    offset += bounds * _BOUND_DTYPE.itemsize
    entries = node.entries
    if level == 0:
        items = np.frombuffer(payload, dtype=_ITEM_DTYPE, count=count * 2,
                              offset=offset).reshape(count, 2).tolist()
        for index, (image_id, region_index) in enumerate(items):
            entries.append(Entry(
                Rect._trusted(lowers[index], uppers[index]),
                item=(image_id, region_index)))
    else:
        children = np.frombuffer(payload, dtype=_CHILD_DTYPE,
                                 count=count, offset=offset).tolist()
        for index, child_id in enumerate(children):
            entries.append(Entry(
                Rect._trusted(lowers[index], uppers[index]),
                child_id=child_id))
    return node
