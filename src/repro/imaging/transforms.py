"""Image perturbations for robustness experiments.

Section 1 claims WALRUS is "robust with respect to resolution changes,
dithering effects, color shifts, orientation, size, and location".
These transforms produce perturbed copies of an image so the
robustness harness (``benchmarks/run_robustness.py``) can measure how
retrieval degrades under each.  All are pure functions of the input
(plus an explicit RNG for the stochastic ones).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ImageFormatError
from repro.imaging.image import Image


def _require_rgb(image: Image, operation: str) -> None:
    if image.color_space != "rgb":
        raise ImageFormatError(f"{operation} expects an RGB image, "
                               f"got {image.color_space}")


def color_shift(image: Image, delta: tuple[float, float, float]) -> Image:
    """Add a constant per-channel offset (clipping to [0, 1]).

    Models global illumination / white-balance changes; wavelet detail
    coefficients are invariant to it, only averages move.
    """
    _require_rgb(image, "color_shift")
    shifted = np.clip(image.pixels + np.asarray(delta), 0.0, 1.0)
    return Image(shifted, "rgb", image.name)


def brightness(image: Image, factor: float) -> Image:
    """Multiply all channels by ``factor`` (clipping to [0, 1])."""
    if factor < 0:
        raise ImageFormatError("brightness factor must be >= 0")
    _require_rgb(image, "brightness")
    return Image(np.clip(image.pixels * factor, 0.0, 1.0), "rgb",
                 image.name)


def dither_noise(image: Image, rng: np.random.Generator,
                 amplitude: float = 1.0 / 255.0) -> Image:
    """Uniform noise at quantization scale — a dithering stand-in."""
    _require_rgb(image, "dither_noise")
    noise = rng.uniform(-amplitude, amplitude, image.pixels.shape)
    return Image(np.clip(image.pixels + noise, 0.0, 1.0), "rgb",
                 image.name)


def rescale(image: Image, factor: float) -> Image:
    """Resample the whole image by ``factor`` (resolution change)."""
    if factor <= 0:
        raise ImageFormatError("rescale factor must be positive")
    height = max(1, int(round(image.height * factor)))
    width = max(1, int(round(image.width * factor)))
    return image.resize(height, width)


def flip_horizontal(image: Image) -> Image:
    """Mirror left-right (an orientation change)."""
    return Image(np.ascontiguousarray(image.pixels[:, ::-1]),
                 image.color_space, image.name)


def flip_vertical(image: Image) -> Image:
    """Mirror top-bottom."""
    return Image(np.ascontiguousarray(image.pixels[::-1]),
                 image.color_space, image.name)


def rotate90(image: Image, turns: int = 1) -> Image:
    """Rotate by multiples of 90 degrees counter-clockwise."""
    rotated = np.rot90(image.pixels, k=turns % 4, axes=(0, 1))
    return Image(np.ascontiguousarray(rotated), image.color_space,
                 image.name)


def translate_content(image: Image, dy: int, dx: int,
                      fill: tuple[float, ...] | float = 0.0) -> Image:
    """Shift the pixel content by ``(dy, dx)``, filling vacated space.

    Unlike ``np.roll`` this does not wrap around — content leaving the
    frame is lost, as with a real camera pan.
    """
    out = np.empty_like(image.pixels)
    out[:] = fill
    h, w = image.height, image.width
    src_rows = slice(max(0, -dy), min(h, h - dy))
    src_cols = slice(max(0, -dx), min(w, w - dx))
    dst_rows = slice(max(0, dy), min(h, h + dy))
    dst_cols = slice(max(0, dx), min(w, w + dx))
    out[dst_rows, dst_cols] = image.pixels[src_rows, src_cols]
    return Image(np.clip(out, 0.0, 1.0), image.color_space, image.name)


def quantize(image: Image, levels: int) -> Image:
    """Reduce each channel to ``levels`` distinct values
    (posterization / aggressive palette reduction)."""
    if levels < 2:
        raise ImageFormatError("need at least 2 quantization levels")
    steps = np.floor(image.pixels * levels).clip(0, levels - 1)
    return Image(steps / (levels - 1), image.color_space, image.name)
