"""Result montages: the contact sheets of the paper's Figures 7 and 8.

The paper presents retrieval results as a grid: the query image first,
then the top-14 matches in rank order.  :func:`montage` renders the
same artifact from a list of images so the benchmark harness can write
``fig7.ppm`` / ``fig8.ppm`` files that are directly comparable to the
paper's figures.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ImageFormatError
from repro.imaging.image import Image

#: Default cell the paper's thumbnails roughly correspond to.
DEFAULT_CELL = (96, 128)


def _label_strip(width: int, intensity: float) -> np.ndarray:
    """A thin horizontal strip used to visually separate rows."""
    return np.full((2, width, 3), intensity)


def montage(images: list[Image], *, columns: int = 5,
            cell: tuple[int, int] = DEFAULT_CELL,
            padding: int = 4,
            background: float = 1.0,
            highlight_first: bool = True) -> Image:
    """Arrange ``images`` into a rank-ordered grid.

    Parameters
    ----------
    images:
        Query first, then matches best-first (as in Figures 7/8).
    columns:
        Grid width (the paper uses 5).
    cell:
        ``(height, width)`` every image is resized into.
    padding:
        Pixels of background between cells.
    background:
        Gray level of the sheet.
    highlight_first:
        Draw a border around the first image (the query).

    Returns an RGB :class:`Image`.
    """
    if not images:
        raise ImageFormatError("montage needs at least one image")
    if columns < 1:
        raise ImageFormatError("columns must be >= 1")
    cell_h, cell_w = cell
    if cell_h < 8 or cell_w < 8:
        raise ImageFormatError("cells must be at least 8x8")
    rows = -(-len(images) // columns)
    height = rows * cell_h + (rows + 1) * padding
    width = columns * cell_w + (columns + 1) * padding
    sheet = np.full((height, width, 3), float(background))

    for index, image in enumerate(images):
        if image.color_space != "rgb":
            raise ImageFormatError(
                f"montage expects RGB images, got {image.color_space} "
                f"at position {index}"
            )
        row, col = divmod(index, columns)
        top = padding + row * (cell_h + padding)
        left = padding + col * (cell_w + padding)
        thumb = image.resize(cell_h, cell_w).pixels.copy()
        if highlight_first and index == 0:
            thumb[:3, :] = (0.9, 0.1, 0.1)
            thumb[-3:, :] = (0.9, 0.1, 0.1)
            thumb[:, :3] = (0.9, 0.1, 0.1)
            thumb[:, -3:] = (0.9, 0.1, 0.1)
        sheet[top:top + cell_h, left:left + cell_w] = thumb

    return Image(np.clip(sheet, 0.0, 1.0), "rgb", "montage")


def result_sheet(query: Image, matches: list[Image], *,
                 columns: int = 5,
                 cell: tuple[int, int] = DEFAULT_CELL) -> Image:
    """The exact Figures 7/8 artifact: query + ranked matches."""
    return montage([query, *matches], columns=columns, cell=cell)
