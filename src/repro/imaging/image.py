"""Image container used throughout the library.

The paper's WALRUS implementation leaned on ImageMagick for decoding,
resizing and color-space conversion.  This module provides the equivalent
in-process substrate: a thin, validated wrapper around a ``float64``
numpy array in the range ``[0, 1]`` with explicit color-space tagging.

Design notes
------------
* Pixel values are stored as floats in ``[0, 1]``.  The paper's epsilon
  values (0.05-0.09) only make sense against normalized intensities, so
  normalization happens at construction time, not inside the algorithms.
* The array layout is ``(height, width, channels)`` with ``channels`` in
  {1, 3}.  Coordinates in the public API follow numpy order: ``[row,
  column]`` a.k.a. ``[y, x]``.
* Images are immutable by convention: operations return new instances.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import ImageFormatError

#: Color spaces understood by the library.  ``ycc`` is ITU-R BT.601
#: YCbCr (the "YCC" of the paper), ``yiq`` the NTSC space used by
#: Jacobs et al., ``hsv`` the hexcone model.
COLOR_SPACES = ("rgb", "ycc", "yiq", "hsv", "gray")


def _validate_pixels(pixels: np.ndarray) -> np.ndarray:
    if not isinstance(pixels, np.ndarray):
        raise ImageFormatError(f"expected ndarray, got {type(pixels).__name__}")
    if pixels.ndim == 2:
        pixels = pixels[:, :, np.newaxis]
    if pixels.ndim != 3:
        raise ImageFormatError(f"expected 2-D or 3-D array, got {pixels.ndim}-D")
    if pixels.shape[2] not in (1, 3):
        raise ImageFormatError(
            f"expected 1 or 3 channels, got {pixels.shape[2]}"
        )
    if pixels.shape[0] == 0 or pixels.shape[1] == 0:
        raise ImageFormatError("image has zero height or width")
    return pixels.astype(np.float64, copy=False)


class Image:
    """An immutable image: float pixels in ``[0, 1]``, tagged color space.

    Parameters
    ----------
    pixels:
        ``(H, W, C)`` or ``(H, W)`` array.  Integer arrays are assumed to
        be 8-bit and divided by 255; float arrays must already lie in
        ``[0, 1]``.
    color_space:
        One of :data:`COLOR_SPACES`.  Gray images must use ``"gray"``.
    name:
        Optional identifier (file stem, dataset id) carried through the
        pipeline and reported in query results.
    """

    __slots__ = ("pixels", "color_space", "name")

    def __init__(self, pixels: np.ndarray, color_space: str = "rgb",
                 name: str = "") -> None:
        raw = np.asarray(pixels)
        is_integer = np.issubdtype(raw.dtype, np.integer)
        pixels = _validate_pixels(raw)
        if is_integer:
            pixels = pixels / 255.0
        if color_space not in COLOR_SPACES:
            raise ImageFormatError(
                f"unknown color space {color_space!r}; "
                f"expected one of {COLOR_SPACES}"
            )
        if color_space == "gray" and pixels.shape[2] != 1:
            raise ImageFormatError("gray images must have a single channel")
        if color_space != "gray" and pixels.shape[2] != 3:
            raise ImageFormatError(
                f"{color_space} images must have 3 channels, "
                f"got {pixels.shape[2]}"
            )
        lo, hi = float(pixels.min()), float(pixels.max())
        if lo < -1e-9 or hi > 1.0 + 1e-9:
            raise ImageFormatError(
                f"float pixels must lie in [0, 1]; got range [{lo}, {hi}]"
            )
        pixels = np.clip(pixels, 0.0, 1.0)
        pixels.setflags(write=False)
        self.pixels = pixels
        self.color_space = color_space
        self.name = name

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of pixel rows."""
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        """Number of pixel columns."""
        return int(self.pixels.shape[1])

    @property
    def channels(self) -> int:
        """Number of color channels (1 or 3)."""
        return int(self.pixels.shape[2])

    @property
    def shape(self) -> tuple[int, int, int]:
        """``(height, width, channels)``."""
        return (self.height, self.width, self.channels)

    @property
    def area(self) -> int:
        """Number of pixels (``height * width``)."""
        return self.height * self.width

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_name(self, name: str) -> "Image":
        """Return the same image carrying a different ``name``."""
        return Image(self.pixels, self.color_space, name)

    def crop(self, top: int, left: int, height: int, width: int) -> "Image":
        """Return the ``height x width`` sub-image rooted at ``(top, left)``."""
        if top < 0 or left < 0 or height <= 0 or width <= 0:
            raise ImageFormatError("crop window must be positive and in-bounds")
        if top + height > self.height or left + width > self.width:
            raise ImageFormatError(
                f"crop {height}x{width}@({top},{left}) exceeds "
                f"image {self.height}x{self.width}"
            )
        return Image(self.pixels[top:top + height, left:left + width],
                     self.color_space, self.name)

    def resize(self, height: int, width: int) -> "Image":
        """Resize with bilinear interpolation (pure numpy).

        Used by the synthetic dataset generator to scale objects and by
        examples to normalize inputs; matches what the paper did with
        ImageMagick's resize.
        """
        if height <= 0 or width <= 0:
            raise ImageFormatError("target size must be positive")
        if (height, width) == (self.height, self.width):
            return self
        src = self.pixels
        # Sample positions of target pixel centers in source coordinates.
        ys = (np.arange(height) + 0.5) * self.height / height - 0.5
        xs = (np.arange(width) + 0.5) * self.width / width - 0.5
        ys = np.clip(ys, 0, self.height - 1)
        xs = np.clip(xs, 0, self.width - 1)
        y0 = np.floor(ys).astype(int)
        x0 = np.floor(xs).astype(int)
        y1 = np.minimum(y0 + 1, self.height - 1)
        x1 = np.minimum(x0 + 1, self.width - 1)
        wy = (ys - y0)[:, None, None]
        wx = (xs - x0)[None, :, None]
        top = src[y0][:, x0] * (1 - wx) + src[y0][:, x1] * wx
        bottom = src[y1][:, x0] * (1 - wx) + src[y1][:, x1] * wx
        out = top * (1 - wy) + bottom * wy
        return Image(out, self.color_space, self.name)

    def pad_to(self, height: int, width: int, value: float = 0.0) -> "Image":
        """Pad with a constant on the bottom/right to reach the target size."""
        if height < self.height or width < self.width:
            raise ImageFormatError("pad_to target must not shrink the image")
        out = np.full((height, width, self.channels), value, dtype=np.float64)
        out[: self.height, : self.width] = self.pixels
        return Image(out, self.color_space, self.name)

    def to_gray(self) -> "Image":
        """Collapse to a single luminance channel (BT.601 weights)."""
        if self.channels == 1:
            return self
        if self.color_space != "rgb":
            raise ImageFormatError(
                "to_gray expects an RGB image; convert color spaces first"
            )
        weights = np.array([0.299, 0.587, 0.114])
        gray = self.pixels @ weights
        return Image(gray[:, :, np.newaxis], "gray", self.name)

    def channel(self, index: int) -> np.ndarray:
        """Return channel ``index`` as a 2-D ``(H, W)`` float array."""
        if not 0 <= index < self.channels:
            raise ImageFormatError(
                f"channel {index} out of range for {self.channels}-channel image"
            )
        return self.pixels[:, :, index]

    def channels_iter(self) -> Iterable[np.ndarray]:
        """Yield each channel as a 2-D array, in order."""
        for c in range(self.channels):
            yield self.pixels[:, :, c]

    # ------------------------------------------------------------------
    # Equality helpers (numpy arrays defeat dataclass __eq__)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return (
            self.color_space == other.color_space
            and self.shape == other.shape
            and bool(np.array_equal(self.pixels, other.pixels))
        )

    def __hash__(self) -> int:
        return hash((self.color_space, self.shape, self.pixels.tobytes()))

    def allclose(self, other: "Image", atol: float = 1e-9) -> bool:
        """Approximate pixel equality, ignoring names."""
        return (
            self.color_space == other.color_space
            and self.shape == other.shape
            and bool(np.allclose(self.pixels, other.pixels, atol=atol))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Image{label} {self.height}x{self.width} "
            f"{self.color_space} c={self.channels}>"
        )
