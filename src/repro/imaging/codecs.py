"""Pure-Python image codecs: PPM/PGM (ASCII + binary) and 24-bit BMP.

The paper used ImageMagick to read JPEGs from the ``misc`` collection.
This environment has neither ImageMagick nor a JPEG decoder, so the
library speaks the simple, self-describing netpbm formats (P2/P3/P5/P6)
plus uncompressed 24-bit Windows BMP.  The synthetic dataset and all
examples round-trip through these codecs, which exercises the same
decode -> normalize -> convert pipeline the original system ran.
"""

from __future__ import annotations

import os
import struct
from typing import BinaryIO

import numpy as np

from repro.exceptions import CodecError
from repro.imaging.image import Image

_PNM_MAGICS = {b"P2": ("ascii", 1), b"P3": ("ascii", 3),
               b"P5": ("binary", 1), b"P6": ("binary", 3)}


# ----------------------------------------------------------------------
# netpbm (PPM / PGM)
# ----------------------------------------------------------------------
def _read_pnm_tokens(stream: BinaryIO, count: int) -> list[int]:
    """Read ``count`` whitespace-separated integer tokens, skipping
    ``#`` comments, as required by the netpbm header grammar."""
    tokens: list[int] = []
    current = b""
    while len(tokens) < count:
        ch = stream.read(1)
        if not ch:
            raise CodecError("unexpected end of PNM header")
        if ch == b"#":
            while ch not in (b"\n", b""):
                ch = stream.read(1)
            continue
        if ch.isspace():
            if current:
                tokens.append(int(current))
                current = b""
            continue
        if not ch.isdigit():
            raise CodecError(f"unexpected byte {ch!r} in PNM header")
        current += ch
    return tokens


def read_pnm(path: str | os.PathLike) -> Image:
    """Read a PGM (P2/P5) or PPM (P3/P6) file into an :class:`Image`.

    PGM files produce ``gray`` images, PPM files produce ``rgb`` images.
    """
    with open(path, "rb") as stream:
        magic = stream.read(2)
        if magic not in _PNM_MAGICS:
            raise CodecError(f"not a supported PNM file (magic {magic!r})")
        mode, channels = _PNM_MAGICS[magic]
        width, height, maxval = _read_pnm_tokens(stream, 3)
        if width <= 0 or height <= 0:
            raise CodecError(f"invalid PNM dimensions {width}x{height}")
        if not 0 < maxval < 65536:
            raise CodecError(f"invalid PNM maxval {maxval}")
        n = width * height * channels
        if mode == "binary":
            bytes_per = 2 if maxval > 255 else 1
            payload = stream.read(n * bytes_per)
            if len(payload) != n * bytes_per:
                raise CodecError("truncated PNM payload")
            dtype = ">u2" if bytes_per == 2 else np.uint8
            values = np.frombuffer(payload, dtype=dtype).astype(np.float64)
        else:
            text = stream.read().split()
            if len(text) < n:
                raise CodecError("truncated ASCII PNM payload")
            values = np.array([int(t) for t in text[:n]], dtype=np.float64)
    pixels = (values / maxval).reshape(height, width, channels)
    space = "gray" if channels == 1 else "rgb"
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return Image(pixels, space, name)


def write_pnm(image: Image, path: str | os.PathLike, *,
              binary: bool = True) -> None:
    """Write an ``rgb`` image as PPM or a ``gray`` image as PGM."""
    if image.color_space not in ("rgb", "gray"):
        raise CodecError(
            f"can only write rgb/gray images, not {image.color_space}; "
            "convert first"
        )
    channels = image.channels
    magic = {(1, True): b"P5", (3, True): b"P6",
             (1, False): b"P2", (3, False): b"P3"}[(channels, binary)]
    data = np.rint(image.pixels * 255).astype(np.uint8)
    with open(path, "wb") as stream:
        stream.write(magic + b"\n")
        stream.write(f"{image.width} {image.height}\n255\n".encode())
        if binary:
            stream.write(data.tobytes())
        else:
            flat = data.reshape(-1)
            lines = (" ".join(str(v) for v in flat[i:i + 12])
                     for i in range(0, flat.size, 12))
            stream.write("\n".join(lines).encode() + b"\n")


# ----------------------------------------------------------------------
# BMP (24-bit uncompressed, BITMAPINFOHEADER)
# ----------------------------------------------------------------------
def read_bmp(path: str | os.PathLike) -> Image:
    """Read an uncompressed 24-bit BMP file into an RGB :class:`Image`."""
    with open(path, "rb") as stream:
        header = stream.read(14)
        if len(header) != 14 or header[:2] != b"BM":
            raise CodecError("not a BMP file")
        data_offset = struct.unpack("<I", header[10:14])[0]
        info = stream.read(40)
        if len(info) != 40:
            raise CodecError("truncated BMP info header")
        (info_size, width, height, planes, bpp, compression) = struct.unpack(
            "<IiiHHI", info[:20]
        )
        if info_size < 40:
            raise CodecError(f"unsupported BMP header size {info_size}")
        if bpp != 24 or compression != 0:
            raise CodecError(
                f"only uncompressed 24-bit BMP supported (bpp={bpp}, "
                f"compression={compression})"
            )
        if width <= 0 or height == 0:
            raise CodecError(f"invalid BMP dimensions {width}x{height}")
        flipped = height > 0
        height = abs(height)
        row_bytes = (width * 3 + 3) & ~3
        stream.seek(data_offset)
        payload = stream.read(row_bytes * height)
        if len(payload) != row_bytes * height:
            raise CodecError("truncated BMP payload")
    rows = np.frombuffer(payload, dtype=np.uint8).reshape(height, row_bytes)
    bgr = rows[:, : width * 3].reshape(height, width, 3)
    rgb = bgr[:, :, ::-1]
    if flipped:
        rgb = rgb[::-1]
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return Image(np.ascontiguousarray(rgb), "rgb", name)


def write_bmp(image: Image, path: str | os.PathLike) -> None:
    """Write an RGB image as uncompressed 24-bit BMP."""
    if image.color_space != "rgb":
        raise CodecError(f"can only write rgb images, not {image.color_space}")
    data = np.rint(image.pixels * 255).astype(np.uint8)
    bgr = data[::-1, :, ::-1]  # bottom-up rows, BGR order
    row_bytes = (image.width * 3 + 3) & ~3
    pad = row_bytes - image.width * 3
    payload = bytearray()
    for row in bgr:
        payload += row.tobytes()
        payload += b"\x00" * pad
    file_size = 14 + 40 + len(payload)
    with open(path, "wb") as stream:
        stream.write(b"BM")
        stream.write(struct.pack("<IHHI", file_size, 0, 0, 54))
        stream.write(struct.pack("<IiiHHIIiiII", 40, image.width,
                                 image.height, 1, 24, 0, len(payload),
                                 2835, 2835, 0, 0))
        stream.write(payload)


# ----------------------------------------------------------------------
# Dispatch by extension
# ----------------------------------------------------------------------
_READERS = {".ppm": read_pnm, ".pgm": read_pnm, ".pnm": read_pnm,
            ".bmp": read_bmp}


def read_image(path: str | os.PathLike) -> Image:
    """Read an image file, dispatching on its extension."""
    ext = os.path.splitext(os.fspath(path))[1].lower()
    reader = _READERS.get(ext)
    if reader is None:
        raise CodecError(
            f"unsupported image extension {ext!r}; "
            f"supported: {sorted(_READERS)}"
        )
    return reader(path)


def write_image(image: Image, path: str | os.PathLike) -> None:
    """Write an image file, dispatching on its extension."""
    ext = os.path.splitext(os.fspath(path))[1].lower()
    if ext in (".ppm", ".pgm", ".pnm"):
        write_pnm(image, path)
    elif ext == ".bmp":
        write_bmp(image, path)
    else:
        raise CodecError(f"unsupported image extension {ext!r}")
