"""Rasterization primitives for the synthetic dataset generator.

The generator composes scenes out of simple shapes (ellipses, rectangles,
"flowers" built from petal ellipses) plus procedural textures (stripes,
speckle, gradients).  Everything operates on a mutable ``Canvas`` of
float RGB pixels and is deterministic given the caller's RNG.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ImageFormatError
from repro.imaging.image import Image


class Canvas:
    """A mutable float RGB raster that drawing primitives write into."""

    def __init__(self, height: int, width: int,
                 color: tuple[float, float, float] = (0.0, 0.0, 0.0)) -> None:
        if height <= 0 or width <= 0:
            raise ImageFormatError("canvas size must be positive")
        self.pixels = np.empty((height, width, 3), dtype=np.float64)
        self.pixels[:] = np.clip(color, 0.0, 1.0)

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    def to_image(self, color_space: str = "rgb", name: str = "") -> Image:
        """Freeze the canvas into an immutable :class:`Image`."""
        return Image(np.clip(self.pixels, 0.0, 1.0), color_space, name)

    # ------------------------------------------------------------------
    # Coordinate grids
    # ------------------------------------------------------------------
    def _grid(self) -> tuple[np.ndarray, np.ndarray]:
        ys = np.arange(self.height)[:, None]
        xs = np.arange(self.width)[None, :]
        return ys, xs

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def fill_rect(self, top: int, left: int, height: int, width: int,
                  color: tuple[float, float, float]) -> None:
        """Fill an axis-aligned rectangle, clipped to the canvas."""
        t = max(0, top)
        l = max(0, left)
        b = min(self.height, top + height)
        r = min(self.width, left + width)
        if t < b and l < r:
            self.pixels[t:b, l:r] = np.clip(color, 0.0, 1.0)

    def fill_ellipse(self, cy: float, cx: float, ry: float, rx: float,
                     color: tuple[float, float, float],
                     angle: float = 0.0) -> None:
        """Fill a (possibly rotated) ellipse centred at ``(cy, cx)``."""
        if ry <= 0 or rx <= 0:
            return
        ys, xs = self._grid()
        dy = ys - cy
        dx = xs - cx
        if angle:
            cos_a, sin_a = np.cos(angle), np.sin(angle)
            du = dx * cos_a + dy * sin_a
            dv = -dx * sin_a + dy * cos_a
        else:
            du, dv = dx, dy
        mask = (du / rx) ** 2 + (dv / ry) ** 2 <= 1.0
        self.pixels[mask] = np.clip(color, 0.0, 1.0)

    def fill_circle(self, cy: float, cx: float, radius: float,
                    color: tuple[float, float, float]) -> None:
        """Fill a circle — the degenerate ellipse."""
        self.fill_ellipse(cy, cx, radius, radius, color)

    def vertical_gradient(self, top_color: tuple[float, float, float],
                          bottom_color: tuple[float, float, float]) -> None:
        """Fill the whole canvas with a vertical linear gradient."""
        t = np.linspace(0.0, 1.0, self.height)[:, None, None]
        top = np.asarray(top_color, dtype=np.float64)
        bottom = np.asarray(bottom_color, dtype=np.float64)
        self.pixels[:] = np.clip(top * (1 - t) + bottom * t, 0.0, 1.0)

    def stripes(self, color_a: tuple[float, float, float],
                color_b: tuple[float, float, float],
                period: int, horizontal: bool = True) -> None:
        """Fill with alternating stripes of width ``period``."""
        if period <= 0:
            raise ImageFormatError("stripe period must be positive")
        ys, xs = self._grid()
        coord = ys if horizontal else xs
        band = (coord // period) % 2 == 0
        band = np.broadcast_to(band, (self.height, self.width))
        self.pixels[band] = np.clip(color_a, 0.0, 1.0)
        self.pixels[~band] = np.clip(color_b, 0.0, 1.0)

    def speckle(self, rng: np.random.Generator, amplitude: float) -> None:
        """Add uniform noise (a cheap stand-in for photographic texture)."""
        noise = rng.uniform(-amplitude, amplitude, self.pixels.shape)
        self.pixels[:] = np.clip(self.pixels + noise, 0.0, 1.0)

    def blit(self, other: "Canvas", top: int, left: int,
             mask_color: tuple[float, float, float] | None = None) -> None:
        """Copy another canvas onto this one at ``(top, left)``.

        If ``mask_color`` is given, pixels of ``other`` equal to it are
        treated as transparent (simple chroma-key compositing).
        """
        t = max(0, top)
        l = max(0, left)
        b = min(self.height, top + other.height)
        r = min(self.width, left + other.width)
        if t >= b or l >= r:
            return
        src = other.pixels[t - top: b - top, l - left: r - left]
        if mask_color is None:
            self.pixels[t:b, l:r] = src
        else:
            opaque = ~np.all(
                np.isclose(src, np.asarray(mask_color)), axis=2
            )
            region = self.pixels[t:b, l:r]
            region[opaque] = src[opaque]


def draw_flower(canvas: Canvas, cy: float, cx: float, radius: float,
                petal_color: tuple[float, float, float],
                center_color: tuple[float, float, float],
                petals: int = 6) -> None:
    """Draw a stylized flower: ``petals`` ellipses around a round center.

    The flower is the signature object of the paper's running example
    (query image 866: red flowers on green leaves).
    """
    if radius <= 0:
        return
    petal_ry = radius * 0.55
    petal_rx = radius * 0.3
    for k in range(petals):
        angle = 2 * np.pi * k / petals
        py = cy + np.sin(angle) * radius * 0.55
        px = cx + np.cos(angle) * radius * 0.55
        canvas.fill_ellipse(py, px, petal_ry, petal_rx, petal_color,
                            angle=angle + np.pi / 2)
    canvas.fill_circle(cy, cx, radius * 0.28, center_color)
