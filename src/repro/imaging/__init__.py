"""Imaging substrate: image container, codecs, drawing primitives.

Stands in for the ImageMagick dependency of the original WALRUS system.
"""

from repro.imaging.codecs import (
    read_bmp,
    read_image,
    read_pnm,
    write_bmp,
    write_image,
    write_pnm,
)
from repro.imaging import transforms
from repro.imaging.draw import Canvas, draw_flower
from repro.imaging.image import COLOR_SPACES, Image

__all__ = [
    "COLOR_SPACES",
    "Canvas",
    "Image",
    "draw_flower",
    "transforms",
    "read_bmp",
    "read_image",
    "read_pnm",
    "write_bmp",
    "write_image",
    "write_pnm",
]
