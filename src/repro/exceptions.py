"""Exception hierarchy for the WALRUS reproduction library.

All library errors derive from :class:`WalrusError` so callers can catch a
single base class.  Subclasses mark the subsystem that raised the error,
which keeps error handling in applications explicit without string
matching on messages.
"""

from __future__ import annotations


class WalrusError(Exception):
    """Base class for every error raised by this library."""


class ParameterError(WalrusError, ValueError):
    """A parameter value is invalid (wrong range, not a power of two, ...)."""


class InvalidParameterError(ParameterError):
    """An argument passed to a public entry point is invalid.

    Distinguishes caller mistakes on an individual call (a negative
    ``k``, an out-of-range fault rate) from a misconfigured
    :class:`~repro.core.parameters.ExtractionParameters` /
    ``QueryParameters`` record, which raise :class:`ParameterError`
    directly.  Derives from :class:`ParameterError` (and therefore
    ``ValueError``), so existing handlers keep working.
    """


class ImageFormatError(WalrusError, ValueError):
    """An image file or array does not conform to the expected format."""


class CodecError(ImageFormatError):
    """A PPM/PGM/BMP stream could not be decoded or encoded."""


class WaveletError(WalrusError, ValueError):
    """Wavelet transform input is malformed (non power-of-two size, ...)."""


class ClusteringError(WalrusError):
    """The BIRCH clustering substrate failed (empty input, bad threshold)."""


class IndexError_(WalrusError):
    """The R*-tree index detected an inconsistency or misuse.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``SpatialIndexError`` from the
    package root.
    """


class StorageError(IndexError_):
    """The paged storage layer failed (bad page id, corrupt file, ...)."""


class PageCorruptionError(StorageError):
    """A page read back from disk failed its integrity check.

    Carries the page id and file offset of the corrupt record so
    recovery tooling (``walrus fsck``) can report and localize damage.
    Either attribute may be ``None`` when unknown (e.g. a corrupt page
    table rather than a data page).
    """

    def __init__(self, message: str, *, page_id: int | None = None,
                 offset: int | None = None) -> None:
        super().__init__(message)
        self.page_id = page_id
        self.offset = offset


class DatabaseError(WalrusError):
    """The WALRUS database was misused (querying before indexing, ...)."""


class DatabaseClosedError(DatabaseError):
    """An operation was attempted on a database after :meth:`close`.

    Raised by every public :class:`~repro.core.database.WalrusDatabase`
    method once the database has been closed (explicitly or by leaving
    its context manager), instead of surfacing as an obscure page-store
    failure.
    """


class PipelineError(WalrusError):
    """The parallel extraction pipeline was misconfigured or a worker
    failed irrecoverably."""


class DatasetError(WalrusError):
    """Synthetic dataset generation was given inconsistent parameters."""


class ObservabilityError(WalrusError):
    """The metrics registry was used inconsistently (name collisions
    across instrument kinds, decreasing counters, setting a
    callback-backed gauge)."""


class DeadlineExceededError(WalrusError):
    """A time-budgeted operation ran past its deadline.

    Raised by the deadline checkpoints threaded through the query path
    (R*-tree probes, matching) when a
    :class:`~repro.observability.deadline.Deadline` expires.  Carries
    the budget, the elapsed wall-clock seconds at the moment the
    checkpoint fired, and the checkpoint's context label so callers
    (and the query server's error responses) can report where the
    abort happened.
    """

    def __init__(self, message: str, *, budget_seconds: float,
                 elapsed_seconds: float, context: str = "") -> None:
        super().__init__(message)
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds
        self.context = context


class ServerError(WalrusError):
    """An HTTP serving component failed (bind failure, bad lifecycle).

    Raised instead of leaking raw ``OSError`` tracebacks when e.g. the
    requested port is already in use, and for query-daemon lifecycle
    misuse (starting a running server, serving a closed pool).
    """


class OverloadedError(ServerError):
    """The query daemon's admission controller rejected a request.

    The bounded request queue was full (or the queue wait timed out),
    so the request is shed instead of piling up threads.  Carries the
    suggested ``retry_after_seconds`` used to populate the HTTP 503
    ``Retry-After`` header.
    """

    def __init__(self, message: str, *,
                 retry_after_seconds: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


# Public, intention-revealing alias.
SpatialIndexError = IndexError_
