"""Texture-collage dataset: region-level ground truth for matching.

The scene dataset (:mod:`repro.datasets.generator`) labels whole
images; it can say *which images* should be retrieved but not *which
regions* should match.  Collages close that gap: each image is a
rectangular patchwork of textures drawn from a fixed library, and the
annotation records exactly which texture occupies which rectangle.
Two images are related in proportion to the textures they share, and a
matched region pair is *correct* iff both regions lie (mostly) on
patches of the same texture — Definition 4.1 made checkable.

Texture instances are deterministic per ``texture_id`` up to a small
per-image jitter, so the same texture in two images is similar but not
pixel-identical (as in real collections).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DatasetError
from repro.imaging.draw import Canvas
from repro.imaging.image import Image

#: Texture library: id -> (base colors / parameters).  Chosen to be
#: mutually distinguishable at 2x2 signature granularity.
TEXTURES: dict[str, dict] = {
    "grass": {"kind": "speckle", "color": (0.15, 0.50, 0.15),
              "noise": 0.06},
    "sky": {"kind": "gradient", "top": (0.45, 0.65, 0.95),
            "bottom": (0.70, 0.82, 0.97)},
    "sand": {"kind": "speckle", "color": (0.85, 0.72, 0.45),
             "noise": 0.04},
    "water": {"kind": "stripes", "a": (0.15, 0.35, 0.70),
              "b": (0.22, 0.45, 0.80), "period": 4},
    "brick": {"kind": "stripes", "a": (0.70, 0.30, 0.15),
              "b": (0.45, 0.40, 0.35), "period": 6},
    "coal": {"kind": "speckle", "color": (0.10, 0.10, 0.12),
             "noise": 0.03},
    "blossom": {"kind": "speckle", "color": (0.90, 0.55, 0.65),
                "noise": 0.05},
    "wheat": {"kind": "stripes", "a": (0.88, 0.78, 0.35),
              "b": (0.80, 0.68, 0.25), "period": 3},
}


@dataclass(frozen=True)
class Patch:
    """One annotated rectangle of a collage."""

    texture_id: str
    top: int
    left: int
    height: int
    width: int

    def contains_window(self, row: int, col: int, size: int,
                        *, slack: int = 0) -> bool:
        """True if the window lies inside the patch (+- slack pixels)."""
        return (row >= self.top - slack
                and col >= self.left - slack
                and row + size <= self.top + self.height + slack
                and col + size <= self.left + self.width + slack)


@dataclass(frozen=True)
class CollageImage:
    """A rendered collage plus its patch annotations."""

    image: Image
    patches: tuple[Patch, ...]

    @property
    def texture_ids(self) -> set[str]:
        return {patch.texture_id for patch in self.patches}


def _paint(canvas: Canvas, patch: Patch, rng: np.random.Generator) -> None:
    spec = TEXTURES[patch.texture_id]
    sub = Canvas(patch.height, patch.width)
    jitter = rng.uniform(-0.03, 0.03, 3)

    def shade(color) -> tuple[float, float, float]:
        return tuple(float(v) for v in np.clip(np.asarray(color) + jitter,
                                               0.0, 1.0))

    if spec["kind"] == "speckle":
        sub.fill_rect(0, 0, patch.height, patch.width,
                      shade(spec["color"]))
        sub.speckle(rng, spec["noise"])
    elif spec["kind"] == "gradient":
        sub.vertical_gradient(shade(spec["top"]), shade(spec["bottom"]))
    elif spec["kind"] == "stripes":
        sub.stripes(shade(spec["a"]), shade(spec["b"]),
                    period=spec["period"])
    else:  # pragma: no cover - library is static
        raise DatasetError(f"unknown texture kind {spec['kind']!r}")
    canvas.blit(sub, patch.top, patch.left)


def render_collage(texture_ids: list[str], seed: int, *,
                   height: int = 96, width: int = 128,
                   name: str = "") -> CollageImage:
    """Render a collage of 1, 2 or 4 textures with annotations.

    Layouts: one texture fills the frame; two split it vertically at a
    random position; four make a 2x2 grid with a random center.
    """
    unknown = [t for t in texture_ids if t not in TEXTURES]
    if unknown:
        raise DatasetError(f"unknown textures: {unknown}")
    if len(texture_ids) not in (1, 2, 4):
        raise DatasetError("collages take 1, 2 or 4 textures")
    rng = np.random.default_rng(seed)
    canvas = Canvas(height, width)
    if len(texture_ids) == 1:
        patches = [Patch(texture_ids[0], 0, 0, height, width)]
    elif len(texture_ids) == 2:
        split = int(width * rng.uniform(0.35, 0.65))
        patches = [Patch(texture_ids[0], 0, 0, height, split),
                   Patch(texture_ids[1], 0, split, height, width - split)]
    else:
        split_col = int(width * rng.uniform(0.35, 0.65))
        split_row = int(height * rng.uniform(0.35, 0.65))
        patches = [
            Patch(texture_ids[0], 0, 0, split_row, split_col),
            Patch(texture_ids[1], 0, split_col, split_row,
                  width - split_col),
            Patch(texture_ids[2], split_row, 0, height - split_row,
                  split_col),
            Patch(texture_ids[3], split_row, split_col,
                  height - split_row, width - split_col),
        ]
    for patch in patches:
        _paint(canvas, patch, rng)
    return CollageImage(canvas.to_image(name=name or f"collage-{seed}"),
                        tuple(patches))


@dataclass(frozen=True)
class CollageDataset:
    """A collection of annotated collages."""

    collages: tuple[CollageImage, ...]

    def __len__(self) -> int:
        return len(self.collages)

    @property
    def images(self) -> list[Image]:
        return [collage.image for collage in self.collages]

    def by_name(self, name: str) -> CollageImage:
        for collage in self.collages:
            if collage.image.name == name:
                return collage
        raise DatasetError(f"no collage named {name!r}")

    def sharing_texture(self, texture_id: str) -> set[str]:
        """Names of collages containing ``texture_id``."""
        return {collage.image.name for collage in self.collages
                if texture_id in collage.texture_ids}

    def shared_count(self, first: str, second: str) -> int:
        """Number of texture ids two collages share."""
        return len(self.by_name(first).texture_ids
                   & self.by_name(second).texture_ids)


def generate_collages(count: int, seed: int = 1999, *,
                      height: int = 96, width: int = 128
                      ) -> CollageDataset:
    """Render ``count`` collages with randomized texture sets/layouts."""
    if count < 1:
        raise DatasetError("count must be >= 1")
    master = np.random.default_rng(seed)
    names = sorted(TEXTURES)
    collages = []
    for index in range(count):
        k = int(master.choice([1, 2, 2, 4]))  # favour two-patch layouts
        chosen = list(master.choice(names, size=k, replace=False))
        collages.append(render_collage(
            chosen, seed=int(master.integers(2 ** 62)),
            height=height, width=width, name=f"collage-{index:04d}"))
    return CollageDataset(tuple(collages))


def window_texture(collage: CollageImage, row: int, col: int,
                   size: int) -> str | None:
    """The texture id whose patch fully contains the window, if any."""
    for patch in collage.patches:
        if patch.contains_window(row, col, size):
            return patch.texture_id
    return None
