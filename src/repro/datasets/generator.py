"""Synthetic "misc"-style image collection with ground truth.

The paper evaluates on the Stanford/VIRAGE ``misc`` collection of 10000
JPEGs (85x128 / 96x128 / 128x85), which is not redistributable and not
downloadable here.  This module renders a parameterized stand-in with
the properties the evaluation actually relies on:

* Each image belongs to a *scene class* (flower field, brick wall,
  sunset, dog-on-lawn, ...) mirroring the scenes the paper describes in
  Figures 7/8.
* Within a class, the class's signature *object* is placed at a random
  position and scale on a varied background — exactly the translation/
  scaling variation WALRUS claims robustness to and global-signature
  baselines lack.
* Several classes share global color composition (green backgrounds,
  red/orange centers) so that a whole-image signature confuses them,
  reproducing WBIIS's failure modes from Figure 7.
* Class membership is the relevance ground truth, which upgrades the
  paper's qualitative eyeballing to measurable precision/recall.

Everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DatasetError
from repro.imaging.draw import Canvas, draw_flower
from repro.imaging.image import Image

#: Image sizes of the paper's misc collection.
MISC_SIZES = ((85, 128), (96, 128), (128, 85))


def _jitter(rng: np.random.Generator, color: tuple[float, float, float],
            amount: float = 0.06) -> tuple[float, float, float]:
    """Randomly shift a base color (keeps classes from being constant)."""
    shifted = np.clip(np.asarray(color) + rng.uniform(-amount, amount, 3),
                      0.0, 1.0)
    return tuple(float(v) for v in shifted)


# ----------------------------------------------------------------------
# Scene renderers.  Each takes (rng, height, width) -> Canvas.
# ----------------------------------------------------------------------
def _render_flowers(rng: np.random.Generator, height: int,
                    width: int) -> Canvas:
    """Red/pink flowers over green foliage (the paper's query class);
    flower count, position and size vary heavily."""
    canvas = Canvas(height, width, _jitter(rng, (0.10, 0.42, 0.12)))
    canvas.speckle(rng, 0.05)
    petal = _jitter(rng, (0.85, 0.10, 0.15)) if rng.uniform() < 0.7 \
        else _jitter(rng, (0.95, 0.45, 0.60))  # pink variant
    center = _jitter(rng, (0.92, 0.80, 0.20))
    count = int(rng.integers(1, 4))
    min_side = min(height, width)
    for index in range(count):
        # The first flower is always prominent (the paper's query shows a
        # "fairly large bunch"); extras vary freely in size and position.
        low = 0.22 if index == 0 else 0.14
        radius = rng.uniform(low, 0.34) * min_side
        cy = rng.uniform(radius, height - radius)
        cx = rng.uniform(radius, width - radius)
        draw_flower(canvas, cy, cx, radius, petal, center,
                    petals=int(rng.integers(5, 8)))
    return canvas


def _render_brick_wall(rng: np.random.Generator, height: int,
                       width: int) -> Canvas:
    """Orange/brown brick courses (WBIIS confuser: red-ish center mass)."""
    mortar = _jitter(rng, (0.45, 0.40, 0.35))
    brick = _jitter(rng, (0.70, 0.30, 0.15))
    canvas = Canvas(height, width, mortar)
    course = int(rng.integers(10, 16))
    brick_w = int(rng.integers(18, 30))
    for row_index, top in enumerate(range(0, height, course)):
        offset = (row_index % 2) * brick_w // 2
        for left in range(-brick_w, width, brick_w):
            canvas.fill_rect(top + 1, left + offset + 1, course - 2,
                             brick_w - 2, _jitter(rng, brick, 0.04))
    canvas.speckle(rng, 0.03)
    return canvas


def _render_sunset(rng: np.random.Generator, height: int,
                   width: int) -> Canvas:
    """Sunset over the ocean (red/orange center, WBIIS confuser)."""
    canvas = Canvas(height, width)
    sky_top = _jitter(rng, (0.85, 0.35, 0.10))
    sky_bottom = _jitter(rng, (0.95, 0.65, 0.25))
    canvas.vertical_gradient(sky_top, sky_bottom)
    horizon = int(height * rng.uniform(0.55, 0.75))
    sea = Canvas(height - horizon, width)
    sea.vertical_gradient(_jitter(rng, (0.30, 0.20, 0.35)),
                          _jitter(rng, (0.10, 0.10, 0.30)))
    canvas.blit(sea, horizon, 0)
    sun_r = rng.uniform(0.08, 0.16) * min(height, width)
    canvas.fill_circle(horizon - rng.uniform(0.5, 2.0) * sun_r,
                       width * rng.uniform(0.3, 0.7), sun_r,
                       _jitter(rng, (0.98, 0.85, 0.40)))
    canvas.speckle(rng, 0.02)
    return canvas


def _render_dog_lawn(rng: np.random.Generator, height: int,
                     width: int) -> Canvas:
    """Yellow dog blob on a green lawn (green background, WBIIS
    confuser for the flower class)."""
    canvas = Canvas(height, width, _jitter(rng, (0.25, 0.55, 0.20)))
    canvas.speckle(rng, 0.04)
    body = _jitter(rng, (0.80, 0.65, 0.30))
    min_side = min(height, width)
    cy = height * rng.uniform(0.45, 0.7)
    cx = width * rng.uniform(0.3, 0.7)
    scale = rng.uniform(0.18, 0.3) * min_side
    canvas.fill_ellipse(cy, cx, scale * 0.6, scale, body)              # body
    canvas.fill_circle(cy - scale * 0.5, cx + scale * 0.9, scale * 0.4,
                       body)                                           # head
    return canvas


def _render_ocean(rng: np.random.Generator, height: int,
                  width: int) -> Canvas:
    """Open water with foam stripes."""
    canvas = Canvas(height, width)
    canvas.vertical_gradient(_jitter(rng, (0.20, 0.45, 0.75)),
                             _jitter(rng, (0.05, 0.20, 0.45)))
    foam = _jitter(rng, (0.85, 0.92, 0.95), 0.03)
    for _ in range(int(rng.integers(4, 9))):
        top = int(rng.uniform(0.2, 0.95) * height)
        canvas.fill_rect(top, 0, max(1, int(rng.uniform(1, 3))), width, foam)
    canvas.speckle(rng, 0.03)
    return canvas


def _render_windsurf(rng: np.random.Generator, height: int,
                     width: int) -> Canvas:
    """Windsurfer with a red sail on blue water (the Figure 8(m)
    near-miss: red mass on a non-flower image)."""
    canvas = _render_ocean(rng, height, width)
    min_side = min(height, width)
    sail_h = rng.uniform(0.25, 0.4) * min_side
    cy = height * rng.uniform(0.35, 0.6)
    cx = width * rng.uniform(0.3, 0.7)
    canvas.fill_ellipse(cy, cx, sail_h, sail_h * 0.4,
                        _jitter(rng, (0.85, 0.12, 0.12)))
    canvas.fill_rect(int(cy + sail_h * 0.8), int(cx - sail_h * 0.5),
                     max(2, int(sail_h * 0.15)), int(sail_h),
                     _jitter(rng, (0.9, 0.9, 0.85)))
    return canvas


def _render_forest(rng: np.random.Generator, height: int,
                   width: int) -> Canvas:
    """Dense foliage with dark trunks (green-heavy, no flowers)."""
    canvas = Canvas(height, width, _jitter(rng, (0.12, 0.35, 0.10)))
    canvas.speckle(rng, 0.08)
    trunk = _jitter(rng, (0.25, 0.15, 0.08))
    for _ in range(int(rng.integers(3, 7))):
        left = int(rng.uniform(0, width - 4))
        canvas.fill_rect(int(height * 0.3), left,
                         int(height * 0.7), int(rng.integers(3, 7)), trunk)
    return canvas


def _render_night_sky(rng: np.random.Generator, height: int,
                      width: int) -> Canvas:
    """Stars on a dark sky."""
    canvas = Canvas(height, width, _jitter(rng, (0.03, 0.03, 0.10), 0.02))
    star = (0.95, 0.95, 0.9)
    for _ in range(int(rng.integers(30, 80))):
        cy = rng.uniform(0, height - 1)
        cx = rng.uniform(0, width - 1)
        canvas.fill_circle(cy, cx, rng.uniform(0.4, 1.2), star)
    return canvas


def _render_desert(rng: np.random.Generator, height: int,
                   width: int) -> Canvas:
    """Sand dunes under a bright sky."""
    canvas = Canvas(height, width)
    canvas.vertical_gradient(_jitter(rng, (0.55, 0.75, 0.95)),
                             _jitter(rng, (0.80, 0.85, 0.95)))
    horizon = int(height * rng.uniform(0.4, 0.6))
    sand = Canvas(height - horizon, width)
    sand.vertical_gradient(_jitter(rng, (0.90, 0.75, 0.45)),
                           _jitter(rng, (0.75, 0.55, 0.30)))
    canvas.blit(sand, horizon, 0)
    canvas.speckle(rng, 0.03)
    return canvas


def _render_balloons(rng: np.random.Generator, height: int,
                     width: int) -> Canvas:
    """Colorful balloons on a sky background (multi-color confuser)."""
    canvas = Canvas(height, width)
    canvas.vertical_gradient(_jitter(rng, (0.45, 0.65, 0.95)),
                             _jitter(rng, (0.70, 0.80, 0.95)))
    palette = [(0.9, 0.2, 0.2), (0.95, 0.8, 0.2), (0.2, 0.5, 0.9),
               (0.4, 0.8, 0.3), (0.8, 0.3, 0.8)]
    min_side = min(height, width)
    for _ in range(int(rng.integers(3, 7))):
        radius = rng.uniform(0.06, 0.14) * min_side
        canvas.fill_ellipse(rng.uniform(radius, height * 0.8),
                            rng.uniform(radius, width - radius),
                            radius * 1.2, radius,
                            _jitter(rng, palette[int(rng.integers(5))]))
    return canvas


#: Class registry: name -> renderer.
SCENE_CLASSES = {
    "flowers": _render_flowers,
    "brick_wall": _render_brick_wall,
    "sunset": _render_sunset,
    "dog_lawn": _render_dog_lawn,
    "ocean": _render_ocean,
    "windsurf": _render_windsurf,
    "forest": _render_forest,
    "night_sky": _render_night_sky,
    "desert": _render_desert,
    "balloons": _render_balloons,
}


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for a synthetic collection.

    Attributes
    ----------
    classes:
        Scene classes to include (defaults to all of
        :data:`SCENE_CLASSES`).
    images_per_class:
        Images rendered per class.
    sizes:
        ``(height, width)`` candidates, sampled uniformly per image
        (defaults to the misc collection's three sizes).
    seed:
        Master RNG seed; everything is derived from it.
    """

    classes: tuple[str, ...] = tuple(SCENE_CLASSES)
    images_per_class: int = 20
    sizes: tuple[tuple[int, int], ...] = MISC_SIZES
    seed: int = 1999

    def __post_init__(self) -> None:
        unknown = [c for c in self.classes if c not in SCENE_CLASSES]
        if unknown:
            raise DatasetError(f"unknown scene classes: {unknown}")
        if self.images_per_class < 1:
            raise DatasetError("images_per_class must be >= 1")
        if not self.sizes:
            raise DatasetError("sizes must be non-empty")
        for height, width in self.sizes:
            if height < 1 or width < 1:
                raise DatasetError(f"bad size {height}x{width}")


@dataclass(frozen=True)
class SyntheticDataset:
    """A rendered collection plus its relevance ground truth."""

    spec: DatasetSpec
    images: tuple[Image, ...]
    labels: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.images)

    def label_of(self, name: str) -> str:
        """Class of the image called ``name``."""
        for image, label in zip(self.images, self.labels):
            if image.name == name:
                return label
        raise DatasetError(f"no image named {name!r}")

    def relevant_names(self, label: str) -> set[str]:
        """Names of all images of class ``label`` (the relevance set)."""
        if label not in self.spec.classes:
            raise DatasetError(f"unknown class {label!r}")
        return {image.name for image, l in zip(self.images, self.labels)
                if l == label}

    def class_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        return counts


def render_scene(label: str, seed: int, *,
                 size: tuple[int, int] | None = None,
                 name: str | None = None) -> Image:
    """Render a single image of class ``label`` (e.g. a query image)."""
    renderer = SCENE_CLASSES.get(label)
    if renderer is None:
        raise DatasetError(f"unknown scene class {label!r}")
    rng = np.random.default_rng(seed)
    if size is None:
        size = MISC_SIZES[int(rng.integers(len(MISC_SIZES)))]
    height, width = size
    canvas = renderer(rng, height, width)
    return canvas.to_image(name=name or f"{label}-{seed}")


def generate_dataset(spec: DatasetSpec | None = None) -> SyntheticDataset:
    """Render the collection described by ``spec`` deterministically."""
    spec = spec if spec is not None else DatasetSpec()
    master = np.random.default_rng(spec.seed)
    images: list[Image] = []
    labels: list[str] = []
    for label in spec.classes:
        for index in range(spec.images_per_class):
            seed = int(master.integers(0, 2 ** 62))
            rng = np.random.default_rng(seed)
            height, width = spec.sizes[int(rng.integers(len(spec.sizes)))]
            canvas = SCENE_CLASSES[label](rng, height, width)
            images.append(canvas.to_image(name=f"{label}-{index:04d}"))
            labels.append(label)
    return SyntheticDataset(spec, tuple(images), tuple(labels))
