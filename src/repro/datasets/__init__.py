"""Synthetic dataset substrates: misc-style scenes and texture collages."""

from repro.datasets.collage import (
    TEXTURES,
    CollageDataset,
    CollageImage,
    Patch,
    generate_collages,
    render_collage,
    window_texture,
)
from repro.datasets.generator import (
    MISC_SIZES,
    SCENE_CLASSES,
    DatasetSpec,
    SyntheticDataset,
    generate_dataset,
    render_scene,
)
from repro.datasets.groundtruth import RelevanceJudgments

__all__ = [
    "CollageDataset",
    "CollageImage",
    "DatasetSpec",
    "MISC_SIZES",
    "RelevanceJudgments",
    "Patch",
    "SCENE_CLASSES",
    "TEXTURES",
    "SyntheticDataset",
    "generate_collages",
    "generate_dataset",
    "render_collage",
    "render_scene",
    "window_texture",
]
