"""Relevance judgments decoupled from the dataset object.

For most uses :class:`~repro.datasets.generator.SyntheticDataset` is
enough; this module exists for evaluations against externally supplied
collections (a directory of images plus a label file), keeping the
harness independent of how ground truth was obtained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import DatasetError


@dataclass(frozen=True)
class RelevanceJudgments:
    """Mapping image name -> class label with relevance-set queries."""

    labels: dict[str, str]

    def __post_init__(self) -> None:
        if not self.labels:
            raise DatasetError("judgments must not be empty")

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, str]]
                   ) -> "RelevanceJudgments":
        """Build from an iterable of ``(name, label)`` pairs."""
        return cls(dict(pairs))

    @classmethod
    def from_file(cls, path: str) -> "RelevanceJudgments":
        """Read a whitespace-separated ``name label`` file
        (``#`` comments and blank lines ignored)."""
        labels: dict[str, str] = {}
        with open(path) as stream:
            for line_number, line in enumerate(stream, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 2:
                    raise DatasetError(
                        f"{path}:{line_number}: expected 'name label', "
                        f"got {line!r}"
                    )
                labels[parts[0]] = parts[1]
        return cls(labels)

    def label_of(self, name: str) -> str:
        try:
            return self.labels[name]
        except KeyError:
            raise DatasetError(f"no judgment for image {name!r}") from None

    def relevant_names(self, label: str) -> set[str]:
        names = {name for name, l in self.labels.items() if l == label}
        if not names:
            raise DatasetError(f"no images labelled {label!r}")
        return names

    def classes(self) -> set[str]:
        return set(self.labels.values())
