"""Command-line front end: ``walrus <command> ...``.

Commands
--------
``generate-dataset``
    Render the synthetic collection to a directory of PPM files plus a
    ``labels.txt`` ground-truth file.
``index``
    Build a WALRUS database from a directory of images and save it.
``query``
    Query a saved database with an image file (``--explain`` prints the
    EXPLAIN-style query report).
``stats``
    Run a query with the metrics registry enabled and print every
    instrument the library recorded.
``evaluate``
    Compare WALRUS against the baselines on a synthetic collection.
``fsck``
    Verify an on-disk database directory: page checksums, page-table
    health, and R*-tree structural integrity.  Exits non-zero when
    damage is found.
``lint``
    Run the project's AST lint suite (``tools/lint``) over the source
    tree — the correctness-invariant rules R001..R005.  Requires the
    repository checkout; exits non-zero on findings.

The CLI is a thin veneer over the library; every option maps directly
onto :class:`ExtractionParameters` / :class:`QueryParameters` fields.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.baselines import HistogramRetriever, JacobsRetriever, WbiisRetriever
from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.datasets import DatasetSpec, generate_dataset
from repro.evaluation import (
    baseline_ranker,
    evaluate_retriever,
    make_queries,
    walrus_ranker,
)
from repro.exceptions import StorageError, WalrusError
from repro.imaging.codecs import read_image, write_image
from repro.index.rstar import RStarTree
from repro.index.storage import FilePageStore
from repro.observability import HistogramSummary, disable_metrics, \
    enable_metrics, get_metrics


def _add_extraction_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--color-space", default="ycc",
                        choices=["ycc", "rgb", "yiq", "hsv"],
                        help="working color space (default: ycc)")
    parser.add_argument("--signature-size", type=int, default=2,
                        help="per-channel signature side s (default: 2)")
    parser.add_argument("--window-min", type=int, default=16,
                        help="smallest sliding-window side (default: 16)")
    parser.add_argument("--window-max", type=int, default=64,
                        help="largest sliding-window side (default: 64)")
    parser.add_argument("--stride", type=int, default=8,
                        help="window slide distance t (default: 8)")
    parser.add_argument("--cluster-threshold", type=float, default=0.05,
                        help="BIRCH radius threshold eps_c (default: 0.05)")
    parser.add_argument("--signature-mode", default="centroid",
                        choices=["centroid", "bbox"],
                        help="region signature kind (default: centroid)")


def _extraction_params(args: argparse.Namespace) -> ExtractionParameters:
    return ExtractionParameters(
        color_space=args.color_space,
        signature_size=args.signature_size,
        window_min=args.window_min,
        window_max=args.window_max,
        stride=args.stride,
        cluster_threshold=args.cluster_threshold,
        signature_mode=args.signature_mode,
    )


def _cmd_generate_dataset(args: argparse.Namespace) -> int:
    spec = DatasetSpec(images_per_class=args.images_per_class,
                       seed=args.seed)
    dataset = generate_dataset(spec)
    os.makedirs(args.output, exist_ok=True)
    for image in dataset.images:
        write_image(image, os.path.join(args.output, f"{image.name}.ppm"))
    with open(os.path.join(args.output, "labels.txt"), "w") as stream:
        stream.write("# image-name class-label\n")
        for image, label in zip(dataset.images, dataset.labels):
            stream.write(f"{image.name} {label}\n")
    print(f"wrote {len(dataset)} images and labels.txt to {args.output}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    database = WalrusDatabase(_extraction_params(args))
    names = sorted(
        entry for entry in os.listdir(args.images)
        if entry.lower().endswith((".ppm", ".pgm", ".pnm", ".bmp"))
    )
    if not names:
        print(f"no supported images found in {args.images}", file=sys.stderr)
        return 1
    images = (read_image(os.path.join(args.images, entry))
              for entry in names)
    database.add_images(images, bulk=args.bulk or None,
                        workers=args.workers)
    database._write_snapshot(args.output)
    print(f"indexed {len(database)} images "
          f"({database.region_count} regions) -> {args.output}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    database = WalrusDatabase.open(args.database)
    info = database.describe()
    parameters = info.pop("parameters")
    for key, value in info.items():
        print(f"{key}: {value}")
    print(f"parameters: {parameters}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    database = WalrusDatabase.open(args.database)
    query_image = read_image(args.image)
    params = QueryParameters(
        epsilon=args.epsilon, tau=args.tau, matching=args.matching,
        max_results=args.top,
    )
    if args.scene is not None:
        top, left, height, width = args.scene
        result = database.query_scene(query_image, top, left, height,
                                      width, params, explain=args.explain)
    else:
        result = database.query(query_image, params,
                                explain=args.explain)
    stats = result.stats
    print(f"query regions: {stats.query_regions}  "
          f"regions retrieved: {stats.regions_retrieved}  "
          f"candidate images: {stats.candidate_images}  "
          f"time: {stats.elapsed_seconds:.2f}s")
    for rank, match in enumerate(result, start=1):
        print(f"{rank:3d}. {match.name:30s} similarity={match.similarity:.4f}")
    if args.explain and result.report is not None:
        print()
        print(result.report.render())
    return 0


def _format_metric(value: object) -> str:
    if isinstance(value, HistogramSummary):
        return (f"count={value.count} total={value.total:.6f} "
                f"min={value.minimum:.6f} max={value.maximum:.6f} "
                f"mean={value.mean:.6f}")
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


def _cmd_stats(args: argparse.Namespace) -> int:
    database = WalrusDatabase.open(args.database)
    query_image = read_image(args.image)
    params = QueryParameters(epsilon=args.epsilon, tau=args.tau)
    registry = enable_metrics()
    registry.reset()
    try:
        result = database.query(query_image, params, explain=True)
    finally:
        disable_metrics()
    report = result.report
    if report is not None:
        print(report.render())
        print()
    snapshot = get_metrics().snapshot()
    width = max((len(name) for name in snapshot), default=0)
    for name in sorted(snapshot):
        print(f"{name:<{width}}  {_format_metric(snapshot[name])}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    spec = DatasetSpec(images_per_class=args.images_per_class,
                       seed=args.seed)
    dataset = generate_dataset(spec)
    queries = make_queries(dataset, per_class=args.queries_per_class)

    database = WalrusDatabase(_extraction_params(args))
    database.add_images(dataset.images)
    rankers = {"walrus": walrus_ranker(
        database, QueryParameters(epsilon=args.epsilon))}
    if not args.walrus_only:
        for name, retriever in (("wbiis", WbiisRetriever()),
                                ("jacobs", JacobsRetriever()),
                                ("histogram", HistogramRetriever())):
            retriever.add_images(dataset.images)
            rankers[name] = baseline_ranker(retriever)

    print(f"{'retriever':12s} {'P@%d' % args.k:>8s} {'recall':>8s} "
          f"{'mAP':>8s} {'s/query':>8s}")
    for name, rank in rankers.items():
        evaluation = evaluate_retriever(name, rank, dataset, queries,
                                        k=args.k)
        print(f"{name:12s} {evaluation.mean_precision:8.3f} "
              f"{evaluation.mean_recall:8.3f} {evaluation.mean_ap:8.3f} "
              f"{evaluation.mean_seconds:8.2f}")
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    directory = args.directory
    page_path = os.path.join(directory, WalrusDatabase.PAGE_FILE)
    meta_path = os.path.join(directory, WalrusDatabase.META_FILE)
    issues: list[str] = []
    if not os.path.isdir(directory):
        print(f"fsck: {directory} is not a directory", file=sys.stderr)
        return 1
    for path, label in ((page_path, "page file"),
                        (meta_path, "metadata file")):
        if not os.path.exists(path):
            issues.append(f"missing {label} {os.path.basename(path)}")
    if issues:
        for issue in issues:
            print(f"fsck: {issue}")
        print(f"fsck: {directory}: NOT a WALRUS database (or incomplete)")
        return 1

    store = None
    pages_checked = 0
    try:
        store = FilePageStore(page_path, readonly=True)
    except StorageError as error:
        issues.append(f"page file unusable: {error}")
    if store is not None:
        report = store.scan()
        pages_checked = len(report.pages)
        issues.extend(f"page file: {issue}" for issue in report.issues)
        meta = None
        try:
            blob = store.metadata
            if blob is not None:
                meta = WalrusDatabase._parse_meta(blob, page_path)
            else:
                meta = WalrusDatabase._load_meta(meta_path)
        except StorageError as error:
            if not any("metadata record" in issue for issue in issues):
                issues.append(f"page file: {error}")
        except WalrusError as error:
            issues.append(str(error))
        if meta is not None:
            try:
                tree = RStarTree.from_state(meta["index_state"], store)
                issues.extend(f"index: {issue}" for issue in tree.verify())
            except (KeyError, TypeError) as error:
                issues.append(f"metadata: malformed index state: {error!r}")
        store.close()

    for issue in issues:
        print(f"fsck: {issue}")
    if issues:
        print(f"fsck: {directory}: {pages_checked} pages checked, "
              f"{len(issues)} problem(s) found")
        return 1
    print(f"fsck: {directory}: {pages_checked} pages checked, clean")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    try:
        from tools.lint.engine import main as lint_main
    except ImportError:
        # Installed wheels do not ship tools/; pick the framework up
        # from a repository checkout rooted at the working directory.
        root = os.getcwd()
        if os.path.isfile(os.path.join(root, "tools", "lint", "engine.py")):
            sys.path.insert(0, root)
            from tools.lint.engine import main as lint_main
        else:
            print("walrus lint needs the repository checkout (tools/lint "
                  "is not part of the installed package); run it from "
                  "the repo root", file=sys.stderr)
            return 2
    forwarded = list(args.paths)
    if args.list_rules:
        forwarded.append("--list-rules")
    if args.select is not None:
        forwarded.extend(["--select", args.select])
    return lint_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="walrus",
        description="WALRUS region-based image similarity retrieval "
                    "(SIGMOD 1999 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("generate-dataset",
                              help="render the synthetic collection")
    gen.add_argument("output", help="output directory")
    gen.add_argument("--images-per-class", type=int, default=20)
    gen.add_argument("--seed", type=int, default=1999)
    gen.set_defaults(handler=_cmd_generate_dataset)

    index = commands.add_parser("index", help="index a directory of images")
    index.add_argument("images", help="directory of .ppm/.pgm/.bmp files")
    index.add_argument("output", help="database file to write")
    index.add_argument("--bulk-load", "--bulk", dest="bulk",
                       action="store_true",
                       help="build the R*-tree with STR bulk loading "
                            "(default: automatic on a fresh database)")
    index.add_argument("--workers", type=int, default=None,
                       help="extraction worker processes "
                            "(default: in-process)")
    _add_extraction_options(index)
    index.set_defaults(handler=_cmd_index)

    describe = commands.add_parser("describe",
                                   help="print statistics of a database")
    describe.add_argument("database", help="database file from 'index'")
    describe.set_defaults(handler=_cmd_describe)

    query = commands.add_parser("query", help="query a saved database")
    query.add_argument("database", help="database file from 'index'")
    query.add_argument("image", help="query image file")
    query.add_argument("--epsilon", type=float, default=0.085)
    query.add_argument("--tau", type=float, default=0.0)
    query.add_argument("--matching", default="quick",
                       choices=["quick", "greedy"])
    query.add_argument("--top", type=int, default=14)
    query.add_argument("--scene", type=int, nargs=4, default=None,
                       metavar=("TOP", "LEFT", "HEIGHT", "WIDTH"),
                       help="query with this sub-rectangle of the image "
                            "(user-specified scene)")
    query.add_argument("--explain", action="store_true",
                       help="print the EXPLAIN-style query report "
                            "(stage timings, probe and candidate counts)")
    query.set_defaults(handler=_cmd_query)

    stats = commands.add_parser(
        "stats", help="query with metrics enabled and dump every "
                      "recorded instrument")
    stats.add_argument("database", help="database file from 'index'")
    stats.add_argument("image", help="query image file")
    stats.add_argument("--epsilon", type=float, default=0.085)
    stats.add_argument("--tau", type=float, default=0.0)
    stats.set_defaults(handler=_cmd_stats)

    evaluate = commands.add_parser(
        "evaluate", help="compare WALRUS and baselines on synthetic data")
    evaluate.add_argument("--images-per-class", type=int, default=10)
    evaluate.add_argument("--queries-per-class", type=int, default=1)
    evaluate.add_argument("--seed", type=int, default=1999)
    evaluate.add_argument("--epsilon", type=float, default=0.085)
    evaluate.add_argument("--k", type=int, default=14)
    evaluate.add_argument("--walrus-only", action="store_true")
    _add_extraction_options(evaluate)
    evaluate.set_defaults(handler=_cmd_evaluate)

    fsck = commands.add_parser(
        "fsck", help="verify an on-disk database directory for corruption")
    fsck.add_argument("directory",
                      help="directory from WalrusDatabase.create(path)")
    fsck.set_defaults(handler=_cmd_fsck)

    lint = commands.add_parser(
        "lint", help="run the project AST lint suite (rules R001..R005)")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.add_argument("--select", metavar="CODES", default=None,
                      help="comma-separated rule codes to run")
    lint.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point (returns a process exit status)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except WalrusError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
