"""Command-line front end: ``walrus <command> ...``.

Commands
--------
``generate-dataset``
    Render the synthetic collection to a directory of PPM files plus a
    ``labels.txt`` ground-truth file.
``index``
    Build a WALRUS database from a directory of images and save it.
``query``
    Query a saved database with an image file (``--explain`` prints the
    EXPLAIN-style query report).
``stats``
    Run a query with the metrics registry enabled and print every
    instrument the library recorded (``--format=prometheus`` emits
    the text exposition format, ``--format=json`` a JSON snapshot).
``serve``
    Run the long-lived query daemon over a database directory:
    ``POST /query`` and ``POST /query/batch`` (JSON), ``/metrics``,
    ``/healthz``, ``/stats`` and ``/debug/traces``; bounded admission
    with structured 503s, per-request deadlines, and
    drain-on-SIGTERM.  The ``--fault-*`` flags mount a
    fault-injecting page store for chaos testing; the ``--trace*``
    flags turn on distributed tracing with head sampling plus the
    always-on flight recorder (dump on SIGUSR2 and at shutdown with
    ``--trace-dump``).
``serve-metrics``
    Expose the metrics registry over HTTP (``/metrics`` in Prometheus
    text format 0.0.4 plus a ``/healthz`` liveness probe) from a
    daemon thread until interrupted (or ``--duration`` elapses).
``evaluate``
    Compare WALRUS against the baselines on a synthetic collection.
``fsck``
    Verify an on-disk database directory: page checksums, page-table
    health, and R*-tree structural integrity.  Exits non-zero when
    damage is found.
``migrate``
    Convert a database directory's page file between on-disk formats
    (v2 pickle ↔ v3 zero-copy), atomically, preserving pages,
    metadata and commit generation; re-verifies with fsck afterwards.
``trace``
    Inspect flight-recorder traces from a running daemon
    (``--server``) or a saved dump file (``--input``): ``list`` the
    retained traces, ``show`` one as an ASCII span tree with self-time
    percentages, or ``export --chrome`` the dump as Chrome trace-event
    JSON loadable in Perfetto / ``chrome://tracing``.
``top``
    Live terminal dashboard over a daemon's ``/metrics`` endpoint:
    QPS, p50/p99 latency, shed/timeout rates, cache hit ratios and
    the per-stage time split, refreshed every ``--interval`` seconds
    from scrape deltas.
``lint``
    Run the project's AST + dataflow lint suite (``tools/lint``) over
    the first-party trees — the correctness-invariant rules
    R001..R014.  Requires the repository checkout; exits non-zero on
    findings; ``--format=json`` emits a machine-readable report.

The CLI is a thin veneer over the library; every option maps directly
onto :class:`ExtractionParameters` / :class:`QueryParameters` fields.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Sequence

from repro.baselines import HistogramRetriever, JacobsRetriever, WbiisRetriever
from repro.core.database import WalrusDatabase
from repro.core.fsck import fsck_database
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.datasets import DatasetSpec, generate_dataset
from repro.evaluation import (
    baseline_ranker,
    evaluate_retriever,
    make_queries,
    walrus_ranker,
)
from repro.exceptions import ServerError, WalrusError
from repro.imaging.codecs import read_image, write_image
from repro.observability import (HistogramSummary, MetricsServer,
                                 disable_metrics, disable_tracing,
                                 enable_metrics, enable_tracing,
                                 find_traces, get_metrics,
                                 parse_prometheus_text,
                                 render_chrome_trace, render_prometheus,
                                 render_span_tree, render_top,
                                 render_trace_list, snapshot_payload)
from repro.server import WalrusClient, WalrusServer


def _add_extraction_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--color-space", default="ycc",
                        choices=["ycc", "rgb", "yiq", "hsv"],
                        help="working color space (default: ycc)")
    parser.add_argument("--signature-size", type=int, default=2,
                        help="per-channel signature side s (default: 2)")
    parser.add_argument("--window-min", type=int, default=16,
                        help="smallest sliding-window side (default: 16)")
    parser.add_argument("--window-max", type=int, default=64,
                        help="largest sliding-window side (default: 64)")
    parser.add_argument("--stride", type=int, default=8,
                        help="window slide distance t (default: 8)")
    parser.add_argument("--cluster-threshold", type=float, default=0.05,
                        help="BIRCH radius threshold eps_c (default: 0.05)")
    parser.add_argument("--signature-mode", default="centroid",
                        choices=["centroid", "bbox"],
                        help="region signature kind (default: centroid)")


def _extraction_params(args: argparse.Namespace) -> ExtractionParameters:
    return ExtractionParameters(
        color_space=args.color_space,
        signature_size=args.signature_size,
        window_min=args.window_min,
        window_max=args.window_max,
        stride=args.stride,
        cluster_threshold=args.cluster_threshold,
        signature_mode=args.signature_mode,
    )


def _cmd_generate_dataset(args: argparse.Namespace) -> int:
    spec = DatasetSpec(images_per_class=args.images_per_class,
                       seed=args.seed)
    dataset = generate_dataset(spec)
    os.makedirs(args.output, exist_ok=True)
    for image in dataset.images:
        write_image(image, os.path.join(args.output, f"{image.name}.ppm"))
    with open(os.path.join(args.output, "labels.txt"), "w") as stream:
        stream.write("# image-name class-label\n")
        for image, label in zip(dataset.images, dataset.labels):
            stream.write(f"{image.name} {label}\n")
    print(f"wrote {len(dataset)} images and labels.txt to {args.output}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    database = WalrusDatabase(_extraction_params(args))
    names = sorted(
        entry for entry in os.listdir(args.images)
        if entry.lower().endswith((".ppm", ".pgm", ".pnm", ".bmp"))
    )
    if not names:
        print(f"no supported images found in {args.images}", file=sys.stderr)
        return 1
    images = (read_image(os.path.join(args.images, entry))
              for entry in names)
    database.add_images(images, bulk=args.bulk or None,
                        workers=args.workers)
    database._write_snapshot(args.output)
    print(f"indexed {len(database)} images "
          f"({database.region_count} regions) -> {args.output}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    database = WalrusDatabase.open(args.database)
    info = database.describe()
    parameters = info.pop("parameters")
    for key, value in info.items():
        print(f"{key}: {value}")
    print(f"parameters: {parameters}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.server is not None:
        return _cmd_query_remote(args)
    database = WalrusDatabase.open(args.database)
    query_image = read_image(args.image)
    params = QueryParameters(
        epsilon=args.epsilon, tau=args.tau, matching=args.matching,
        max_results=args.top,
    )
    if args.scene is not None:
        top, left, height, width = args.scene
        result = database.query_scene(query_image, top, left, height,
                                      width, params, explain=args.explain)
    else:
        result = database.query(query_image, params,
                                explain=args.explain)
    stats = result.stats
    print(f"query regions: {stats.query_regions}  "
          f"regions retrieved: {stats.regions_retrieved}  "
          f"candidate images: {stats.candidate_images}  "
          f"time: {stats.elapsed_seconds:.2f}s")
    for rank, match in enumerate(result, start=1):
        print(f"{rank:3d}. {match.name:30s} similarity={match.similarity:.4f}")
    if args.explain and result.report is not None:
        print()
        print(result.report.render())
    return 0


def _cmd_query_remote(args: argparse.Namespace) -> int:
    """``walrus query --server URL``: send the query to a running
    ``walrus serve`` daemon instead of opening the database locally."""
    if args.scene is not None:
        print("query: --scene is not supported with --server",
              file=sys.stderr)
        return 2
    client = WalrusClient(args.server)
    response = client.query(
        args.image,
        params={"epsilon": args.epsilon, "tau": args.tau,
                "matching": args.matching, "max_results": args.top},
        budget_seconds=args.budget, explain=args.explain)
    stats = response["stats"]
    print(f"query regions: {stats['query_regions']}  "
          f"regions retrieved: {stats['regions_retrieved']}  "
          f"candidate images: {stats['candidate_images']}  "
          f"time: {stats['elapsed_seconds']:.2f}s"
          + ("  [degraded]" if response.get("degraded") else ""))
    for rank, match in enumerate(response["matches"], start=1):
        print(f"{rank:3d}. {match['name']:30s} "
              f"similarity={match['similarity']:.4f}")
    if args.explain and "report" in response:
        print()
        print(json.dumps(response["report"], indent=2, sort_keys=True))
    return 0


def _format_metric(value: object) -> str:
    if isinstance(value, HistogramSummary):
        return (f"count={value.count} total={value.total:.6f} "
                f"min={value.minimum:.6f} max={value.maximum:.6f} "
                f"mean={value.mean:.6f}")
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


def _cmd_stats(args: argparse.Namespace) -> int:
    database = WalrusDatabase.open(args.database)
    query_image = read_image(args.image)
    params = QueryParameters(epsilon=args.epsilon, tau=args.tau)
    registry = enable_metrics()
    registry.reset()
    try:
        result = database.query(query_image, params, explain=True)
    finally:
        disable_metrics()
    report = result.report
    if args.format == "prometheus":
        sys.stdout.write(render_prometheus(get_metrics()))
        return 0
    if args.format == "json":
        payload = {
            "report": report.to_dict() if report is not None else None,
            "metrics": snapshot_payload(get_metrics()),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if report is not None:
        print(report.render())
        print()
    snapshot = get_metrics().snapshot()
    width = max((len(name) for name in snapshot), default=0)
    for name in sorted(snapshot):
        print(f"{name:<{width}}  {_format_metric(snapshot[name])}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    store_factory = None
    if args.fault_read_delay_rate > 0 or args.fault_read_error_rate > 0:
        from repro.index.faults import FaultPlan, fault_injecting_store
        plan = FaultPlan(seed=args.fault_seed,
                         read_error_rate=args.fault_read_error_rate,
                         read_delay_seconds=args.fault_read_delay,
                         read_delay_rate=args.fault_read_delay_rate)

        def store_factory(page_path: str,
                          _plan: FaultPlan = plan) -> object:
            # Sniffs the on-disk format, so chaos runs work over both
            # v2 and v3 page files.
            return fault_injecting_store(page_path, plan=_plan,
                                         readonly=True)

    was_enabled = get_metrics().enabled
    enable_metrics()
    tracing = args.trace or args.trace_dump is not None
    if tracing:
        enable_tracing(sample_rate=args.trace_sample,
                       seed=args.trace_seed,
                       slow_seconds=args.trace_slow,
                       capacity=args.trace_capacity)
    server = WalrusServer(
        args.database, host=args.host, port=args.port,
        sessions=args.sessions, max_queue=args.max_queue,
        queue_timeout_seconds=args.queue_timeout,
        retry_after_seconds=args.retry_after,
        default_budget_seconds=args.default_budget,
        max_budget_seconds=args.max_budget,
        degrade_at=args.degrade_at,
        degraded_max_regions=args.degraded_max_regions,
        store_factory=store_factory,
        trace_dump_path=args.trace_dump)
    try:
        server.start()
        host, port = server.address
        print(f"serving queries on http://{host}:{port} "
              f"(sessions={args.sessions}, max_queue={args.max_queue}; "
              f"POST /query, /query/batch; GET /healthz /metrics /stats"
              f" /debug/traces"
              + (f"; tracing sample={args.trace_sample}" if tracing
                 else "") + ")",
              flush=True)
        if args.duration is not None:
            threading.Event().wait(args.duration)
            server.stop()
            reason = "duration"
        else:
            reason = server.serve_until_signal()
    finally:
        server.stop()  # idempotent; covers the error paths
        dumped = server.write_trace_dump()
        if dumped is not None:
            print(f"trace dump written to {dumped}", flush=True)
        if tracing:
            disable_tracing()
        if not was_enabled:
            disable_metrics()
    snapshot = server.admission.snapshot()
    print(f"drained ({reason.lower()}): "
          f"admitted={snapshot['admitted_total']} "
          f"rejected={snapshot['rejected_total']} "
          f"refreshes={server.pool.refreshes}", flush=True)
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    if (args.database is None) != (args.image is None):
        print("serve-metrics: --database and --image must be given "
              "together", file=sys.stderr)
        return 2
    was_enabled = get_metrics().enabled
    registry = enable_metrics()
    if args.database is not None and args.image is not None:
        # Warm the registry with one real query so the endpoint shows
        # every instrumented name immediately.
        database = WalrusDatabase.open(args.database)
        database.query(read_image(args.image),
                       QueryParameters(epsilon=args.epsilon))
    server = MetricsServer(registry, host=args.host, port=args.port)
    server.start()
    host, port = server.address
    print(f"serving metrics on http://{host}:{port}/metrics "
          f"(liveness on /healthz)", flush=True)
    try:
        if args.duration is not None:
            threading.Event().wait(args.duration)
        else:  # pragma: no cover - interactive mode
            threading.Event().wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        pass
    finally:
        server.stop()
        if not was_enabled:
            disable_metrics()
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    spec = DatasetSpec(images_per_class=args.images_per_class,
                       seed=args.seed)
    dataset = generate_dataset(spec)
    queries = make_queries(dataset, per_class=args.queries_per_class)

    database = WalrusDatabase(_extraction_params(args))
    database.add_images(dataset.images)
    rankers = {"walrus": walrus_ranker(
        database, QueryParameters(epsilon=args.epsilon))}
    if not args.walrus_only:
        for name, retriever in (("wbiis", WbiisRetriever()),
                                ("jacobs", JacobsRetriever()),
                                ("histogram", HistogramRetriever())):
            retriever.add_images(dataset.images)
            rankers[name] = baseline_ranker(retriever)

    print(f"{'retriever':12s} {'P@%d' % args.k:>8s} {'recall':>8s} "
          f"{'mAP':>8s} {'s/query':>8s}")
    for name, rank in rankers.items():
        evaluation = evaluate_retriever(name, rank, dataset, queries,
                                        k=args.k)
        print(f"{name:12s} {evaluation.mean_precision:8.3f} "
              f"{evaluation.mean_recall:8.3f} {evaluation.mean_ap:8.3f} "
              f"{evaluation.mean_seconds:8.2f}")
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    summary = fsck_database(args.directory)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0 if summary["ok"] else 1
    if not os.path.isdir(args.directory):
        print(f"fsck: {args.directory} is not a directory",
              file=sys.stderr)
        return 1
    for issue in summary["issues"]:
        print(f"fsck: {issue}")
    if not summary["is_database"]:
        print(f"fsck: {args.directory}: NOT a WALRUS database "
              "(or incomplete)")
        return 1
    if summary["issues"]:
        print(f"fsck: {args.directory}: {summary['pages_checked']} pages "
              f"checked, {len(summary['issues'])} problem(s) found")
        return 1
    print(f"fsck: {args.directory}: {summary['pages_checked']} pages "
          "checked, clean")
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from repro.core.migrate import migrate_database
    summary = migrate_database(args.directory, to_format=args.to_format,
                               keep_backup=args.keep_backup,
                               check=not args.no_check)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0 if summary["ok"] else 1
    print(f"migrate: {args.directory}: "
          f"v{summary['source_format']} -> v{summary['target_format']}, "
          f"{summary['pages']} pages, generation {summary['generation']}"
          + (f", backup {summary['backup_path']}"
             if summary["backup_path"] else ""))
    if not summary["ok"]:
        for issue in summary.get("fsck_issues", []):
            print(f"migrate: fsck: {issue}", file=sys.stderr)
        print(f"migrate: {args.directory}: post-migration fsck FAILED",
              file=sys.stderr)
        return 1
    if summary["checked"]:
        print(f"migrate: {args.directory}: post-migration fsck clean")
    return 0


def _fetch_text(url: str, timeout: float = 10.0) -> str:
    """GET ``url`` as text; connection failures become WalrusError."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            data: bytes = response.read()
            return data.decode("utf-8")
    except (urllib.error.URLError, OSError) as error:
        raise ServerError(f"cannot fetch {url}: {error}") from error


def _load_trace_dump(args: argparse.Namespace) -> dict[str, Any]:
    """The flight-recorder dump named by ``--input`` or ``--server``."""
    if args.input is not None:
        with open(args.input, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    else:
        payload = json.loads(
            _fetch_text(args.server.rstrip("/") + "/debug/traces"))
    if not isinstance(payload, dict):
        raise ServerError("trace dump is not a JSON object")
    return payload


def _cmd_trace(args: argparse.Namespace) -> int:
    dump = _load_trace_dump(args)
    if args.trace_command == "list":
        print(render_trace_list(dump))
        return 0
    if args.trace_command == "show":
        matches = find_traces(dump, args.trace_id)
        if not matches:
            print(f"trace: no retained trace matches {args.trace_id!r}",
                  file=sys.stderr)
            return 1
        if len(matches) > 1:
            print(f"trace: {args.trace_id!r} is ambiguous "
                  f"({len(matches)} matches):", file=sys.stderr)
            for trace in matches:
                print(f"  {trace.get('trace_id')}", file=sys.stderr)
            return 1
        print(render_span_tree(matches[0]))
        return 0
    # export
    payload = render_chrome_trace(dump)
    text = json.dumps(payload, sort_keys=True, indent=2)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(text + "\n")
        print(f"wrote {len(payload['traceEvents'])} trace events "
              f"to {args.output}")
    else:
        print(text)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a daemon's ``/metrics`` endpoint."""
    url = args.url.rstrip("/") + "/metrics"
    previous: dict[str, float] | None = None
    iteration = 0
    try:
        while True:
            current = parse_prometheus_text(_fetch_text(url))
            body = render_top(current, previous, args.interval)
            if not args.no_clear and sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
            print(body + f"\nsource    {url}", flush=True)
            previous = current
            iteration += 1
            if args.iterations and iteration >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    try:
        from tools.lint.engine import main as lint_main
    except ImportError:
        # Installed wheels do not ship tools/; pick the framework up
        # from a repository checkout rooted at the working directory.
        root = os.getcwd()
        if os.path.isfile(os.path.join(root, "tools", "lint", "engine.py")):
            sys.path.insert(0, root)
            from tools.lint.engine import main as lint_main
        else:
            print("walrus lint needs the repository checkout (tools/lint "
                  "is not part of the installed package); run it from "
                  "the repo root", file=sys.stderr)
            return 2
    forwarded = list(args.paths)
    if args.list_rules:
        forwarded.append("--list-rules")
    if args.select is not None:
        forwarded.extend(["--select", args.select])
    if args.format != "text":
        forwarded.extend(["--format", args.format])
    return lint_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="walrus",
        description="WALRUS region-based image similarity retrieval "
                    "(SIGMOD 1999 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("generate-dataset",
                              help="render the synthetic collection")
    gen.add_argument("output", help="output directory")
    gen.add_argument("--images-per-class", type=int, default=20)
    gen.add_argument("--seed", type=int, default=1999)
    gen.set_defaults(handler=_cmd_generate_dataset)

    index = commands.add_parser("index", help="index a directory of images")
    index.add_argument("images", help="directory of .ppm/.pgm/.bmp files")
    index.add_argument("output", help="database file to write")
    index.add_argument("--bulk-load", "--bulk", dest="bulk",
                       action="store_true",
                       help="build the R*-tree with STR bulk loading "
                            "(default: automatic on a fresh database)")
    index.add_argument("--workers", type=int, default=None,
                       help="extraction worker processes "
                            "(default: in-process)")
    _add_extraction_options(index)
    index.set_defaults(handler=_cmd_index)

    describe = commands.add_parser("describe",
                                   help="print statistics of a database")
    describe.add_argument("database", help="database file from 'index'")
    describe.set_defaults(handler=_cmd_describe)

    query = commands.add_parser("query", help="query a saved database")
    query.add_argument("database", help="database file from 'index'")
    query.add_argument("image", help="query image file")
    query.add_argument("--epsilon", type=float, default=0.085)
    query.add_argument("--tau", type=float, default=0.0)
    query.add_argument("--matching", default="quick",
                       choices=["quick", "greedy"])
    query.add_argument("--top", type=int, default=14)
    query.add_argument("--scene", type=int, nargs=4, default=None,
                       metavar=("TOP", "LEFT", "HEIGHT", "WIDTH"),
                       help="query with this sub-rectangle of the image "
                            "(user-specified scene)")
    query.add_argument("--explain", action="store_true",
                       help="print the EXPLAIN-style query report "
                            "(stage timings, probe and candidate counts)")
    query.add_argument("--server", default=None, metavar="URL",
                       help="send the query to a running 'walrus serve' "
                            "daemon at URL instead of opening the "
                            "database locally (the database argument is "
                            "ignored)")
    query.add_argument("--budget", type=float, default=None,
                       help="per-request deadline in seconds "
                            "(--server only)")
    query.set_defaults(handler=_cmd_query)

    stats = commands.add_parser(
        "stats", help="query with metrics enabled and dump every "
                      "recorded instrument")
    stats.add_argument("database", help="database file from 'index'")
    stats.add_argument("image", help="query image file")
    stats.add_argument("--epsilon", type=float, default=0.085)
    stats.add_argument("--tau", type=float, default=0.0)
    stats.add_argument("--format", default="text",
                       choices=["text", "prometheus", "json"],
                       help="output format: human-readable text "
                            "(default), Prometheus text exposition "
                            "0.0.4, or a JSON snapshot")
    stats.set_defaults(handler=_cmd_stats)

    daemon = commands.add_parser(
        "serve",
        help="run the query daemon over a database directory "
             "(POST /query + /query/batch, /healthz, /metrics, /stats)")
    daemon.add_argument("database",
                        help="directory from WalrusDatabase.create(path)")
    daemon.add_argument("--host", default="127.0.0.1")
    daemon.add_argument("--port", type=int, default=8963,
                        help="bind port (0 asks the kernel for a free "
                             "one; the chosen port is printed)")
    daemon.add_argument("--sessions", type=int, default=4,
                        help="reader sessions == concurrent queries "
                             "(default: 4)")
    daemon.add_argument("--max-queue", type=int, default=16,
                        help="requests allowed to wait for a slot before "
                             "503s (default: 16)")
    daemon.add_argument("--queue-timeout", type=float, default=0.5,
                        help="longest a queued request waits, seconds "
                             "(default: 0.5)")
    daemon.add_argument("--retry-after", type=float, default=0.5,
                        help="Retry-After hint on 503s, seconds "
                             "(default: 0.5)")
    daemon.add_argument("--default-budget", type=float, default=None,
                        help="deadline for requests that name none, "
                             "seconds (default: unbudgeted)")
    daemon.add_argument("--max-budget", type=float, default=30.0,
                        help="clamp on requested budgets, seconds "
                             "(default: 30)")
    daemon.add_argument("--degrade-at", type=float, default=1.0,
                        help="load fraction at which queries run with "
                             "capped max_regions (default: 1.0)")
    daemon.add_argument("--degraded-max-regions", type=int, default=4,
                        help="the cap applied when degraded (default: 4)")
    daemon.add_argument("--duration", type=float, default=None,
                        help="serve for this many seconds then drain "
                             "(default: until SIGTERM/SIGINT)")
    daemon.add_argument("--fault-read-delay", type=float, default=0.05,
                        help="injected slow-read sleep, seconds "
                             "(with --fault-read-delay-rate)")
    daemon.add_argument("--fault-read-delay-rate", type=float, default=0.0,
                        help="probability a page read sleeps "
                             "(chaos testing; default: 0)")
    daemon.add_argument("--fault-read-error-rate", type=float, default=0.0,
                        help="probability a page read raises a transient "
                             "error (chaos testing; default: 0)")
    daemon.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault plan RNG (default: 0)")
    daemon.add_argument("--trace", action="store_true",
                        help="enable distributed tracing (spans on every "
                             "request; flight recorder on /debug/traces)")
    daemon.add_argument("--trace-sample", type=float, default=1.0,
                        help="head-sampling rate in [0,1] (default: 1.0; "
                             "slow/deadline/errored traces are retained "
                             "regardless)")
    daemon.add_argument("--trace-seed", type=int, default=0,
                        help="seed for the sampling RNG (default: 0)")
    daemon.add_argument("--trace-slow", type=float, default=1.0,
                        help="force-retain traces slower than this many "
                             "seconds (default: 1.0)")
    daemon.add_argument("--trace-capacity", type=int, default=64,
                        help="flight-recorder ring size, traces "
                             "(default: 64)")
    daemon.add_argument("--trace-dump", default=None, metavar="FILE",
                        help="write the flight-recorder dump to FILE on "
                             "SIGUSR2 and at shutdown (implies --trace)")
    daemon.set_defaults(handler=_cmd_serve)

    serve = commands.add_parser(
        "serve-metrics",
        help="expose the metrics registry over HTTP "
             "(/metrics + /healthz)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9463,
                       help="bind port (0 asks the kernel for a free "
                            "one; the chosen port is printed)")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for this many seconds then exit "
                            "(default: until interrupted)")
    serve.add_argument("--database", default=None,
                       help="optional database to warm the registry "
                            "with one query (requires --image)")
    serve.add_argument("--image", default=None,
                       help="query image for the warm-up query")
    serve.add_argument("--epsilon", type=float, default=0.085)
    serve.set_defaults(handler=_cmd_serve_metrics)

    evaluate = commands.add_parser(
        "evaluate", help="compare WALRUS and baselines on synthetic data")
    evaluate.add_argument("--images-per-class", type=int, default=10)
    evaluate.add_argument("--queries-per-class", type=int, default=1)
    evaluate.add_argument("--seed", type=int, default=1999)
    evaluate.add_argument("--epsilon", type=float, default=0.085)
    evaluate.add_argument("--k", type=int, default=14)
    evaluate.add_argument("--walrus-only", action="store_true")
    _add_extraction_options(evaluate)
    evaluate.set_defaults(handler=_cmd_evaluate)

    fsck = commands.add_parser(
        "fsck", help="verify an on-disk database directory for corruption")
    fsck.add_argument("directory",
                      help="directory from WalrusDatabase.create(path)")
    fsck.add_argument("--json", action="store_true",
                      help="print the machine-readable summary dict "
                           "instead of per-issue lines")
    fsck.set_defaults(handler=_cmd_fsck)

    migrate = commands.add_parser(
        "migrate",
        help="convert a database directory between page-file formats "
             "(v2 pickle <-> v3 zero-copy)")
    migrate.add_argument("directory",
                         help="directory from WalrusDatabase.create(path)")
    migrate.add_argument("--to-format", type=int, default=None,
                         choices=[2, 3],
                         help="target page-file format (default: the "
                              "current default, v3)")
    migrate.add_argument("--keep-backup", action="store_true",
                         help="keep the original next to the migrated "
                              "file as <page-file>.v<N>.bak")
    migrate.add_argument("--no-check", action="store_true",
                         help="skip the post-migration fsck pass")
    migrate.add_argument("--json", action="store_true",
                         help="print the machine-readable summary dict")
    migrate.set_defaults(handler=_cmd_migrate)

    trace = commands.add_parser(
        "trace", help="inspect flight-recorder traces (list / show / "
                      "export --chrome)")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    source = argparse.ArgumentParser(add_help=False)
    source.add_argument("--server", default="http://127.0.0.1:8963",
                        metavar="URL",
                        help="daemon to fetch /debug/traces from "
                             "(default: http://127.0.0.1:8963)")
    source.add_argument("--input", default=None, metavar="FILE",
                        help="read a saved dump file instead of a server")
    trace_list = trace_sub.add_parser(
        "list", parents=[source],
        help="one line per retained trace")
    trace_list.set_defaults(handler=_cmd_trace)
    trace_show = trace_sub.add_parser(
        "show", parents=[source],
        help="ASCII span tree of one trace (id or unique prefix)")
    trace_show.add_argument("trace_id", help="trace id or unique prefix")
    trace_show.set_defaults(handler=_cmd_trace)
    trace_export = trace_sub.add_parser(
        "export", parents=[source],
        help="convert the dump to Chrome trace-event JSON "
             "(Perfetto / chrome://tracing)")
    trace_export.add_argument("--chrome", action="store_true",
                              help="Chrome trace-event format (the only "
                                   "format, for explicitness)")
    trace_export.add_argument("--output", default=None, metavar="FILE",
                              help="write here instead of stdout")
    trace_export.set_defaults(handler=_cmd_trace)

    top = commands.add_parser(
        "top", help="live dashboard over a daemon's /metrics endpoint")
    top.add_argument("--url", default="http://127.0.0.1:8963",
                     help="daemon base URL "
                          "(default: http://127.0.0.1:8963)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between polls (default: 2.0)")
    top.add_argument("--iterations", type=int, default=0,
                     help="stop after N polls (default: 0 = forever)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of clearing the screen")
    top.set_defaults(handler=_cmd_top)

    lint = commands.add_parser(
        "lint", help="run the project AST + dataflow lint suite "
                     "(rules R001..R014)")
    lint.add_argument("paths", nargs="*", default=[],
                      help="files or directories to lint (default: "
                           "src tools benchmarks scripts)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.add_argument("--select", metavar="CODES", default=None,
                      help="comma-separated rule codes to run")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text",
                      help="findings as path:line:col lines (text) or "
                           "one machine-readable JSON object (json)")
    lint.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point (returns a process exit status)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except WalrusError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
