"""Snapshot reader sessions for the query daemon.

``walrus serve`` answers queries from a pool of *reader sessions*,
each a readonly :class:`~repro.core.database.WalrusDatabase` handle
over the same checkpoint directory.  The storage format makes this
safe without any cross-process locking:

* The page heap is append-only and a commit flips one of two CRC'd
  header slots in place, so the page table a readonly handle loaded at
  open time stays valid forever — a concurrent writer only ever adds
  bytes past it and touches the *other* header slot.
* Compaction swaps a side file in with ``os.replace``; POSIX keeps the
  already-open descriptor pointing at the old inode, so even that
  cannot disturb a live session.

A session is therefore a *pinned snapshot*: every query it serves sees
exactly the commit that was current when the session (re)opened.  The
pool refreshes a session at acquire time when the on-disk committed
generation has moved past the session's — one cheap header read per
acquire (:func:`~repro.index.storage.committed_generation`), no page
re-reads unless the database actually changed.

Sessions are handed out exclusively (one query at a time per session);
concurrency comes from pool size, which the admission controller keeps
in step with.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable

from repro.core.database import WalrusDatabase
from repro.core.parameters import QueryParameters
from repro.core.results import QueryResult
from repro.exceptions import ServerError, StorageError
from repro.imaging.image import Image
from repro.index.pagestore import PageStore
from repro.index.storage import committed_generation
from repro.observability import Deadline, get_tracer

#: A callable building a (readonly) page store over the page file —
#: how the chaos harness mounts :class:`FaultInjectingPageStore` under
#: a live server.
StoreFactory = Callable[[str], PageStore]


class ReaderSession:
    """One readonly database handle pinned to a commit.

    Parameters
    ----------
    path:
        The checkpoint directory (as given to
        :meth:`WalrusDatabase.create`).
    buffer_pages:
        Page-buffer capacity of the session's store.
    store_factory:
        Optional callable mapping the page-file path to a
        :class:`~repro.index.storage.PageStore`; used to substitute a
        fault-injecting store.  Must open the file readonly.
    """

    def __init__(self, path: str, *, buffer_pages: int = 256,
                 store_factory: StoreFactory | None = None) -> None:
        self.path = path
        self.buffer_pages = buffer_pages
        self.store_factory = store_factory
        self.page_path = os.path.join(path, WalrusDatabase.PAGE_FILE)
        self.database = self._open()

    def _open(self) -> WalrusDatabase:
        store = (self.store_factory(self.page_path)
                 if self.store_factory is not None else None)
        return WalrusDatabase.open(self.path,
                                   buffer_pages=self.buffer_pages,
                                   store=store, readonly=True)

    @property
    def generation(self) -> int:
        """The commit generation this session is pinned to."""
        return int(getattr(self.database.index.store, "generation", 0))

    def stale(self) -> bool:
        """Whether the on-disk committed generation has moved past this
        session's pinned one (one header read; no page I/O)."""
        try:
            return committed_generation(self.page_path) > self.generation
        except (StorageError, OSError):
            # A header mid-rewrite or a vanished file is a writer's
            # problem; the pinned snapshot remains serviceable.
            return False

    def refresh(self) -> None:
        """Re-open at the latest committed generation."""
        self.database.close()
        self.database = self._open()

    def query(self, image: Image,
              query_params: QueryParameters | None = None, *,
              explain: bool = False,
              deadline: Deadline | None = None,
              max_regions: int | None = None) -> QueryResult:
        """Run one query against the pinned snapshot."""
        return self.database.query(image, query_params, explain=explain,
                                   deadline=deadline,
                                   max_regions=max_regions)

    def query_batch(self, images: list[Image],
                    query_params: QueryParameters
                    | list[QueryParameters | None] | None = None, *,
                    explain: bool | list[bool] = False,
                    deadline: Deadline | None = None,
                    max_regions: int | list[int | None] | None = None,
                    return_exceptions: bool = False) -> list[Any]:
        """Run a probe-deduplicating batch against the pinned snapshot
        (see :meth:`WalrusDatabase.query_batch`) — one consistent
        generation for every item."""
        return self.database.query_batch(
            images, query_params, explain=explain, deadline=deadline,
            max_regions=max_regions, return_exceptions=return_exceptions)

    def close(self) -> None:
        """Release the session's store (idempotent)."""
        self.database.close()


class SessionPool:
    """A fixed-size pool of :class:`ReaderSession` s.

    ``acquire`` hands out an idle session exclusively (refreshing it
    first if the database has advanced), ``release`` returns it.  The
    pool never creates sessions on demand — its size is the hard
    ceiling on concurrent snapshot readers, and the admission
    controller is configured to match.
    """

    def __init__(self, path: str, size: int = 4, *,
                 buffer_pages: int = 256,
                 store_factory: StoreFactory | None = None) -> None:
        if size < 1:
            raise ServerError(f"session pool size must be >= 1, got {size}")
        self.size = size
        self._sessions = [ReaderSession(path, buffer_pages=buffer_pages,
                                        store_factory=store_factory)
                          for _ in range(size)]
        self._idle = list(self._sessions)  # guarded-by: _condition
        self._condition = threading.Condition()
        self._closed = False  # guarded-by: _condition
        self._refreshes = 0  # guarded-by: _condition

    @property
    def refreshes(self) -> int:
        """How many acquire-time snapshot refreshes have happened."""
        return self._refreshes

    @property
    def idle(self) -> int:
        """Sessions currently available."""
        with self._condition:
            return len(self._idle)

    def generations(self) -> list[int]:
        """The pinned generation of every session (diagnostics)."""
        return [session.generation for session in self._sessions]

    def acquire(self, timeout: float = 5.0) -> ReaderSession:
        """Take an idle session, waiting up to ``timeout`` seconds.

        The session is refreshed first when the database has committed
        past its pinned generation, so the query observes the commit
        current at arrival.  Raises :class:`ServerError` on timeout or
        after :meth:`close` — with admission control sized to the
        pool, a timeout indicates a configuration bug, not load.

        Runs under a ``session.acquire`` span when the process tracer
        is on: the span's duration is the wait for an idle reader plus
        any snapshot refresh.
        """
        with get_tracer().span("session.acquire") as span:
            with self._condition:
                while not self._idle:
                    if self._closed:
                        raise ServerError("session pool is closed")
                    if not self._condition.wait(timeout=timeout):
                        raise ServerError(
                            "no reader session became idle in "
                            f"{timeout:.1f}s")
                if self._closed:
                    raise ServerError("session pool is closed")
                session = self._idle.pop()
            if session.stale():
                if span.recording:
                    span.add_event("refresh",
                                   from_generation=session.generation)
                session.refresh()
                with self._condition:
                    self._refreshes += 1
            if span.recording:
                span.set_attribute("generation", session.generation)
            return session

    def release(self, session: ReaderSession) -> None:
        """Return a session taken with :meth:`acquire`."""
        with self._condition:
            if self._closed:
                session.close()
                return
            self._idle.append(session)
            self._condition.notify()

    def close(self) -> None:
        """Close every session (idempotent).  In-flight sessions close
        on release."""
        with self._condition:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = list(self._idle), []
            self._condition.notify_all()
        for session in idle:
            session.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
