"""``walrus serve`` — the long-running similarity query daemon.

:class:`WalrusServer` exposes a checkpointed WALRUS database over
HTTP/JSON using only the stdlib:

* ``POST /query`` — one similarity query.  The JSON body carries the
  image bytes (base64 plus a ``format`` extension), optional
  :class:`~repro.core.parameters.QueryParameters` overrides, an
  optional per-request ``budget_seconds`` deadline and ``max_regions``
  cap, and ``explain`` for the full EXPLAIN report.
* ``POST /query/batch`` — several queries under one admission slot
  (and one shared deadline, when given); per-item results or errors.
* ``GET /healthz`` — liveness; ``GET /metrics`` — Prometheus text
  format over the process registry; ``GET /stats`` — JSON snapshot of
  the pool, admission counters and degradation policy;
  ``GET /debug/traces`` — the flight recorder's recently retained
  traces (head-sampled plus force-retained slow / deadline-exceeded /
  errored requests).

With the process tracer enabled (:func:`~repro.observability.
enable_tracing`), every ``POST`` runs under a ``server.request`` span.
A W3C ``traceparent`` request header continues the caller's trace —
ids and sampling decision included — so a query issued through
:class:`~repro.server.client.WalrusClient` yields one trace spanning
client and server.  SIGUSR2 dumps the flight recorder without
stopping the daemon; ``walrus serve`` also dumps it at shutdown.

Requests are admitted through an
:class:`~repro.server.admission.AdmissionController` (bounded
concurrency, bounded queue, structured ``503`` + ``Retry-After`` on
overload), served from a
:class:`~repro.server.sessions.SessionPool` of pinned-snapshot
readonly handles, time-bounded by a
:class:`~repro.observability.Deadline` threaded down to the R*-tree
node reads, and degraded (``max_regions``) before they are shed.

Lifecycle: :meth:`start` binds eagerly (``port=0`` supported),
:meth:`stop` drains — the accept loop halts, queued-but-unserved
requests get ``503 draining``, in-flight handler threads are joined —
and is idempotent.  :meth:`serve_until_signal` wires SIGTERM/SIGINT
to a clean drain for foreground use by the CLI.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import signal
import tempfile
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, NamedTuple

from repro.core.parameters import QueryParameters
from repro.core.results import QueryResult
from repro.exceptions import (CodecError, DeadlineExceededError,
                              OverloadedError, ParameterError, ServerError,
                              WalrusError)
from repro.imaging.codecs import read_image
from repro.imaging.image import Image
from repro.observability import (Deadline, SpanContext, Stopwatch,
                                 get_events, get_metrics, get_tracer,
                                 parse_traceparent, render_prometheus)
from repro.server.admission import AdmissionController, DegradationPolicy
from repro.server.sessions import SessionPool, StoreFactory

#: Per-connection socket timeout: a stalled peer must not pin a
#: handler thread past this.
SOCKET_TIMEOUT = 30.0

#: Image formats accepted in request bodies (codec dispatch suffixes).
ACCEPTED_FORMATS = (".ppm", ".pgm", ".pnm", ".bmp")

#: Largest accepted request body, bytes.  Base64 of a raw 1024x1024
#: RGB P6 fits comfortably; anything bigger is a client bug or abuse.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _BadRequest(ServerError):
    """A malformed request body (becomes HTTP 400)."""


class _PreparedQuery(NamedTuple):
    """One query body decoded down to execution inputs."""

    image: Image
    query_params: QueryParameters | None
    explain: bool
    cap: int | None
    degraded: bool


class _DrainingHTTPServer(ThreadingHTTPServer):
    """The daemon's listener: ``SO_REUSEADDR`` so restarts do not trip
    over TIME_WAIT, and *non*-daemonic handler threads so
    ``server_close`` joins every in-flight request — that join is the
    drain.  Per-connection socket timeouts bound how long the join can
    take."""

    allow_reuse_address = True
    daemon_threads = False
    block_on_close = True


class _QueryHandler(BaseHTTPRequestHandler):
    """Request handler bound (by subclassing) to one WalrusServer."""

    #: Set on the per-server subclass by :meth:`WalrusServer.start`.
    walrus: "WalrusServer"

    #: Applied by BaseHTTPRequestHandler to the connection socket.
    timeout = SOCKET_TIMEOUT

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:
        return None  # structured events replace stderr chatter

    # -- plumbing --------------------------------------------------------
    def _send_json(self, status: int, payload: dict[str, Any],
                   headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, error: str,
                         detail: dict[str, Any] | None = None,
                         retry_after: float | None = None) -> None:
        payload: dict[str, Any] = {"error": error}
        payload.update(detail or {})
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = f"{retry_after:.3f}"
            payload["retry_after_seconds"] = retry_after
        self._send_json(status, payload, headers)

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise _BadRequest("request body required")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES} byte limit")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise _BadRequest(f"request body is not JSON: {error}") \
                from error
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        return body

    # -- routes ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            status = "draining" if self.walrus.draining else "ok"
            self._send_json(200 if status == "ok" else 503,
                            {"status": status})
        elif path == "/metrics":
            body = render_prometheus(get_metrics()).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/stats":
            self._send_json(200, self.walrus.stats())
        elif path == "/debug/traces":
            self._send_json(200, self.walrus.debug_traces())
        else:
            self._send_error_json(404, "not_found", {"path": path})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path not in ("/query", "/query/batch"):
            self._send_error_json(404, "not_found", {"path": path})
            return
        if self.walrus.draining:
            self._send_error_json(503, "draining", retry_after=1.0)
            return
        # A malformed header is dropped, not rejected: tracing must
        # never fail a request.
        parent = parse_traceparent(self.headers.get("traceparent"))
        try:
            body = self._read_body()
        except _BadRequest as error:
            self._send_error_json(400, "bad_request",
                                  {"detail": str(error)})
            return
        try:
            if path == "/query":
                self._send_json(200, self.walrus.handle_query(
                    body, parent=parent))
            else:
                self._send_json(200, self.walrus.handle_batch(
                    body, parent=parent))
        except _BadRequest as error:
            self._send_error_json(400, "bad_request",
                                  {"detail": str(error)})
        except OverloadedError as error:
            self._send_error_json(
                503, "overloaded", {"detail": str(error)},
                retry_after=error.retry_after_seconds)
        except DeadlineExceededError as error:
            self._send_error_json(504, "deadline_exceeded", {
                "detail": str(error),
                "budget_seconds": error.budget_seconds,
                "elapsed_seconds": error.elapsed_seconds,
                "context": error.context,
            })
        except WalrusError as error:
            self._send_error_json(
                500, "internal", {"detail": str(error),
                                  "kind": type(error).__name__})


class WalrusServer:
    """The query daemon over one checkpoint directory.

    Parameters
    ----------
    path:
        The database directory (``WalrusDatabase.create(path=...)``).
    host, port:
        Bind address; ``port=0`` takes a kernel-assigned port, read it
        from :attr:`address` after :meth:`start`.
    sessions:
        Reader-session pool size == execution concurrency.
    max_queue, queue_timeout_seconds, retry_after_seconds:
        Admission control (see :class:`AdmissionController`).
    default_budget_seconds, max_budget_seconds:
        Deadline applied when a request names none, and the clamp on
        what a request may ask for.  ``default_budget_seconds=None``
        runs unbudgeted unless the request asks.
    degrade_at, degraded_max_regions:
        Degradation policy (see :class:`DegradationPolicy`).
    buffer_pages, store_factory:
        Forwarded to the session pool; ``store_factory`` is how the
        chaos harness mounts a fault-injecting page store.
    trace_dump_path:
        When set, :meth:`write_trace_dump` (wired to SIGUSR2 by
        :meth:`serve_until_signal`, and to shutdown by ``walrus
        serve``) writes the flight-recorder dump to this JSON file.
    """

    def __init__(self, path: str, *, host: str = "127.0.0.1",
                 port: int = 8963, sessions: int = 4, max_queue: int = 16,
                 queue_timeout_seconds: float = 0.5,
                 retry_after_seconds: float = 0.5,
                 default_budget_seconds: float | None = None,
                 max_budget_seconds: float = 30.0,
                 degrade_at: float = 1.0, degraded_max_regions: int = 4,
                 buffer_pages: int = 256,
                 store_factory: StoreFactory | None = None,
                 trace_dump_path: str | None = None) -> None:
        if max_budget_seconds <= 0:
            raise ServerError(
                f"max_budget_seconds must be > 0, got {max_budget_seconds}")
        self.path = path
        self.host = host
        self.port = port
        self.default_budget_seconds = default_budget_seconds
        self.max_budget_seconds = max_budget_seconds
        self.pool = SessionPool(path, sessions, buffer_pages=buffer_pages,
                                store_factory=store_factory)
        self.admission = AdmissionController(
            max_concurrency=sessions, max_queue=max_queue,
            queue_timeout_seconds=queue_timeout_seconds,
            retry_after_seconds=retry_after_seconds)
        self.policy = DegradationPolicy(
            degrade_at=degrade_at,
            degraded_max_regions=degraded_max_regions)
        self.trace_dump_path = trace_dump_path
        self.draining = False
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "WalrusServer":
        """Bind and serve in a background thread.

        Bind failures surface as :class:`ServerError` naming the
        address.  Starting a started server is an error.
        """
        if self._server is not None:
            raise ServerError("server is already running")
        handler = type("_BoundQueryHandler", (_QueryHandler,),
                       {"walrus": self})
        try:
            self._server = _DrainingHTTPServer((self.host, self.port),
                                               handler)
        except OSError as error:
            raise ServerError(
                f"query server cannot bind {self.host}:{self.port}: "
                f"{error}") from error
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="walrus-query-server", daemon=True)
        self._thread.start()
        events = get_events()
        if events.enabled:
            events.emit("server_start", {
                "host": self.address[0], "port": self.address[1],
                "sessions": self.pool.size,
                "max_queue": self.admission.max_queue,
            })
        return self

    @property
    def running(self) -> bool:
        """Whether the serve thread is active."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        if self._server is None:
            raise ServerError("server is not running")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def url(self, path: str = "") -> str:
        """Absolute URL of ``path`` on the bound address."""
        host, port = self.address
        return f"http://{host}:{port}{path}"

    def stop(self) -> None:
        """Drain and shut down (idempotent).

        New work is refused (``503 draining``), the accept loop halts,
        in-flight handler threads are joined (their sockets carry
        timeouts, so the join is bounded), then the reader sessions
        close.
        """
        self.draining = True
        server, thread = self._server, self._thread
        self._server, self._thread = None, None
        if server is not None:
            server.shutdown()
            server.server_close()  # joins in-flight handler threads
        if thread is not None:
            thread.join(timeout=SOCKET_TIMEOUT)
        self.pool.close()
        if server is not None:
            events = get_events()
            if events.enabled:
                events.emit("server_stop", {
                    "admitted_total": self.admission.admitted_total,
                    "rejected_total": self.admission.rejected_total,
                })

    def serve_until_signal(self) -> str:
        """Block until SIGTERM/SIGINT, then drain.  Returns the signal
        name.  Call from the main thread after :meth:`start`.

        SIGUSR2 does *not* stop the daemon: it dumps the tracer's
        flight recorder to :attr:`trace_dump_path` (when configured)
        so a stuck or slow production instance can be inspected
        without restarting it.
        """
        stop_event = threading.Event()
        received: list[str] = []

        def _handler(signum: int, frame: object) -> None:
            received.append(signal.Signals(signum).name)
            stop_event.set()

        def _dump_handler(signum: int, frame: object) -> None:
            self.write_trace_dump()

        previous = {sig: signal.signal(sig, _handler)
                    for sig in (signal.SIGTERM, signal.SIGINT)}
        previous[signal.SIGUSR2] = signal.signal(signal.SIGUSR2,
                                                 _dump_handler)
        try:
            while not stop_event.wait(timeout=1.0):
                pass
        finally:
            for sig, old in previous.items():
                signal.signal(sig, old)
        self.stop()
        return received[0] if received else "unknown"

    def __enter__(self) -> "WalrusServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- request handling ------------------------------------------------
    def debug_traces(self) -> dict[str, Any]:
        """The ``/debug/traces`` payload: the process tracer's
        flight-recorder dump (always-on tail sampling — retained
        traces survive even at a 0.0 head-sampling rate when they were
        slow, deadline-exceeded or errored)."""
        return get_tracer().recorder.dump()

    def write_trace_dump(self) -> str | None:
        """Write the flight-recorder dump to :attr:`trace_dump_path`.

        Returns the path written, or ``None`` when no dump path is
        configured.  Never raises: a failed diagnostic dump (disk
        full, permissions) must not take down the daemon — the error
        is recorded as a ``fault`` event instead.
        """
        if self.trace_dump_path is None:
            return None
        try:
            payload = json.dumps(self.debug_traces(), sort_keys=True,
                                 indent=2)
            with open(self.trace_dump_path, "w", encoding="utf-8") \
                    as stream:
                stream.write(payload + "\n")
        except OSError as error:
            events = get_events()
            if events.enabled:
                events.emit("fault", {
                    "kind": "trace_dump_failed",
                    "path": self.trace_dump_path,
                    "detail": str(error),
                })
            return None
        return self.trace_dump_path

    def stats(self) -> dict[str, Any]:
        """The ``/stats`` payload."""
        return {
            "database": self.path,
            "sessions": self.pool.size,
            "idle_sessions": self.pool.idle,
            "generations": self.pool.generations(),
            "snapshot_refreshes": self.pool.refreshes,
            "admission": self.admission.snapshot(),
            "degradation": self.policy.describe(),
            "draining": self.draining,
            "default_budget_seconds": self.default_budget_seconds,
            "max_budget_seconds": self.max_budget_seconds,
        }

    def _budget(self, body: dict[str, Any]) -> float | None:
        raw = body.get("budget_seconds", self.default_budget_seconds)
        if raw is None:
            return None
        if not isinstance(raw, (int, float)) or isinstance(raw, bool) \
                or raw <= 0:
            raise _BadRequest(
                f"budget_seconds must be a positive number, got {raw!r}")
        return min(float(raw), self.max_budget_seconds)

    @staticmethod
    def _query_parameters(body: dict[str, Any]) -> QueryParameters | None:
        raw = body.get("params")
        if raw is None:
            return None
        if not isinstance(raw, dict):
            raise _BadRequest("params must be a JSON object")
        try:
            return QueryParameters(**raw)
        except (TypeError, ParameterError) as error:
            raise _BadRequest(f"bad query parameters: {error}") from error

    @staticmethod
    def _requested_max_regions(body: dict[str, Any]) -> int | None:
        raw = body.get("max_regions")
        if raw is None:
            return None
        if not isinstance(raw, int) or isinstance(raw, bool) or raw < 1:
            raise _BadRequest(
                f"max_regions must be a positive integer, got {raw!r}")
        return raw

    @staticmethod
    def _decode_image(body: dict[str, Any]) -> tuple[bytes, str]:
        encoded = body.get("image")
        if not isinstance(encoded, str) or not encoded:
            raise _BadRequest("image (base64 string) is required")
        suffix = body.get("format", ".ppm")
        if suffix not in ACCEPTED_FORMATS:
            raise _BadRequest(
                f"format must be one of {ACCEPTED_FORMATS}, got {suffix!r}")
        try:
            blob = base64.b64decode(encoded, validate=True)
        except (binascii.Error, ValueError) as error:
            raise _BadRequest(f"image is not valid base64: {error}") \
                from error
        return blob, suffix

    def _prepare_query(self, body: dict[str, Any]) -> _PreparedQuery:
        """Decode and admit-adjust one query body: base64 → codec →
        :class:`Image`, parameter overrides, and the degradation cap.
        Raises :class:`_BadRequest` on any malformed field."""
        blob, suffix = self._decode_image(body)
        query_params = self._query_parameters(body)
        explain = bool(body.get("explain", False))
        requested_cap = self._requested_max_regions(body)
        cap = self.policy.max_regions(self.admission, requested_cap)
        degraded = cap is not None and cap != requested_cap

        descriptor, image_path = tempfile.mkstemp(suffix=suffix,
                                                  prefix="walrus-query-")
        try:
            with os.fdopen(descriptor, "wb") as stream:
                stream.write(blob)
            try:
                image = read_image(image_path)
            except CodecError as error:
                raise _BadRequest(f"undecodable image: {error}") from error
        finally:
            os.unlink(image_path)
        return _PreparedQuery(image, query_params, explain, cap, degraded)

    def _run_query(self, body: dict[str, Any],
                   deadline: Deadline | None) -> dict[str, Any]:
        """Decode, admit-adjust and execute one query body (the caller
        already holds the admission slot)."""
        prepared = self._prepare_query(body)
        watch = Stopwatch()
        session = self.pool.acquire(timeout=self.max_budget_seconds)
        try:
            result = session.query(prepared.image, prepared.query_params,
                                   explain=prepared.explain,
                                   deadline=deadline,
                                   max_regions=prepared.cap)
            generation = session.generation
        finally:
            self.pool.release(session)
        return self._render_result(result, generation=generation,
                                   degraded=prepared.degraded,
                                   cap=prepared.cap, elapsed=watch.elapsed,
                                   explain=prepared.explain)

    @staticmethod
    def _render_result(result: QueryResult, *, generation: int,
                       degraded: bool, cap: int | None, elapsed: float,
                       explain: bool) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "matches": [
                {"image_id": match.image_id, "name": match.name,
                 "similarity": match.similarity}
                for match in result.matches
            ],
            "stats": {
                "query_regions": result.stats.query_regions,
                "regions_retrieved": result.stats.regions_retrieved,
                "candidate_images": result.stats.candidate_images,
                "elapsed_seconds": result.stats.elapsed_seconds,
            },
            "generation": generation,
            "degraded": degraded,
            "max_regions": cap,
            "elapsed_seconds": elapsed,
        }
        if explain and result.report is not None:
            payload["report"] = result.report.to_dict()
        return payload

    def _render_outcome(self, outcome: Any, item: _PreparedQuery, *,
                        generation: int) -> dict[str, Any]:
        """Render one ``query_batch`` outcome — a result payload or an
        in-place error object (``return_exceptions=True`` hands back
        :class:`WalrusError` instances for failed items)."""
        if isinstance(outcome, QueryResult):
            return self._render_result(
                outcome, generation=generation, degraded=item.degraded,
                cap=item.cap, elapsed=outcome.stats.elapsed_seconds,
                explain=item.explain)
        if isinstance(outcome, DeadlineExceededError):
            return {
                "error": "deadline_exceeded",
                "detail": str(outcome),
                "budget_seconds": outcome.budget_seconds,
                "elapsed_seconds": outcome.elapsed_seconds,
                "context": outcome.context,
            }
        return {"error": "internal", "detail": str(outcome),
                "kind": type(outcome).__name__}

    def _observe(self, endpoint: str, status: str, seconds: float) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(f"server.requests.{status}").inc()
            metrics.histogram("server.request_seconds").observe(seconds)
        events = get_events()
        if events.enabled:
            events.emit("server_request", {
                "endpoint": endpoint, "status": status,
                "seconds": seconds,
                "active": self.admission.active,
                "waiting": self.admission.waiting,
            })

    def handle_query(self, body: dict[str, Any], *,
                     parent: SpanContext | None = None) -> dict[str, Any]:
        """Execute ``POST /query``: admit, budget, run, observe.

        ``parent`` is the caller's parsed ``traceparent`` context (or
        ``None``); the whole request runs under a ``server.request``
        span so errors and deadline overruns stamp the span status —
        which is what the flight recorder's force-retention keys on.
        """
        watch = Stopwatch()
        status = "ok"
        with get_tracer().span("server.request", parent=parent) as span:
            if span.recording:
                span.set_attribute("endpoint", "/query")
            try:
                budget = self._budget(body)
                with self.admission.slot():
                    deadline = (Deadline(budget) if budget is not None
                                else None)
                    return self._run_query(body, deadline)
            except _BadRequest:
                status = "bad_request"
                raise
            except OverloadedError:
                status = "overloaded"
                raise
            except DeadlineExceededError:
                status = "deadline_exceeded"
                raise
            except WalrusError:
                status = "error"
                raise
            finally:
                span.set_attribute("request.status", status)
                self._observe("/query", status, watch.elapsed)

    def handle_batch(self, body: dict[str, Any], *,
                     parent: SpanContext | None = None) -> dict[str, Any]:
        """Execute ``POST /query/batch``: one admission slot, one
        shared deadline (when ``budget_seconds`` is given at the top
        level), per-item outcomes.

        Per-item failures are reported in place — one bad image must
        not void its siblings' answers; only overload (the slot) or a
        malformed envelope fails the whole batch.

        All decodable items run on ONE reader session via
        :meth:`ReaderSession.query_batch`: every answer comes from the
        same pinned snapshot generation, and identical ``(region,
        epsilon, metric)`` probes across items execute once and are
        shared (``probes_shared`` in each item's EXPLAIN report).
        """
        queries = body.get("queries")
        if not isinstance(queries, list) or not queries:
            raise _BadRequest("queries must be a non-empty JSON array")
        if len(queries) > 64:
            raise _BadRequest(
                f"batch of {len(queries)} exceeds the 64-query limit")
        watch = Stopwatch()
        status = "ok"
        with get_tracer().span("server.request", parent=parent) as span:
            if span.recording:
                span.set_attribute("endpoint", "/query/batch")
                span.set_attribute("queries", len(queries))
            try:
                budget = self._budget(body)
                with self.admission.slot():
                    deadline = (Deadline(budget) if budget is not None
                                else None)
                    results: list[dict[str, Any]] = []
                    runnable: list[tuple[int, _PreparedQuery]] = []
                    for index, item in enumerate(queries):
                        if not isinstance(item, dict):
                            results.append(
                                {"error": "bad_request",
                                 "detail": "query must be an object"})
                            continue
                        try:
                            runnable.append((index,
                                             self._prepare_query(item)))
                            results.append({})  # placeholder, filled below
                        except _BadRequest as error:
                            results.append({"error": "bad_request",
                                            "detail": str(error)})
                    if runnable:
                        session = self.pool.acquire(
                            timeout=self.max_budget_seconds)
                        try:
                            outcomes = session.query_batch(
                                [item.image for _, item in runnable],
                                [item.query_params for _, item in runnable],
                                explain=[item.explain
                                         for _, item in runnable],
                                deadline=deadline,
                                max_regions=[item.cap
                                             for _, item in runnable],
                                return_exceptions=True)
                            generation = session.generation
                        finally:
                            self.pool.release(session)
                        for (index, item), outcome in zip(runnable,
                                                          outcomes):
                            results[index] = self._render_outcome(
                                outcome, item, generation=generation)
                    return {"results": results,
                            "elapsed_seconds": watch.elapsed}
            except _BadRequest:
                status = "bad_request"
                raise
            except OverloadedError:
                status = "overloaded"
                raise
            except WalrusError:
                status = "error"
                raise
            finally:
                span.set_attribute("request.status", status)
                self._observe("/query/batch", status, watch.elapsed)
