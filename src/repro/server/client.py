"""A retrying HTTP client for the ``walrus serve`` daemon.

:class:`WalrusClient` wraps the daemon's JSON API for the CLI and the
load harness.  Its transport policy encodes how a well-behaved caller
treats an overloaded or flaky server:

* **Retryable** outcomes — connection failures, ``503`` (overloaded /
  draining) — are retried with jittered exponential backoff
  (:class:`RetryPolicy`); a ``Retry-After`` header overrides the
  computed delay when it is longer.
* **Terminal** outcomes — ``400`` (the request is wrong), ``504``
  (the server already spent the request's budget) and other ``4xx`` /
  ``5xx`` — surface immediately as structured exceptions carrying the
  server's JSON payload.
* The whole retry loop is capped by a wall-clock **budget**, so a
  dead server costs a bounded wait, not ``attempts x timeout``.

Jitter comes from a seeded ``random.Random`` (determinism rule R002):
two clients with different seeds desynchronize their retries, one
client replays identically.

With the process tracer enabled, :meth:`WalrusClient.request` runs
under a ``client.request`` span and every HTTP exchange carries the
active span as a W3C ``traceparent`` header, so the server's spans
join the client's trace — one trace id from the caller's code down to
the R*-tree probes.
"""

from __future__ import annotations

import base64
import json
import os
import random
import time
import urllib.error
import urllib.request
from typing import Any

from repro.exceptions import (DeadlineExceededError, OverloadedError,
                              ServerError)
from repro.observability import (Stopwatch, current_span,
                                 format_traceparent, get_tracer)


class RetryPolicy:
    """Backoff schedule for retryable failures.

    Parameters
    ----------
    attempts:
        Total tries (first call included).
    base_delay_seconds, max_delay_seconds:
        Exponential backoff: try ``k`` (0-based) waits
        ``base * 2**k`` capped at ``max``, plus up to 25% jitter.
    budget_seconds:
        Wall-clock cap over all tries and waits.
    seed:
        Seed for the jitter RNG.
    """

    def __init__(self, *, attempts: int = 4,
                 base_delay_seconds: float = 0.05,
                 max_delay_seconds: float = 2.0,
                 budget_seconds: float = 30.0, seed: int = 0) -> None:
        if attempts < 1:
            raise ServerError(f"attempts must be >= 1, got {attempts}")
        if base_delay_seconds <= 0 or max_delay_seconds <= 0:
            raise ServerError("backoff delays must be > 0")
        if budget_seconds <= 0:
            raise ServerError(
                f"budget_seconds must be > 0, got {budget_seconds}")
        self.attempts = attempts
        self.base_delay_seconds = base_delay_seconds
        self.max_delay_seconds = max_delay_seconds
        self.budget_seconds = budget_seconds
        self._rng = random.Random(seed)

    def delay(self, attempt: int, retry_after: float | None = None) -> float:
        """Seconds to wait after failed try ``attempt`` (0-based)."""
        backoff = min(self.base_delay_seconds * (2 ** attempt),
                      self.max_delay_seconds)
        backoff *= 1.0 + 0.25 * self._rng.random()
        if retry_after is not None:
            backoff = max(backoff, retry_after)
        return backoff


class RequestFailed(ServerError):
    """A terminal (non-retryable) HTTP error from the daemon.

    Carries the HTTP ``status`` and the server's decoded JSON
    ``payload`` (``{}`` when the body was not JSON).
    """

    def __init__(self, message: str, *, status: int,
                 payload: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload if payload is not None else {}


class RetriesExhausted(ServerError):
    """Every allowed try failed retryably (server down or shedding).

    ``last_error`` is the final failure's description and ``tries``
    how many were made.
    """

    def __init__(self, message: str, *, tries: int,
                 last_error: str) -> None:
        super().__init__(message)
        self.tries = tries
        self.last_error = last_error


def _decode_payload(body: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return {}
    return payload if isinstance(payload, dict) else {}


class WalrusClient:
    """JSON client for one daemon, with retry/backoff built in.

    Parameters
    ----------
    base_url:
        E.g. ``http://127.0.0.1:8963`` (no trailing slash needed).
    timeout_seconds:
        Per-request socket timeout.
    retry:
        The :class:`RetryPolicy`; ``None`` builds the default.
    """

    def __init__(self, base_url: str, *, timeout_seconds: float = 10.0,
                 retry: RetryPolicy | None = None) -> None:
        if timeout_seconds <= 0:
            raise ServerError(
                f"timeout_seconds must be > 0, got {timeout_seconds}")
        self.base_url = base_url.rstrip("/")
        self.timeout_seconds = timeout_seconds
        self.retry = retry if retry is not None else RetryPolicy()

    # -- transport -------------------------------------------------------
    def _once(self, path: str,
              payload: dict[str, Any] | None) -> dict[str, Any]:
        """One HTTP exchange; raises per the retry taxonomy."""
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        span = current_span()
        if span is not None:
            headers["traceparent"] = format_traceparent(span.context)
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json; charset=utf-8"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method="POST" if data else "GET")
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout_seconds) as response:
                return _decode_payload(response.read())
        except urllib.error.HTTPError as error:
            body = _decode_payload(error.read())
            if error.code == 503:
                retry_after = body.get("retry_after_seconds")
                header = error.headers.get("Retry-After")
                if retry_after is None and header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
                raise OverloadedError(
                    f"{url}: {body.get('error', 'overloaded')}",
                    retry_after_seconds=(float(retry_after)
                                         if retry_after is not None
                                         else 1.0)) from error
            if error.code == 504:
                raise DeadlineExceededError(
                    f"{url}: server exceeded the request deadline",
                    budget_seconds=float(body.get("budget_seconds", 0.0)),
                    elapsed_seconds=float(body.get("elapsed_seconds", 0.0)),
                    context=str(body.get("context", ""))) from error
            raise RequestFailed(
                f"{url} returned {error.code}: "
                f"{body.get('detail', body.get('error', 'error'))}",
                status=error.code, payload=body) from error

    def request(self, path: str,
                payload: dict[str, Any] | None = None, *,
                max_tries: int | None = None) -> dict[str, Any]:
        """Exchange with retries: connection errors and ``503`` back
        off and try again (within the policy's attempt count and
        wall-clock budget); everything else raises immediately."""
        policy = self.retry
        attempts = policy.attempts if max_tries is None else max_tries
        watch = Stopwatch()
        last_error = "never attempted"
        tries = 0
        with get_tracer().span("client.request") as span:
            if span.recording:
                span.set_attribute("path", path)
            for attempt in range(attempts):
                tries += 1
                retry_after: float | None = None
                try:
                    result = self._once(path, payload)
                    if span.recording:
                        span.set_attribute("tries", tries)
                    return result
                except OverloadedError as error:
                    last_error = str(error)
                    retry_after = error.retry_after_seconds
                except urllib.error.URLError as error:
                    last_error = f"connection failed: {error.reason}"
                if span.recording:
                    span.add_event("retry", attempt=attempt,
                                   detail=last_error)
                delay = policy.delay(attempt, retry_after)
                if attempt + 1 >= attempts \
                        or watch.elapsed + delay > policy.budget_seconds:
                    break
                time.sleep(delay)
            raise RetriesExhausted(
                f"{self.base_url + path}: no success after {tries} tries "
                f"({watch.elapsed:.2f}s): {last_error}",
                tries=tries, last_error=last_error)

    # -- API surface -----------------------------------------------------
    @staticmethod
    def encode_image(path: str | os.PathLike[str]) -> dict[str, str]:
        """Read an image file into the API's transport fields."""
        suffix = os.path.splitext(os.fspath(path))[1].lower()
        with open(path, "rb") as stream:
            blob = stream.read()
        return {"image": base64.b64encode(blob).decode("ascii"),
                "format": suffix}

    def query(self, image_path: str | os.PathLike[str], *,
              params: dict[str, Any] | None = None,
              budget_seconds: float | None = None,
              max_regions: int | None = None,
              explain: bool = False) -> dict[str, Any]:
        """``POST /query`` for an image file on disk."""
        body: dict[str, Any] = self.encode_image(image_path)
        if params is not None:
            body["params"] = params
        if budget_seconds is not None:
            body["budget_seconds"] = budget_seconds
        if max_regions is not None:
            body["max_regions"] = max_regions
        if explain:
            body["explain"] = True
        return self.request("/query", body)

    def query_body(self, body: dict[str, Any]) -> dict[str, Any]:
        """``POST /query`` with a caller-built body (load harness)."""
        return self.request("/query", body)

    def query_batch(self, bodies: list[dict[str, Any]], *,
                    budget_seconds: float | None = None) -> dict[str, Any]:
        """``POST /query/batch``."""
        envelope: dict[str, Any] = {"queries": bodies}
        if budget_seconds is not None:
            envelope["budget_seconds"] = budget_seconds
        return self.request("/query/batch", envelope)

    def healthz(self) -> dict[str, Any]:
        """``GET /healthz`` (retried like any request)."""
        return self.request("/healthz")

    def stats(self) -> dict[str, Any]:
        """``GET /stats``."""
        return self.request("/stats")
