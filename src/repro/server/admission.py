"""Admission control and graceful degradation for the query daemon.

A threaded HTTP server with no admission policy converts overload
into unbounded thread pile-up and collapsing tail latency.  The
:class:`AdmissionController` bounds both dimensions explicitly:

* at most ``max_concurrency`` requests hold an execution slot at once
  (matched to the reader-session pool size), and
* at most ``max_queue`` further requests may *wait* for a slot, each
  for at most ``queue_timeout_seconds``.

Anything beyond that is shed immediately with
:class:`~repro.exceptions.OverloadedError`, which the HTTP layer turns
into a structured ``503`` with a ``Retry-After`` hint — load the
server cannot absorb surfaces as an explicit, retryable signal rather
than latency.

:class:`DegradationPolicy` is the softer lever pulled *before*
rejection: when the wait queue is busy, queries run with a capped
``max_regions`` (probing only the largest query regions), trading a
little recall for bounded work per request.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator
from contextlib import contextmanager

from repro.exceptions import InvalidParameterError, OverloadedError
from repro.observability import get_tracer


class AdmissionController:
    """Bounded concurrency + bounded wait queue for one server.

    Parameters
    ----------
    max_concurrency:
        Execution slots; size this to the reader-session pool.
    max_queue:
        Requests allowed to wait for a slot before new arrivals are
        rejected outright.
    queue_timeout_seconds:
        Longest a queued request waits for a slot before it, too, is
        rejected.
    retry_after_seconds:
        The hint carried on rejections (the HTTP ``Retry-After``).
    """

    def __init__(self, *, max_concurrency: int = 4, max_queue: int = 16,
                 queue_timeout_seconds: float = 0.5,
                 retry_after_seconds: float = 0.5) -> None:
        if max_concurrency < 1:
            raise InvalidParameterError(
                f"max_concurrency must be >= 1, got {max_concurrency}")
        if max_queue < 0:
            raise InvalidParameterError(
                f"max_queue must be >= 0, got {max_queue}")
        if queue_timeout_seconds <= 0:
            raise InvalidParameterError(
                "queue_timeout_seconds must be > 0, "
                f"got {queue_timeout_seconds}")
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self.queue_timeout_seconds = queue_timeout_seconds
        self.retry_after_seconds = retry_after_seconds
        self._lock = threading.Lock()
        self._semaphore = threading.BoundedSemaphore(max_concurrency)
        self._active = 0  # guarded-by: _lock
        self._waiting = 0  # guarded-by: _lock
        self._admitted_total = 0  # guarded-by: _lock
        self._rejected_total = 0  # guarded-by: _lock

    # -- introspection ---------------------------------------------------
    @property
    def active(self) -> int:
        """Requests currently holding an execution slot."""
        with self._lock:
            return self._active

    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        with self._lock:
            return self._waiting

    @property
    def admitted_total(self) -> int:
        """Requests admitted over the controller's lifetime."""
        with self._lock:
            return self._admitted_total

    @property
    def rejected_total(self) -> int:
        """Requests shed over the controller's lifetime."""
        with self._lock:
            return self._rejected_total

    def load(self) -> float:
        """Demand as a fraction of capacity: ``(active + waiting) /
        max_concurrency``; above 1.0 means a backlog is queued."""
        with self._lock:
            return (self._active + self._waiting) / self.max_concurrency

    def snapshot(self) -> dict[str, int | float]:
        """Current counters as a plain dict (for ``/stats``)."""
        with self._lock:
            return {
                "active": self._active,
                "waiting": self._waiting,
                "max_concurrency": self.max_concurrency,
                "max_queue": self.max_queue,
                "admitted_total": self._admitted_total,
                "rejected_total": self._rejected_total,
            }

    # -- the gate --------------------------------------------------------
    def try_acquire(self) -> None:
        """Take an execution slot or raise :class:`OverloadedError`.

        Never blocks longer than ``queue_timeout_seconds``.  Callers
        must pair with :meth:`release`; prefer :meth:`slot`.

        When the process tracer is on, the acquisition runs under an
        ``admission.acquire`` span whose duration *is* the queue wait
        — the span a trace viewer reads to tell "the query was slow"
        from "the query waited behind other queries".
        """
        with get_tracer().span("admission.acquire") as span:
            # Fast path: a free slot admits immediately without
            # touching the wait queue — so ``max_queue=0`` means "no
            # waiting", not "no admission".
            if self._semaphore.acquire(blocking=False):
                with self._lock:
                    self._active += 1
                    self._admitted_total += 1
                if span.recording:
                    span.set_attribute("queued", False)
                return
            with self._lock:
                if self._waiting >= self.max_queue:
                    self._rejected_total += 1
                    raise OverloadedError(
                        f"request queue full ({self.max_queue} waiting)",
                        retry_after_seconds=self.retry_after_seconds)
                self._waiting += 1
            if span.recording:
                span.set_attribute("queued", True)
            acquired = False
            try:
                acquired = self._semaphore.acquire(
                    timeout=self.queue_timeout_seconds)
            finally:
                with self._lock:
                    self._waiting -= 1
                    if acquired:
                        self._active += 1
                        self._admitted_total += 1
                    else:
                        self._rejected_total += 1
            if not acquired:
                raise OverloadedError(
                    "no execution slot freed within "
                    f"{self.queue_timeout_seconds:.2f}s",
                    retry_after_seconds=self.retry_after_seconds)

    def release(self) -> None:
        """Return a slot taken with :meth:`try_acquire`."""
        with self._lock:
            self._active -= 1
        self._semaphore.release()

    @contextmanager
    def slot(self) -> Iterator[None]:
        """``with controller.slot(): ...`` — acquire/release pairing."""
        self.try_acquire()
        try:
            yield
        finally:
            self.release()


class DegradationPolicy:
    """Decide the per-request ``max_regions`` cap from current load.

    Parameters
    ----------
    degrade_at:
        Load fraction (see :meth:`AdmissionController.load`) at or
        above which requests run degraded.  The default ``1.0``
        degrades exactly when requests start queueing.
    degraded_max_regions:
        The ``max_regions`` cap applied to degraded requests.
    """

    def __init__(self, *, degrade_at: float = 1.0,
                 degraded_max_regions: int = 4) -> None:
        if degrade_at <= 0:
            raise InvalidParameterError(
                f"degrade_at must be > 0, got {degrade_at}")
        if degraded_max_regions < 1:
            raise InvalidParameterError(
                "degraded_max_regions must be >= 1, "
                f"got {degraded_max_regions}")
        self.degrade_at = degrade_at
        self.degraded_max_regions = degraded_max_regions

    def max_regions(self, controller: AdmissionController,
                    requested: int | None = None) -> int | None:
        """The cap for a request arriving now.

        ``requested`` is a caller-supplied cap (from the API); the
        policy only ever tightens it.  Returns ``None`` for "no cap".
        """
        cap = requested
        if controller.load() >= self.degrade_at:
            cap = (self.degraded_max_regions if cap is None
                   else min(cap, self.degraded_max_regions))
        return cap

    def describe(self) -> dict[str, Any]:
        """Policy parameters as a plain dict (for ``/stats``)."""
        return {"degrade_at": self.degrade_at,
                "degraded_max_regions": self.degraded_max_regions}
