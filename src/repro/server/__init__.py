"""The ``walrus serve`` query daemon and its client.

Layering (each module usable on its own):

* :mod:`repro.server.sessions` — :class:`ReaderSession` /
  :class:`SessionPool`: concurrent readonly snapshot readers over one
  checkpoint directory, pinned to the dual-header commit current at
  acquire.
* :mod:`repro.server.admission` — :class:`AdmissionController`
  (bounded concurrency + bounded wait queue → structured 503) and
  :class:`DegradationPolicy` (cap ``max_regions`` under load before
  shedding).
* :mod:`repro.server.app` — :class:`WalrusServer`, the HTTP/JSON
  daemon: ``POST /query``, ``POST /query/batch``, ``GET /healthz`` /
  ``/metrics`` / ``/stats``, per-request deadlines threaded down to
  R*-tree node reads, drain-on-SIGTERM.
* :mod:`repro.server.client` — :class:`WalrusClient` with jittered
  exponential backoff under an overall wall-clock budget
  (:class:`RetryPolicy`).
"""

from repro.server.admission import AdmissionController, DegradationPolicy
from repro.server.app import ACCEPTED_FORMATS, WalrusServer
from repro.server.client import (RequestFailed, RetriesExhausted,
                                 RetryPolicy, WalrusClient)
from repro.server.sessions import ReaderSession, SessionPool

__all__ = [
    "ACCEPTED_FORMATS",
    "AdmissionController",
    "DegradationPolicy",
    "ReaderSession",
    "RequestFailed",
    "RetriesExhausted",
    "RetryPolicy",
    "SessionPool",
    "WalrusClient",
    "WalrusServer",
]
