"""Retrieval-quality metrics and the evaluation harness."""

from repro.evaluation.harness import (
    QueryEvaluation,
    RetrieverEvaluation,
    baseline_ranker,
    evaluate_retriever,
    make_queries,
    walrus_ranker,
)
from repro.evaluation.metrics import (
    average_precision,
    precision_at_k,
    r_precision,
    recall_at_k,
    reciprocal_rank,
)

__all__ = [
    "QueryEvaluation",
    "RetrieverEvaluation",
    "average_precision",
    "baseline_ranker",
    "evaluate_retriever",
    "make_queries",
    "precision_at_k",
    "r_precision",
    "recall_at_k",
    "reciprocal_rank",
    "walrus_ranker",
]
