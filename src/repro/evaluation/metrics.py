"""Retrieval-quality metrics.

The paper argues quality by showing the top-14 grids of Figures 7/8 and
counting how many retrieved images are "semantically related" (7/14 for
WBIIS, 13-14/14 for WALRUS).  With the synthetic dataset's class labels
we can compute that count exactly — precision at k — plus the standard
recall and average-precision summaries.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ParameterError


def _check_k(k: int) -> None:
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")


def precision_at_k(ranked: Sequence[str], relevant: set[str],
                   k: int) -> float:
    """Fraction of the top ``k`` results that are relevant.

    If fewer than ``k`` results were returned, the missing slots count
    as misses (the retriever failed to fill the page).
    """
    _check_k(k)
    hits = sum(1 for name in ranked[:k] if name in relevant)
    return hits / k


def recall_at_k(ranked: Sequence[str], relevant: set[str], k: int) -> float:
    """Fraction of all relevant images found in the top ``k``."""
    _check_k(k)
    if not relevant:
        raise ParameterError("recall undefined with an empty relevant set")
    hits = sum(1 for name in ranked[:k] if name in relevant)
    return hits / len(relevant)


def average_precision(ranked: Sequence[str], relevant: set[str]) -> float:
    """Mean of precision@rank over the ranks of relevant results.

    Relevant images never retrieved contribute zero, so the score is
    comparable across retrievers that return different list lengths.
    """
    if not relevant:
        raise ParameterError("AP undefined with an empty relevant set")
    hits = 0
    total = 0.0
    for rank, name in enumerate(ranked, start=1):
        if name in relevant:
            hits += 1
            total += hits / rank
    return total / len(relevant)


def reciprocal_rank(ranked: Sequence[str], relevant: set[str]) -> float:
    """1 / rank of the first relevant result (0 if none retrieved)."""
    for rank, name in enumerate(ranked, start=1):
        if name in relevant:
            return 1.0 / rank
    return 0.0


def r_precision(ranked: Sequence[str], relevant: set[str]) -> float:
    """Precision at ``k = |relevant|``."""
    if not relevant:
        raise ParameterError("R-precision undefined with an empty relevant set")
    return precision_at_k(ranked, relevant, len(relevant))
