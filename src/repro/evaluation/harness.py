"""Retrieval evaluation harness: run queries, score against ground truth.

Drives any retriever (WALRUS or a baseline) over a
:class:`~repro.datasets.generator.SyntheticDataset`, issuing held-out
query images per class and aggregating precision/recall/AP.  This is
the quantitative version of the paper's Figure 7 vs Figure 8
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.baselines.base import SignatureRetriever
from repro.core.database import WalrusDatabase
from repro.core.parameters import QueryParameters
from repro.datasets.generator import SyntheticDataset, render_scene
from repro.evaluation.metrics import average_precision, precision_at_k, recall_at_k
from repro.exceptions import ParameterError
from repro.imaging.image import Image
from repro.observability import Stopwatch

#: A ranking function: query image -> names best-first.
RankFunction = Callable[[Image], list[str]]


@dataclass(frozen=True)
class QueryEvaluation:
    """Scores for a single query."""

    label: str
    query_name: str
    precision: float
    recall: float
    ap: float
    elapsed_seconds: float
    ranked: tuple[str, ...]


@dataclass(frozen=True)
class RetrieverEvaluation:
    """Aggregated scores for one retriever over all queries."""

    retriever: str
    k: int
    queries: tuple[QueryEvaluation, ...]

    @property
    def mean_precision(self) -> float:
        return sum(q.precision for q in self.queries) / len(self.queries)

    @property
    def mean_recall(self) -> float:
        return sum(q.recall for q in self.queries) / len(self.queries)

    @property
    def mean_ap(self) -> float:
        return sum(q.ap for q in self.queries) / len(self.queries)

    @property
    def mean_seconds(self) -> float:
        return sum(q.elapsed_seconds for q in self.queries) / len(self.queries)

    def by_label(self) -> dict[str, float]:
        """Mean precision@k per scene class."""
        sums: dict[str, list[float]] = {}
        for q in self.queries:
            sums.setdefault(q.label, []).append(q.precision)
        return {label: sum(values) / len(values)
                for label, values in sums.items()}


def walrus_ranker(database: WalrusDatabase,
                  query_params: QueryParameters | None = None
                  ) -> RankFunction:
    """Adapter: a :class:`WalrusDatabase` as a ranking function."""
    params = query_params if query_params is not None else QueryParameters()

    def rank(image: Image) -> list[str]:
        return database.query(image, params).names()

    return rank


def baseline_ranker(retriever: SignatureRetriever) -> RankFunction:
    """Adapter: any ``SignatureRetriever`` as a ranking function."""

    def rank(image: Image) -> list[str]:
        return [name for name, _ in retriever.rank(image)]

    return rank


def make_queries(dataset: SyntheticDataset, *, per_class: int = 1,
                 seed_offset: int = 10_000) -> list[tuple[str, Image]]:
    """Render held-out query images, ``per_class`` for each class.

    Query seeds are offset away from the dataset's seeds so queries are
    never pixel-identical to database images.
    """
    if per_class < 1:
        raise ParameterError("per_class must be >= 1")
    queries: list[tuple[str, Image]] = []
    for label in dataset.spec.classes:
        for index in range(per_class):
            seed = dataset.spec.seed + seed_offset + index * 101
            image = render_scene(label, seed,
                                 name=f"query-{label}-{index}")
            queries.append((label, image))
    return queries


def evaluate_retriever(name: str, rank: RankFunction,
                       dataset: SyntheticDataset,
                       queries: Sequence[tuple[str, Image]], *,
                       k: int = 14) -> RetrieverEvaluation:
    """Run every query through ``rank`` and score against ground truth.

    ``k = 14`` mirrors the paper's top-14 result grids.
    """
    if not queries:
        raise ParameterError("no queries supplied")
    evaluations: list[QueryEvaluation] = []
    for label, image in queries:
        relevant = dataset.relevant_names(label)
        watch = Stopwatch()
        ranked = rank(image)
        elapsed = watch.elapsed
        evaluations.append(QueryEvaluation(
            label=label,
            query_name=image.name,
            precision=precision_at_k(ranked, relevant, k),
            recall=recall_at_k(ranked, relevant, k),
            ap=average_precision(ranked, relevant),
            elapsed_seconds=elapsed,
            ranked=tuple(ranked[:k]),
        ))
    return RetrieverEvaluation(name, k, tuple(evaluations))
