"""Single-signature comparators: WBIIS, Jacobs-Haar, color histogram."""

from repro.baselines.base import Retriever, SignatureRetriever
from repro.baselines.histogram import HistogramRetriever
from repro.baselines.jacobs import JFS_WEIGHTS_YIQ, JacobsRetriever
from repro.baselines.wbiis import WbiisRetriever, WbiisSignature

__all__ = [
    "HistogramRetriever",
    "JFS_WEIGHTS_YIQ",
    "JacobsRetriever",
    "Retriever",
    "SignatureRetriever",
    "WbiisRetriever",
    "WbiisSignature",
]
