"""Jacobs et al. [JFS95] baseline: truncated, quantized Haar signatures.

"Fast multiresolution image querying": rescale the image, take the
standard-decomposition Haar transform per channel, keep only the ``m``
largest-magnitude detail coefficients and record just their *signs*
(+1/-1), plus the overall average color.  The image metric scores the
difference of averages and rewards positions where the query and target
keep a coefficient of the same sign, with weights that depend on the
coefficient's scale bin.

The default weights are the paper's tuned YIQ values; they are
constructor parameters because Jacobs et al. themselves retuned per
setting.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SignatureRetriever
from repro.color.spaces import convert
from repro.exceptions import ParameterError
from repro.imaging.image import Image
from repro.wavelets.haar import haar_2d_standard

#: Jacobs et al.'s tuned weights for YIQ, indexed ``[channel][bin]``
#: (their Table for scanned queries).
JFS_WEIGHTS_YIQ = (
    (5.00, 0.83, 1.01, 0.52, 0.47, 0.30),
    (19.21, 1.26, 0.44, 0.53, 0.28, 0.14),
    (34.37, 0.36, 0.45, 0.14, 0.18, 0.27),
)


def _scale_bin(i: int, j: int) -> int:
    """The weight bin of coefficient position ``(i, j)``:
    ``min(max(i, j), 5)`` with bin 0 reserved for the average."""
    return min(max(i, j), 5)


class JacobsSignature:
    """Average color + sparse signed coefficient set per channel."""

    __slots__ = ("averages", "positives", "negatives")

    def __init__(self, averages: np.ndarray,
                 positives: list[set[tuple[int, int]]],
                 negatives: list[set[tuple[int, int]]]) -> None:
        self.averages = averages      # (channels,) overall averages
        self.positives = positives    # per channel: positions kept as +1
        self.negatives = negatives    # per channel: positions kept as -1


class JacobsRetriever(SignatureRetriever):
    """Truncated/quantized Haar retrieval.

    Parameters
    ----------
    side:
        Rescale target (power of two; 128 in the paper).
    kept_coefficients:
        ``m`` largest-magnitude detail coefficients kept per channel
        (the paper finds 40-60 works best).
    color_space:
        Working space; the paper prefers YIQ.
    weights:
        ``[channel][bin]`` score weights (defaults to the paper's YIQ
        values).
    """

    def __init__(self, *, side: int = 128, kept_coefficients: int = 60,
                 color_space: str = "yiq",
                 weights: tuple[tuple[float, ...], ...] = JFS_WEIGHTS_YIQ
                 ) -> None:
        super().__init__()
        if side & (side - 1) or side < 8:
            raise ParameterError(f"side must be a power of two >= 8, got {side}")
        if kept_coefficients < 1:
            raise ParameterError("kept_coefficients must be >= 1")
        if len(weights) != 3 or any(len(row) != 6 for row in weights):
            raise ParameterError("weights must be 3 channels x 6 bins")
        self.side = side
        self.kept_coefficients = kept_coefficients
        self.color_space = color_space
        self.weights = tuple(tuple(float(w) for w in row) for row in weights)

    def _signature(self, image: Image) -> JacobsSignature:
        working = convert(image, self.color_space)
        working = working.resize(self.side, self.side)
        averages = np.empty(3, dtype=np.float64)
        positives: list[set[tuple[int, int]]] = []
        negatives: list[set[tuple[int, int]]] = []
        for c, channel in enumerate(working.channels_iter()):
            transform = haar_2d_standard(channel)
            averages[c] = transform[0, 0]
            details = transform.copy()
            details[0, 0] = 0.0
            flat = np.abs(details).reshape(-1)
            m = min(self.kept_coefficients, flat.size - 1)
            keep = np.argpartition(flat, -m)[-m:]
            rows, cols = np.unravel_index(keep, details.shape)
            pos: set[tuple[int, int]] = set()
            neg: set[tuple[int, int]] = set()
            for i, j in zip(rows, cols):
                value = details[i, j]
                if value > 0:
                    pos.add((int(i), int(j)))
                elif value < 0:
                    neg.add((int(i), int(j)))
            positives.append(pos)
            negatives.append(neg)
        return JacobsSignature(averages, positives, negatives)

    def _distance(self, first: JacobsSignature,
                  second: JacobsSignature) -> float:
        """The [JFS95] ``L_q`` score (lower = more similar).

        ``w[c][0] * |avg_q - avg_t|`` minus the weight of every position
        where both signatures keep a coefficient of the same sign.
        """
        score = 0.0
        for c in range(3):
            weights = self.weights[c]
            score += weights[0] * abs(first.averages[c] - second.averages[c])
            for mine, theirs in ((first.positives[c], second.positives[c]),
                                 (first.negatives[c], second.negatives[c])):
                for i, j in mine & theirs:
                    score -= weights[_scale_bin(i, j)]
        return score
