"""Shared interface for the single-signature baseline retrievers.

Every baseline (WBIIS, Jacobs-Haar, color histogram) exposes the same
shape of API as :class:`~repro.core.database.WalrusDatabase` — add
images, then rank the collection against a query — so the evaluation
harness can swap retrievers freely.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.imaging.image import Image


class Retriever(Protocol):
    """Anything that can rank a database against a query image."""

    def add_image(self, image: Image) -> int:
        """Index one image; returns its id."""
        ...

    def rank(self, image: Image, k: int | None = None
             ) -> list[tuple[str, float]]:
        """Return ``(name, score)`` best-first; ``k`` caps the list."""
        ...


class SignatureRetriever:
    """Base class: stores one signature per image, ranks by distance.

    Subclasses implement :meth:`_signature` (image -> opaque signature)
    and :meth:`_distance` (pair of signatures -> float, lower = more
    similar).
    """

    def __init__(self) -> None:
        self._names: list[str] = []
        self._signatures: list[object] = []

    def add_image(self, image: Image) -> int:
        image_id = len(self._names)
        self._names.append(image.name or f"image-{image_id}")
        self._signatures.append(self._signature(image))
        return image_id

    def add_images(self, images: Iterable[Image]) -> list[int]:
        return [self.add_image(image) for image in images]

    def __len__(self) -> int:
        return len(self._names)

    def rank(self, image: Image, k: int | None = None
             ) -> list[tuple[str, float]]:
        """Rank the whole database by ascending distance to ``image``."""
        query = self._signature(image)
        scored = [(self._distance(query, signature), index)
                  for index, signature in enumerate(self._signatures)]
        scored.sort()
        if k is not None:
            scored = scored[:k]
        return [(self._names[index], distance)
                for distance, index in scored]

    # -- to be provided by subclasses -----------------------------------
    def _signature(self, image: Image) -> object:
        raise NotImplementedError

    def _distance(self, first: object, second: object) -> float:
        raise NotImplementedError
