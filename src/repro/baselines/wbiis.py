"""WBIIS baseline [WWFW98]: Daubechies-wavelet single-signature retrieval.

The comparator of the paper's Section 6.4.  Per image, WBIIS stores the
low-frequency blocks of 4- and 5-level Daubechies-4 transforms of a
fixed-size rescale, plus the standard deviation of the coarsest block,
and searches in three steps:

1. *Variance screening* — drop candidates whose coarse-band standard
   deviation differs from the query's by more than a relative margin.
2. *Coarse match* — rank survivors by weighted distance over the
   5-level ``8x8`` low block; keep the best ``refine_pool``.
3. *Fine match* — re-rank the pool with the 4-level ``16x16`` block.

Like the original, a single global signature per image makes the method
sensitive to where objects sit in the frame — the failure mode Figure 7
exhibits and WALRUS fixes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SignatureRetriever
from repro.color.spaces import convert
from repro.exceptions import ParameterError
from repro.imaging.image import Image
from repro.wavelets.daubechies import daubechies_2d


class WbiisSignature:
    """Per-image WBIIS feature bundle (see module docstring)."""

    __slots__ = ("coarse", "fine", "deviation")

    def __init__(self, coarse: np.ndarray, fine: np.ndarray,
                 deviation: float) -> None:
        self.coarse = coarse          # (channels, 8, 8) from 5 levels
        self.fine = fine              # (channels, 16, 16) from 4 levels
        self.deviation = deviation    # std-dev of the coarse luma block


class WbiisRetriever(SignatureRetriever):
    """Single-signature Daubechies retrieval with the three-step search.

    Parameters
    ----------
    side:
        Rescale target (images become ``side x side``; 128 as in WBIIS).
    color_space:
        Working color space (WBIIS used an opponent-color variant; YCC
        is the closest supported space and what WALRUS's experiments
        store).
    variance_margin:
        Step-1 relative deviation tolerance (``None`` disables
        screening).
    refine_pool:
        Number of step-2 survivors re-ranked in step 3.
    channel_weights:
        Per-channel distance weights (luma heavier, as in WBIIS).
    """

    def __init__(self, *, side: int = 128, color_space: str = "ycc",
                 variance_margin: float | None = 0.5,
                 refine_pool: int = 100,
                 channel_weights: tuple[float, ...] = (2.0, 1.0, 1.0)
                 ) -> None:
        super().__init__()
        if side & (side - 1) or side < 64:
            raise ParameterError(
                f"side must be a power of two >= 64, got {side}"
            )
        if variance_margin is not None and variance_margin <= 0:
            raise ParameterError("variance_margin must be positive or None")
        if refine_pool < 1:
            raise ParameterError("refine_pool must be >= 1")
        self.side = side
        self.color_space = color_space
        self.variance_margin = variance_margin
        self.refine_pool = refine_pool
        self.channel_weights = np.asarray(channel_weights, dtype=np.float64)

    # ------------------------------------------------------------------
    # Signature computation
    # ------------------------------------------------------------------
    def _signature(self, image: Image) -> WbiisSignature:
        working = convert(image, self.color_space)
        working = working.resize(self.side, self.side)
        channels = np.stack(list(working.channels_iter()))
        levels_fine = int(np.log2(self.side)) - 3    # 16x16 low block
        levels_coarse = levels_fine + 1              # 8x8 low block
        fine = daubechies_2d(channels, levels_fine)[:, :16, :16]
        coarse = daubechies_2d(channels, levels_coarse)[:, :8, :8]
        # The screening statistic is the deviation of the *approximation*
        # (LL) band only — always 4x4 after levels_coarse levels — not
        # of the stored 8x8 block, which also contains detail subbands.
        deviation = float(np.std(coarse[0, :4, :4]))
        return WbiisSignature(coarse.copy(), fine.copy(), deviation)

    def _block_distance(self, first: np.ndarray,
                        second: np.ndarray) -> float:
        """Channel-weighted euclidean distance between coefficient
        blocks."""
        per_channel = ((first - second) ** 2).sum(axis=(1, 2))
        return float(np.sqrt((self.channel_weights * per_channel).sum()))

    def _distance(self, first: WbiisSignature,
                  second: WbiisSignature) -> float:
        """Fine-block distance (used by the generic ranker and step 3)."""
        return self._block_distance(first.fine, second.fine)

    # ------------------------------------------------------------------
    # Three-step search (overrides the brute-force base ranker)
    # ------------------------------------------------------------------
    def rank(self, image: Image, k: int | None = None
             ) -> list[tuple[str, float]]:
        query = self._signature(image)
        candidates = list(range(len(self._signatures)))

        excluded: list[int] = []
        if self.variance_margin is not None and query.deviation > 0:
            margin = self.variance_margin
            screened = [
                index for index in candidates
                if abs(self._signatures[index].deviation - query.deviation)
                <= margin * query.deviation
            ]
            # Never screen the pool below what step 3 wants to re-rank.
            if len(screened) >= min(self.refine_pool, len(candidates)):
                excluded = [index for index in candidates
                            if index not in set(screened)]
                candidates = screened

        def coarse_distance(index: int) -> float:
            return self._block_distance(query.coarse,
                                        self._signatures[index].coarse)

        coarse_ranked = sorted(candidates, key=coarse_distance)
        pool = coarse_ranked[: self.refine_pool]
        rest = coarse_ranked[self.refine_pool:]

        fine_ranked = sorted(
            ((self._distance(query, self._signatures[index]), index)
             for index in pool)
        )
        results = [(self._names[index], distance)
                   for distance, index in fine_ranked]
        # Images outside the pool keep their coarse order after the
        # pool; variance-screened images come last (the screen is an
        # accelerator, not a result filter — the ranking stays total).
        results.extend((self._names[index], coarse_distance(index))
                       for index in rest)
        results.extend((self._names[index], coarse_distance(index))
                       for index in sorted(excluded, key=coarse_distance))
        if k is not None:
            results = results[:k]
        return results
