"""Color-histogram baseline (QBIC-style [Nib93]).

The earliest class of content-based systems: a single global color
histogram per image.  Captures color composition regardless of layout
but no shape, texture or location — both its strength (full
translation invariance) and the weakness Section 1.1 describes (two
semantically unrelated images with similar palettes look identical).

Distances: L1 (histogram intersection's complement), L2, or the QBIC
quadratic form ``(h1-h2)^T A (h1-h2)`` whose similarity matrix ``A``
couples perceptually close bins.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SignatureRetriever
from repro.color.spaces import convert
from repro.exceptions import ParameterError
from repro.imaging.image import Image


class HistogramRetriever(SignatureRetriever):
    """Global color-histogram retrieval.

    Parameters
    ----------
    bins_per_channel:
        Histogram resolution per color axis (total bins are its cube).
    color_space:
        Space whose axes are binned ("rgb" keeps the classic setup).
    distance:
        "l1", "l2" or "quadratic".
    bin_similarity_sigma:
        Width of the Gaussian bin-similarity kernel used by the
        quadratic form.
    """

    def __init__(self, *, bins_per_channel: int = 4,
                 color_space: str = "rgb", distance: str = "l1",
                 bin_similarity_sigma: float = 0.35) -> None:
        super().__init__()
        if bins_per_channel < 1:
            raise ParameterError("bins_per_channel must be >= 1")
        if distance not in ("l1", "l2", "quadratic"):
            raise ParameterError(
                f"distance must be l1/l2/quadratic, got {distance!r}"
            )
        if bin_similarity_sigma <= 0:
            raise ParameterError("bin_similarity_sigma must be positive")
        self.bins_per_channel = bins_per_channel
        self.color_space = color_space
        self.distance_kind = distance
        self._similarity = self._bin_similarity_matrix(bin_similarity_sigma) \
            if distance == "quadratic" else None

    def _bin_similarity_matrix(self, sigma: float) -> np.ndarray:
        """QBIC's ``A``: similarity between bin centers in color space."""
        b = self.bins_per_channel
        centers = (np.arange(b) + 0.5) / b
        grid = np.stack(np.meshgrid(centers, centers, centers,
                                    indexing="ij"), axis=-1).reshape(-1, 3)
        deltas = grid[:, None, :] - grid[None, :, :]
        distances = np.sqrt((deltas ** 2).sum(axis=2))
        return np.exp(-(distances / sigma) ** 2)

    def _signature(self, image: Image) -> np.ndarray:
        working = convert(image, self.color_space) \
            if image.color_space != self.color_space else image
        b = self.bins_per_channel
        indices = np.minimum((working.pixels * b).astype(int), b - 1)
        flat = (indices[:, :, 0] * b + indices[:, :, 1]) * b + indices[:, :, 2]
        histogram = np.bincount(flat.reshape(-1), minlength=b ** 3)
        return histogram.astype(np.float64) / flat.size

    def _distance(self, first: np.ndarray, second: np.ndarray) -> float:
        delta = first - second
        if self.distance_kind == "l1":
            return float(np.abs(delta).sum())
        if self.distance_kind == "l2":
            return float(np.linalg.norm(delta))
        return float(delta @ self._similarity @ delta)
