"""WALRUS: wavelet-based region similarity retrieval for image databases.

A full reproduction of Natsev, Rastogi & Shim, "WALRUS: A Similarity
Retrieval Algorithm for Image Databases" (SIGMOD 1999), including every
substrate the paper depends on — Haar/Daubechies wavelets with the
sliding-window dynamic program, BIRCH pre-clustering, an R*-tree over
paged storage, image codecs, the single-signature baselines it compares
against, and a synthetic evaluation collection with ground truth.

Quickstart
----------
>>> from repro import WalrusDatabase, QueryParameters
>>> from repro.datasets import generate_dataset, render_scene, DatasetSpec
>>> dataset = generate_dataset(DatasetSpec(images_per_class=5))
>>> database = WalrusDatabase()
>>> database.add_images(dataset.images)            # doctest: +ELLIPSIS
[...]
>>> result = database.query(render_scene("flowers", seed=7))
>>> len(result) > 0
True
"""

from repro.core.cache import CacheStats
from repro.core.database import WalrusDatabase
from repro.core.extraction import RegionExtractor, extract_regions
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.core.pipeline import ExtractionPipeline, extract_regions_many
from repro.core.regions import Region, RegionSignature
from repro.core.results import (ImageMatch, QueryResult, QueryStats,
                                RegionMatch)
from repro.exceptions import (
    ClusteringError,
    CodecError,
    DatabaseClosedError,
    DatabaseError,
    DatasetError,
    ImageFormatError,
    InvalidParameterError,
    ObservabilityError,
    PageCorruptionError,
    ParameterError,
    PipelineError,
    SpatialIndexError,
    StorageError,
    WalrusError,
    WaveletError,
)
from repro.imaging.image import Image
from repro.observability import (MetricsRegistry, ProbeCounts, QueryReport,
                                 StageTrace, Stopwatch, disable_metrics,
                                 enable_metrics, get_metrics)

__version__ = "1.2.0"

__all__ = [
    "CacheStats",
    "ClusteringError",
    "CodecError",
    "DatabaseClosedError",
    "DatabaseError",
    "DatasetError",
    "ExtractionParameters",
    "ExtractionPipeline",
    "Image",
    "ImageFormatError",
    "ImageMatch",
    "InvalidParameterError",
    "MetricsRegistry",
    "ObservabilityError",
    "PageCorruptionError",
    "ParameterError",
    "PipelineError",
    "ProbeCounts",
    "QueryParameters",
    "QueryReport",
    "QueryResult",
    "QueryStats",
    "Region",
    "RegionExtractor",
    "RegionMatch",
    "RegionSignature",
    "SpatialIndexError",
    "StageTrace",
    "Stopwatch",
    "StorageError",
    "WalrusDatabase",
    "WalrusError",
    "WaveletError",
    "disable_metrics",
    "enable_metrics",
    "extract_regions",
    "extract_regions_many",
    "get_metrics",
    "__version__",
]
