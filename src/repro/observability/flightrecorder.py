"""The tail-sampling flight recorder: a bounded ring of recent traces.

Head sampling (the :class:`~repro.observability.spans.Tracer`'s
``sample_rate``) decides *up front* which traces to keep — cheap, but
blind: the one request that mattered (the slow one, the one that blew
its deadline) is exactly as likely to be dropped as any other.  The
flight recorder closes that gap with *tail* retention: every completed
:class:`~repro.observability.spans.TraceSegment` passes through
:meth:`FlightRecorder.record`, and segments that were head-sampled
**or** ended slow, deadline-exceeded, or errored are kept in a
bounded, lock-guarded ring buffer (oldest evicted first).  A
deadline-exceeded request is therefore retrievable even at a 0%
sampling rate.

:meth:`dump` renders the ring as a JSON-ready payload, merging
segments that share a ``trace_id`` (the client's and the server's
halves of one request reunite when both processes share a recorder —
the in-process test topology — or when dumps are combined offline).
The payload backs ``GET /debug/traces`` on both
:class:`~repro.server.app.WalrusServer` and
:class:`~repro.observability.server.MetricsServer`, the SIGUSR2
handler, the ``walrus serve`` shutdown dump, and the ``walrus trace``
CLI.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.exceptions import ObservabilityError
from repro.observability.spans import TraceSegment

#: Default ring capacity (retained segments, not spans).
DEFAULT_CAPACITY = 64

#: Default slow-trace threshold (seconds of root-span duration).
DEFAULT_SLOW_SECONDS = 1.0


class FlightRecorder:
    """A bounded ring buffer of retained trace segments.

    Parameters
    ----------
    capacity:
        Most segments retained at once; recording the
        ``capacity + 1``-th evicts the oldest (FIFO by completion).
    slow_seconds:
        Root-span duration at or above which a segment is
        force-retained regardless of its head-sampling decision.

    Thread safety: ``record`` is called from every request thread at
    root-span exit and ``dump`` from HTTP handler threads; all ring
    state is ``# guarded-by: _lock`` and each method holds the lock
    for O(capacity) work at most — no I/O, no nested locks.
    """

    def __init__(self, *, capacity: int = DEFAULT_CAPACITY,
                 slow_seconds: float = DEFAULT_SLOW_SECONDS) -> None:
        if capacity < 1:
            raise ObservabilityError(
                f"capacity must be >= 1, got {capacity}")
        if slow_seconds < 0:
            raise ObservabilityError(
                f"slow_seconds must be >= 0, got {slow_seconds}")
        self.capacity = capacity
        self.slow_seconds = slow_seconds
        self._lock = threading.Lock()
        #: ``(segment, retained_reason)`` pairs, oldest first.
        self._segments: list[tuple[TraceSegment, str]] = []  # guarded-by: _lock
        self._recorded_total = 0  # guarded-by: _lock
        self._dropped_total = 0  # guarded-by: _lock
        self._evicted_total = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def retain_reason(self, segment: TraceSegment) -> str | None:
        """Why ``segment`` would be kept, or ``None`` to drop it.

        Force-retention reasons (``deadline``, ``error``, ``slow``)
        take precedence over plain ``sampled`` so a dump reader sees
        *why* a trace survived a 0% sampling rate.
        """
        root = segment.root
        if root is not None:
            if root.status == "deadline_exceeded":
                return "deadline"
            if root.status == "error":
                return "error"
            if root.duration >= self.slow_seconds:
                return "slow"
        if segment.sampled:
            return "sampled"
        return None

    def record(self, segment: TraceSegment) -> None:
        """Offer one completed segment; keep it if it earns retention."""
        reason = self.retain_reason(segment)
        with self._lock:
            if reason is None:
                self._dropped_total += 1
                return
            self._recorded_total += 1
            self._segments.append((segment, reason))
            while len(self._segments) > self.capacity:
                self._segments.pop(0)
                self._evicted_total += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    def clear(self) -> None:
        """Empty the ring (counters are kept)."""
        with self._lock:
            self._segments.clear()

    def segments(self) -> list[tuple[TraceSegment, str]]:
        """A snapshot of the retained ``(segment, reason)`` pairs,
        oldest first."""
        with self._lock:
            return list(self._segments)

    def dump(self) -> dict[str, Any]:
        """The ring as a JSON-ready payload, segments merged by trace.

        Shape::

            {"traces": [{"trace_id", "retained", "sampled", "spans"}],
             "capacity", "slow_seconds",
             "recorded_total", "evicted_total", "dropped_total"}

        ``traces`` is ordered oldest-retained first; a trace whose
        client and server segments both reached this recorder appears
        once, with the spans of every segment concatenated in
        retention order and ``retained`` listing the distinct
        segment reasons (first occurrence wins the ordering).
        """
        with self._lock:
            pairs = list(self._segments)
            recorded = self._recorded_total
            evicted = self._evicted_total
            dropped = self._dropped_total
        merged: dict[str, dict[str, Any]] = {}
        order: list[str] = []
        for segment, reason in pairs:
            entry = merged.get(segment.trace_id)
            if entry is None:
                entry = {"trace_id": segment.trace_id,
                         "sampled": segment.sampled,
                         "retained": [],
                         "spans": []}
                merged[segment.trace_id] = entry
                order.append(segment.trace_id)
            entry["sampled"] = bool(entry["sampled"]) or segment.sampled
            if reason not in entry["retained"]:
                entry["retained"].append(reason)
            entry["spans"].extend(span.to_dict()
                                  for span in segment.spans)
        return {
            "traces": [merged[trace_id] for trace_id in order],
            "capacity": self.capacity,
            "slow_seconds": self.slow_seconds,
            "recorded_total": recorded,
            "evicted_total": evicted,
            "dropped_total": dropped,
        }
