"""A tiny scrape endpoint: ``/metrics`` + ``/healthz`` over stdlib HTTP.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer`
in a daemon thread so a WALRUS process can expose its
:class:`~repro.observability.registry.MetricsRegistry` to a
Prometheus scraper without any third-party dependency:

* ``GET /metrics`` — the registry rendered by
  :func:`~repro.observability.export.render_prometheus`, served as
  ``text/plain; version=0.0.4`` (the exposition-format content type).
* ``GET /healthz`` — ``200 ok`` while the server is running; a
  load-balancer/liveness probe target.
* ``GET /debug/traces`` — the process tracer's flight-recorder dump
  (see :meth:`~repro.observability.flightrecorder.FlightRecorder.
  dump`) as JSON: recently retained traces, including force-retained
  slow / deadline-exceeded / errored ones.
* anything else — ``404``.

The server binds eagerly in :meth:`start` (so ``port=0`` callers can
read the kernel-assigned port from :attr:`address` immediately) and
shuts down cleanly in :meth:`stop`: the serve loop is unblocked, the
listening socket closed and the thread joined.  ``http.server``'s
default per-request stderr chatter is silenced — a scrape target hit
every few seconds must not spam the console.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ObservabilityError, ServerError
from repro.observability.export import render_prometheus
from repro.observability.registry import MetricsRegistry, get_metrics
from repro.observability.spans import get_tracer

#: The Prometheus text exposition format content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Per-connection socket timeout (seconds) on every listener: a stuck
#: scraper or half-open connection must release its handler thread.
SOCKET_TIMEOUT = 30.0


class _TimeoutHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with the hardening every WALRUS listener
    gets: ``SO_REUSEADDR`` so restarts do not trip over TIME_WAIT
    sockets, daemonic handler threads, and a bounded per-connection
    socket timeout (set via the handler's ``timeout`` attribute)."""

    allow_reuse_address = True
    daemon_threads = True


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one server's registry."""

    #: Set per server subclass by :class:`MetricsServer`.
    registry: MetricsRegistry

    #: BaseHTTPRequestHandler applies this to the connection socket, so
    #: a dead peer cannot pin a handler thread forever.
    timeout = SOCKET_TIMEOUT

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # a scrape target hit every few seconds must stay silent.
    def log_message(self, format: str, *args: object) -> None:
        return None

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(self.registry).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/debug/traces":
            dump = get_tracer().recorder.dump()
            body = json.dumps(dump, sort_keys=True).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "application/json; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            body = b"not found\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)


class MetricsServer:
    """A daemon-threaded ``/metrics`` endpoint over a registry.

    Parameters
    ----------
    registry:
        The registry to expose; defaults to the process-wide one
        (sampled live on every scrape — no caching).
    host, port:
        Bind address.  ``port=0`` asks the kernel for a free port;
        read the result from :attr:`address` after :meth:`start`.

    Usable as a context manager::

        with MetricsServer(port=0) as server:
            host, port = server.address
            ...

    The serve thread is a daemon, so a process that exits without
    calling :meth:`stop` is not held open by the endpoint.
    """

    def __init__(self, registry: MetricsRegistry | None = None, *,
                 host: str = "127.0.0.1", port: int = 9463) -> None:
        self.registry = registry if registry is not None else get_metrics()
        self.host = host
        self.port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "MetricsServer":
        """Bind the socket and start serving in a daemon thread.

        A bind failure (port already in use, privileged port, bad
        host) surfaces as a structured
        :class:`~repro.exceptions.ServerError` naming the address,
        not a raw ``OSError`` traceback.
        """
        if self._server is not None:
            raise ObservabilityError("MetricsServer is already running")
        handler = type("_BoundHandler", (_Handler,),
                       {"registry": self.registry})
        try:
            self._server = _TimeoutHTTPServer((self.host, self.port),
                                              handler)
        except OSError as error:
            raise ServerError(
                f"metrics server cannot bind {self.host}:{self.port}: "
                f"{error}") from error
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="walrus-metrics-server", daemon=True)
        self._thread.start()
        return self

    @property
    def running(self) -> bool:
        """Whether the serve thread is active."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` requests)."""
        if self._server is None:
            raise ObservabilityError("MetricsServer is not running")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def url(self, path: str = "/metrics") -> str:
        """The scrape URL for ``path`` on the bound address."""
        host, port = self.address
        return f"http://{host}:{port}{path}"

    def stop(self) -> None:
        """Stop serving, close the socket and join the thread
        (idempotent)."""
        server, thread = self._server, self._thread
        self._server, self._thread = None, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
