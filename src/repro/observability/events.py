"""The structured event log: one JSON object per line, typed events.

Where the :class:`~repro.observability.registry.MetricsRegistry`
aggregates (how many node reads so far), the event log narrates (what
did *this* query do).  Every record is a single JSON-lines row with a
shared envelope::

    {"event": "query", "ts": 1754450000.123, "seq": 7, ...payload}

``event`` is the type tag, ``ts`` the wall-clock UNIX timestamp and
``seq`` a per-process monotonically increasing sequence number, so
rows stay totally ordered even when timestamps collide or rotation
splits the stream across files.

Event types and their payloads (see ``docs/API.md`` for the full
schema table):

* ``ingest`` — one ``add_image``/``add_images`` batch: image and
  region counts, bulk/worker configuration, wall seconds.
* ``extract_batch`` — one :class:`ExtractionPipeline` batch: chunk
  fan-out and worker busy time.
* ``query`` — one query with the full EXPLAIN funnel (the
  :meth:`QueryReport.to_dict` payload: probes → candidates → matched
  → returned, node reads, cache hits, per-stage timings).
* ``slow_query`` — emitted *in addition to* ``query`` when the query's
  wall time crosses :attr:`EventLog.slow_query_seconds`.
* ``verify`` — an :meth:`RStarTree.verify` walk's machine-readable
  summary.
* ``fsck`` — a :func:`repro.core.fsck.fsck_database` recovery check
  outcome.
* ``fault`` — a fault-injection hit (simulated crash, torn write,
  scheduled read error, bit flip) from :mod:`repro.index.faults`.
* ``server_start`` / ``server_stop`` — the ``walrus serve`` query
  daemon's lifecycle: bind address and pool configuration on start,
  drain statistics (served/rejected counts) on stop.
* ``server_request`` — one served query request: outcome (``ok``,
  ``overloaded``, ``deadline_exceeded``, ``bad_request``, ``error``),
  wall seconds, queue depth at admission and the pinned snapshot
  generation.
* ``trace`` — one completed (head-sampled) trace segment from the
  span layer: the
  :meth:`~repro.observability.spans.TraceSegment.to_dict` payload
  (``trace_id``, span tree with per-span timings, attributes and
  status) — the JSON-lines trace exporter.

The log is **disabled by default** and then a true no-op: call sites
guard with ``events.enabled`` before building payloads, and
:meth:`EventLog.emit` returns before serializing or touching any
handler, so a disabled workload performs zero logging syscalls (a test
verifies this with a spy handler).

Persistence is stdlib :mod:`logging`: :meth:`EventLog.open` attaches a
size-rotated :class:`logging.handlers.RotatingFileHandler` to a
private, non-propagating logger.  This module is the one place inside
``src/repro`` allowed to construct logging handlers (lint rule R007).
"""

from __future__ import annotations

import json
import logging
import logging.handlers
import threading
import time
from typing import Any, Mapping

from repro.exceptions import ObservabilityError

#: Every event type the library emits, for schema validation.
EVENT_TYPES = frozenset({
    "ingest", "extract_batch", "query", "slow_query",
    "verify", "fsck", "fault",
    "server_start", "server_stop", "server_request",
    "trace",
})

#: Envelope keys present on every record.
ENVELOPE_KEYS = ("event", "ts", "seq")

#: Default latency threshold (seconds) above which a ``slow_query``
#: event accompanies the ``query`` event.
DEFAULT_SLOW_QUERY_SECONDS = 1.0

#: Default rotation policy: rotate at 4 MiB, keep 3 old files.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024
DEFAULT_BACKUP_COUNT = 3


class EventLog:
    """A typed JSON-lines event stream over a stdlib logger.

    Parameters
    ----------
    enabled:
        Start enabled (the process-wide default instance starts
        disabled; tests build enabled instances directly).
    slow_query_seconds:
        Latency threshold for the additional ``slow_query`` event.

    The log owns a private :class:`logging.Logger` that never
    propagates to the root logger, so application logging
    configuration cannot swallow or duplicate the stream.  Attach
    outputs with :meth:`open` (rotating file) or
    :meth:`attach_handler` (any handler — tests use an in-memory spy).
    """

    _SEQUENCE = 0  # process-wide, so interleaved logs stay ordered  # guarded-by: _SEQ_LOCK
    #: Guards ``_SEQUENCE`` and ``_INSTANCES``: concurrent server
    #: threads must neither drop nor duplicate a sequence number
    #: (``seq`` is the stream's total order), and ``n += 1`` on a
    #: class attribute is not atomic.
    _SEQ_LOCK = threading.Lock()
    _INSTANCES = 0  # distinct logger name per instance  # guarded-by: _SEQ_LOCK

    def __init__(self, *, enabled: bool = False,
                 slow_query_seconds: float = DEFAULT_SLOW_QUERY_SECONDS,
                 name: str | None = None) -> None:
        if slow_query_seconds < 0:
            raise ObservabilityError(
                f"slow_query_seconds must be >= 0, got {slow_query_seconds}")
        self.enabled = enabled
        self.slow_query_seconds = slow_query_seconds
        # Each instance owns a distinct logger so swapped-in logs
        # (set_events in tests) never inherit another's handlers.
        # The unlocked ``+= 1`` this used to do could hand two
        # concurrently constructed logs the same logger (and therefore
        # each other's handlers).
        with EventLog._SEQ_LOCK:
            EventLog._INSTANCES += 1
            instance_number = EventLog._INSTANCES
        self._logger = logging.getLogger(
            name if name is not None
            else f"walrus.events.{instance_number}")
        self._logger.setLevel(logging.INFO)
        self._logger.propagate = False
        self._owned_handlers: list[logging.Handler] = []

    # ------------------------------------------------------------------
    # Switch and sinks
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def open(self, path: str, *,
             max_bytes: int = DEFAULT_MAX_BYTES,
             backup_count: int = DEFAULT_BACKUP_COUNT) -> None:
        """Attach a size-rotated JSON-lines file sink and enable.

        ``max_bytes``/``backup_count`` follow
        :class:`logging.handlers.RotatingFileHandler`: when the active
        file would exceed ``max_bytes`` it is rolled to ``path.1`` (up
        to ``backup_count`` old files are kept).  The file is opened
        lazily on the first emitted event.
        """
        if max_bytes < 0 or backup_count < 0:
            raise ObservabilityError(
                "max_bytes and backup_count must be >= 0")
        handler = logging.handlers.RotatingFileHandler(
            path, maxBytes=max_bytes, backupCount=backup_count,
            encoding="utf-8", delay=True)
        handler.setFormatter(logging.Formatter("%(message)s"))
        self.attach_handler(handler)
        self.enabled = True

    def attach_handler(self, handler: logging.Handler) -> None:
        """Attach any logging handler (the raw JSON line is the
        record message; no formatting prefix is added)."""
        self._logger.addHandler(handler)
        self._owned_handlers.append(handler)

    def close(self) -> None:
        """Detach and close every attached handler; disable the log."""
        self.enabled = False
        for handler in self._owned_handlers:
            self._logger.removeHandler(handler)
            handler.close()
        self._owned_handlers.clear()

    @property
    def handlers(self) -> tuple[logging.Handler, ...]:
        """The attached handlers (read-only view)."""
        return tuple(self._owned_handlers)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, event: str, payload: Mapping[str, Any]) -> None:
        """Emit one event row (immediate no-op while disabled).

        ``event`` must be one of :data:`EVENT_TYPES`; ``payload`` must
        be JSON-serializable and must not shadow the envelope keys.
        Hot paths guard with :attr:`enabled` before even building the
        payload dict; this method re-checks so direct callers are safe
        either way.
        """
        if not self.enabled:
            return
        if event not in EVENT_TYPES:
            raise ObservabilityError(f"unknown event type {event!r}")
        for key in ENVELOPE_KEYS:
            if key in payload:
                raise ObservabilityError(
                    f"payload key {key!r} collides with the envelope")
        with EventLog._SEQ_LOCK:
            EventLog._SEQUENCE += 1
            sequence = EventLog._SEQUENCE
        record = {"event": event, "ts": time.time(),
                  "seq": sequence}
        record.update(payload)
        try:
            line = json.dumps(record, sort_keys=True)
        except (TypeError, OverflowError) as error:
            raise ObservabilityError(
                f"event {event!r} payload is not JSON-serializable: "
                f"{error}") from error
        self._logger.info(line)


def parse_event_line(line: str) -> dict[str, Any]:
    """Parse and validate one JSON-lines row back into a dict.

    Raises :class:`ObservabilityError` when the row is not valid JSON,
    not an object, missing envelope keys, or carries an unknown event
    type — the validation the event-log tests and external consumers
    share.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError as error:
        raise ObservabilityError(
            f"event row is not valid JSON: {error}") from error
    if not isinstance(record, dict):
        raise ObservabilityError("event row is not a JSON object")
    for key in ENVELOPE_KEYS:
        if key not in record:
            raise ObservabilityError(f"event row is missing {key!r}")
    if record["event"] not in EVENT_TYPES:
        raise ObservabilityError(
            f"unknown event type {record['event']!r}")
    if not isinstance(record["seq"], int) \
            or isinstance(record["seq"], bool) or record["seq"] < 1:
        raise ObservabilityError("event seq must be a positive integer")
    if not isinstance(record["ts"], (int, float)):
        raise ObservabilityError("event ts must be a number")
    return record


#: The process-wide default event log.  Disabled until someone opts in.
_EVENTS = EventLog()


def get_events() -> EventLog:
    """The process-wide event log the library's hot paths emit into."""
    return _EVENTS


def set_events(log: EventLog) -> EventLog:
    """Swap the process-wide event log; returns the previous one.

    Test isolation hook, mirroring
    :func:`~repro.observability.registry.set_metrics`.
    """
    global _EVENTS
    previous = _EVENTS
    _EVENTS = log
    return previous


def enable_events(path: str | None = None, *,
                  slow_query_seconds: float | None = None,
                  max_bytes: int = DEFAULT_MAX_BYTES,
                  backup_count: int = DEFAULT_BACKUP_COUNT) -> EventLog:
    """Switch the process-wide event log on; returns it.

    With ``path`` given, a rotating JSON-lines file sink is attached
    first (see :meth:`EventLog.open`).  ``slow_query_seconds``
    overrides the slow-query threshold when not ``None``.
    """
    if slow_query_seconds is not None:
        if slow_query_seconds < 0:
            raise ObservabilityError(
                f"slow_query_seconds must be >= 0, got {slow_query_seconds}")
        _EVENTS.slow_query_seconds = slow_query_seconds
    if path is not None:
        _EVENTS.open(path, max_bytes=max_bytes, backup_count=backup_count)
    _EVENTS.enable()
    return _EVENTS


def disable_events() -> EventLog:
    """Switch the process-wide event log off; returns it."""
    _EVENTS.disable()
    return _EVENTS
