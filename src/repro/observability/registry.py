"""The metrics registry: named counters, gauges, histograms, timers.

Design constraints (they shape every class here):

* **Dependency-free** — stdlib only; importable from any layer without
  cycles (only :mod:`repro.exceptions` is imported).
* **Near-zero overhead when disabled** — instruments hold a reference
  to their registry and check its ``enabled`` flag on every update, so
  a disabled counter costs one attribute load and one branch.  A
  disabled timer is a shared singleton whose ``__enter__``/``__exit__``
  do nothing — no clock reads at all.
* **Deterministic counts** — counters and gauges carry exact integers
  and floats set by the instrumented code; nothing samples, decays or
  rounds, so tests can assert on snapshot values under fixed seeds.

The process-wide default registry (:func:`get_metrics`) starts
disabled; :func:`enable_metrics` / :func:`disable_metrics` toggle it.
Worker processes spawned by the extraction pipeline inherit a fresh,
disabled registry of their own — per-chunk numbers reach the parent
through task results, not shared state.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.exceptions import ObservabilityError


class Stopwatch:
    """A running wall-clock measurement.

    The one sanctioned wrapper around ``time.perf_counter`` inside
    ``src/repro`` (lint rule R006 forbids the direct calls): timing
    code reads ``Stopwatch().elapsed`` instead of subtracting raw
    clock values.
    """

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = time.perf_counter()

    def restart(self) -> None:
        """Reset the start point to now."""
        self._started = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self._started


class Counter:
    """A monotonically increasing integer.

    ``inc`` is a no-op while the owning registry is disabled; the
    stored value therefore only reflects activity observed while
    enabled.  Updates take a per-instrument lock so concurrent query
    threads (the ``walrus serve`` daemon) never lose increments; the
    disabled path stays lock-free.
    """

    __slots__ = ("name", "value", "_registry", "_lock")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value = 0  # guarded-by: _lock
        self._registry = registry
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1); negative amounts are rejected."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))")
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """A point-in-time value: set directly or sampled via a callback.

    Callback gauges (``fn`` given) evaluate lazily at read time —
    the idiom for surfacing an existing counter (e.g. an LRU cache's
    hit count) through the registry without mirroring every update.
    """

    __slots__ = ("name", "_value", "_fn", "_registry", "_lock")

    def __init__(self, name: str, registry: "MetricsRegistry",
                 fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self._value = 0.0  # guarded-by: _lock
        self._fn = fn
        self._registry = registry
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record ``value`` (no-op while disabled)."""
        if self._fn is not None:
            raise ObservabilityError(
                f"gauge {self.name!r} is callback-backed; it cannot be set")
        if self._registry.enabled:
            with self._lock:
                self._value = float(value)

    @property
    def value(self) -> float:
        """The recorded value, or the callback's current sample."""
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def reset(self) -> None:
        # Unlike Counter/Histogram.reset this historically skipped the
        # lock, so a reset racing a set() could be lost or resurrect a
        # half-written value.
        with self._lock:
            self._value = 0.0


@dataclass(frozen=True)
class HistogramSummary:
    """Immutable snapshot of a histogram's aggregates."""

    count: int
    total: float
    minimum: float
    maximum: float

    @property
    def mean(self) -> float:
        """``total / count`` (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


#: Default histogram bucket upper bounds, seconds — the standard
#: Prometheus latency ladder.  An implicit ``+Inf`` bucket always
#: follows the last bound.
DEFAULT_BUCKET_BOUNDS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                         0.5, 1.0, 2.5, 5.0, 10.0)


class Histogram:
    """Streaming aggregates plus fixed-bucket counts of observed values.

    Keeps O(1) per-observation state: count, sum, min, max, and one
    increment into the fixed :data:`DEFAULT_BUCKET_BOUNDS` ladder
    (upper-bound inclusive, Prometheus semantics) — enough for both
    the exact summaries the stage timers need and native
    ``_bucket``/``+Inf`` exposition with quantile estimation on top.
    All fields update together under a per-instrument lock, so
    concurrent observers (server query threads) can neither drop an
    observation nor tear a snapshot (a count without its total).
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "bucket_bounds", "_bucket_counts", "_registry", "_lock")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._lock = threading.Lock()
        self.bucket_bounds = DEFAULT_BUCKET_BOUNDS
        self.reset()

    def observe(self, value: float) -> None:
        """Fold ``value`` into the aggregates (no-op while disabled)."""
        if not self._registry.enabled:
            return
        value = float(value)
        index = bisect_left(self.bucket_bounds, value)
        with self._lock:
            self.count += 1
            self.total += value
            self.minimum = (value if self.count == 1
                            else min(self.minimum, value))
            self.maximum = (value if self.count == 1
                            else max(self.maximum, value))
            self._bucket_counts[index] += 1

    def summary(self) -> HistogramSummary:
        with self._lock:
            return HistogramSummary(count=self.count, total=self.total,
                                    minimum=self.minimum,
                                    maximum=self.maximum)

    def buckets(self) -> tuple[tuple[float, int], ...]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        One pair per bound in :attr:`bucket_bounds` plus the final
        ``(inf, total_count)`` pair; counts are cumulative (every
        bucket includes all smaller ones), matching the exposition
        format's ``le`` label semantics.
        """
        with self._lock:
            counts = list(self._bucket_counts)
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bucket_bounds, counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + counts[-1]))
        return tuple(pairs)

    def reset(self) -> None:
        with self._lock:
            self.count = 0  # guarded-by: _lock
            self.total = 0.0  # guarded-by: _lock
            self.minimum = 0.0  # guarded-by: _lock
            self.maximum = 0.0  # guarded-by: _lock
            # One slot per bound plus the trailing +Inf slot.
            # guarded-by: _lock
            self._bucket_counts = [0] * (len(self.bucket_bounds) + 1)


class _Timer:
    """Context manager recording one elapsed interval into a histogram."""

    __slots__ = ("_histogram", "_stopwatch")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._stopwatch: Stopwatch | None = None

    def __enter__(self) -> "_Timer":
        self._stopwatch = Stopwatch()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._stopwatch is not None:
            self._histogram.observe(self._stopwatch.elapsed)
            self._stopwatch = None


class _NullTimer:
    """Shared no-op timer handed out while the registry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """A named family of instruments with one enable switch.

    Instruments are created on first use (``counter(name)`` is
    get-or-create) and live for the registry's lifetime; requesting an
    existing name as a different instrument kind raises
    :class:`ObservabilityError`.  Dotted names group related metrics
    (``"index.node_reads"``, ``"query.probe"``).
    """

    __slots__ = ("enabled", "_instruments", "_create_lock")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        # guarded-by: _create_lock
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        # Guards get-or-create races: two threads requesting a new
        # instrument by the same name must share one object, or half
        # the updates land on an orphan.
        self._create_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Switch
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, name: str, kind: type) -> Any:
        if not name:
            raise ObservabilityError("instrument name must be non-empty")
        instrument = self._instruments.get(name)
        if instrument is None:
            return None
        if not isinstance(instrument, kind):
            raise ObservabilityError(
                f"{name!r} is registered as "
                f"{type(instrument).__name__.lower()}, not "
                f"{kind.__name__.lower()}")
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        counter = self._get(name, Counter)
        if counter is None:
            with self._create_lock:
                counter = self._get(name, Counter)
                if counter is None:
                    counter = Counter(name, self)
                    self._instruments[name] = counter
        return counter

    def gauge(self, name: str,
              fn: Callable[[], float] | None = None) -> Gauge:
        """The gauge called ``name``.

        ``fn`` installs a read-time callback; re-registering an
        existing gauge with a (new) callback replaces its sampler.
        """
        gauge = self._get(name, Gauge)
        if gauge is None:
            with self._create_lock:
                gauge = self._get(name, Gauge)
                if gauge is None:
                    gauge = Gauge(name, self, fn)
                    self._instruments[name] = gauge
                    return gauge
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        histogram = self._get(name, Histogram)
        if histogram is None:
            with self._create_lock:
                histogram = self._get(name, Histogram)
                if histogram is None:
                    histogram = Histogram(name, self)
                    self._instruments[name] = histogram
        return histogram

    def timer(self, name: str) -> _Timer | _NullTimer:
        """A context manager timing into the histogram ``name``.

        While the registry is disabled this returns a shared no-op
        object without touching the clock or creating the histogram.
        """
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self.histogram(name))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        """Registered instrument names, sorted."""
        return sorted(self._instruments)

    def instruments(self) -> Iterator[Counter | Gauge | Histogram]:
        """Iterate over the instruments in name order."""
        for name in self.names():
            yield self._instruments[name]

    def snapshot(self) -> dict[str, int | float | HistogramSummary]:
        """Current value of every instrument, keyed by name.

        Counters map to ints, gauges to floats (callback gauges are
        sampled now) and histograms to :class:`HistogramSummary`.
        """
        values: dict[str, int | float | HistogramSummary] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                values[name] = instrument.summary()
            else:
                values[name] = instrument.value
        return values

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        for instrument in self._instruments.values():
            instrument.reset()


#: The process-wide default registry.  Disabled until someone opts in.
_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry the library's hot paths report into."""
    return _METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Intended for tests that want an isolated registry; production code
    should toggle the default registry instead.
    """
    global _METRICS
    previous = _METRICS
    _METRICS = registry
    return previous


def enable_metrics() -> MetricsRegistry:
    """Switch the process-wide registry on; returns it."""
    _METRICS.enable()
    return _METRICS


def disable_metrics() -> MetricsRegistry:
    """Switch the process-wide registry off; returns it."""
    _METRICS.disable()
    return _METRICS
