"""Terminal rendering for traces and the ``walrus top`` dashboard.

Pure presentation: every function here maps already-collected data —
a flight-recorder dump (``GET /debug/traces``) or two Prometheus
text-format scrapes (``GET /metrics``) — to strings.  No I/O, no
clocks, no globals, so the CLI commands built on top (``walrus
trace``, ``walrus top``) are testable against fixtures.

* :func:`trace_summaries` / :func:`render_trace_list` — one line per
  retained trace: id, root span, duration, span count, status and the
  retention reasons (``sampled`` vs the force-retained ``slow`` /
  ``deadline`` / ``error``).
* :func:`find_traces` / :func:`render_span_tree` — an ASCII tree of
  one trace's spans with per-span duration, share of the trace, and
  *self time* (duration minus child spans — where the time actually
  went, not just where it was enclosed).
* :func:`parse_prometheus_text` / :func:`bucket_pairs` /
  :func:`quantile_from_buckets` — enough of a Prometheus text-format
  0.0.4 parser to read back what
  :func:`~repro.observability.export.render_prometheus` writes, plus
  quantile estimation over the native-histogram ``_bucket`` ladders.
* :func:`render_top` — the dashboard body: QPS, p50/p99 latency,
  shed/timeout rates, cache hit ratios and the per-stage time split,
  computed from the *delta* between two scrapes so the numbers are
  "over the last interval", not since process start.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

from repro.exceptions import ObservabilityError

#: One parsed Prometheus sample line: name, label text and value.
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})?\s+(\S+)\s*$")

#: One ``key="value"`` pair inside a sample's label braces.
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')

#: Counter suffixes of ``walrus_server_requests_<status>``.
_REQUEST_STATUSES = ("ok", "overloaded", "deadline_exceeded",
                    "bad_request", "error")

#: Matches ``walrus_cache_<name>_hits`` / ``..._misses`` samples.
_CACHE_SAMPLE = re.compile(r"^walrus_cache_(.+)_(hits|misses)$")

#: Matches ``walrus_trace_span_seconds_<stage>_hist_sum`` samples.
_STAGE_SAMPLE = re.compile(r"^walrus_trace_span_seconds_(.+)_hist_sum$")

#: Span names counted in the dashboard's stage split.  Only the
#: non-overlapping pipeline stages qualify — enclosing spans
#: (``server.request``, ``query``) contain these and would double
#: count every second.
_SPLIT_STAGES = frozenset(
    {"extract", "probe", "match", "rank",
     "admission_acquire", "session_acquire"})


# ---------------------------------------------------------------------------
# flight-recorder dump rendering
# ---------------------------------------------------------------------------

def _root_span(trace: Mapping[str, Any]) -> Mapping[str, Any] | None:
    """The root span of a dumped trace: no parent, or the parent id is
    not among the dumped spans (a remote parent)."""
    spans = [span for span in trace.get("spans", [])
             if isinstance(span, Mapping)]
    if not spans:
        return None
    ids = {span.get("span_id") for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        if parent is None or parent not in ids:
            return span
    return spans[0]


def trace_summaries(dump: Mapping[str, Any]) -> list[dict[str, Any]]:
    """One summary dict per retained trace, oldest first."""
    traces = dump.get("traces")
    if not isinstance(traces, list):
        raise ObservabilityError("trace dump payload has no 'traces' list")
    summaries: list[dict[str, Any]] = []
    for trace in traces:
        if not isinstance(trace, Mapping):
            continue
        root = _root_span(trace)
        spans = trace.get("spans", [])
        summaries.append({
            "trace_id": str(trace.get("trace_id", "")),
            "root": str(root.get("name", "?")) if root else "?",
            "duration": (float(root.get("duration", 0.0))
                         if root else 0.0),
            "spans": len(spans) if isinstance(spans, list) else 0,
            "status": (str(root.get("status", "ok")) if root else "?"),
            "retained": [str(reason)
                         for reason in trace.get("retained", [])],
        })
    return summaries


def _format_seconds(seconds: float) -> str:
    """A compact duration: ``12.3ms`` under a second, ``1.234s`` over."""
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.1f}ms"


def render_trace_list(dump: Mapping[str, Any]) -> str:
    """The ``walrus trace list`` table over a flight-recorder dump."""
    summaries = trace_summaries(dump)
    header = (f"{'TRACE_ID':<32}  {'ROOT':<18}  {'DURATION':>9}  "
              f"{'SPANS':>5}  {'STATUS':<17}  RETAINED")
    lines = [header]
    for summary in summaries:
        lines.append(
            f"{summary['trace_id']:<32}  {summary['root']:<18}  "
            f"{_format_seconds(summary['duration']):>9}  "
            f"{summary['spans']:>5}  {summary['status']:<17}  "
            f"{','.join(summary['retained'])}")
    lines.append(f"{len(summaries)} trace(s); "
                 f"recorded_total={dump.get('recorded_total', '?')} "
                 f"evicted_total={dump.get('evicted_total', '?')} "
                 f"dropped_total={dump.get('dropped_total', '?')}")
    return "\n".join(lines)


def find_traces(dump: Mapping[str, Any],
                trace_id: str) -> list[Mapping[str, Any]]:
    """Traces whose id equals or starts with ``trace_id``."""
    traces = dump.get("traces")
    if not isinstance(traces, list):
        raise ObservabilityError("trace dump payload has no 'traces' list")
    return [trace for trace in traces
            if isinstance(trace, Mapping)
            and str(trace.get("trace_id", "")).startswith(trace_id)]


def render_span_tree(trace: Mapping[str, Any]) -> str:
    """One trace as an ASCII span tree.

    Each line shows the span's duration, its share of the root span's
    duration, its *self* share (time not covered by child spans) and
    its status.  Orphaned spans (parent missing from the dump) render
    as additional roots.
    """
    spans = [span for span in trace.get("spans", [])
             if isinstance(span, Mapping)]
    lines = [f"trace {trace.get('trace_id', '?')} "
             f"[{','.join(str(r) for r in trace.get('retained', []))}]"]
    if not spans:
        lines.append("  (no spans)")
        return "\n".join(lines)
    ids = {span.get("span_id") for span in spans}
    children: dict[object, list[Mapping[str, Any]]] = {}
    roots: list[Mapping[str, Any]] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent is None or parent not in ids:
            roots.append(span)
        else:
            children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda span: float(span.get("start", 0.0)))
    roots.sort(key=lambda span: float(span.get("start", 0.0)))
    total = max((float(root.get("duration", 0.0)) for root in roots),
                default=0.0)

    def emit(span: Mapping[str, Any], prefix: str, tail: str) -> None:
        duration = float(span.get("duration", 0.0))
        kids = children.get(span.get("span_id"), [])
        self_seconds = duration - sum(float(kid.get("duration", 0.0))
                                      for kid in kids)
        share = 100.0 * duration / total if total > 0 else 0.0
        self_share = (100.0 * max(self_seconds, 0.0) / total
                      if total > 0 else 0.0)
        status = str(span.get("status", "ok"))
        label = f"{prefix}{tail}{span.get('name', '?')}"
        lines.append(f"{label:<44} {_format_seconds(duration):>9}  "
                     f"{share:5.1f}%  self {self_share:5.1f}%  {status}")
        child_prefix = prefix + ("   " if tail == "`- " else
                                 "|  " if tail == "|- " else "")
        for index, kid in enumerate(kids):
            emit(kid, child_prefix,
                 "`- " if index == len(kids) - 1 else "|- ")

    for root in roots:
        emit(root, "", "")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Prometheus text-format parsing and quantiles
# ---------------------------------------------------------------------------

def parse_prometheus_text(text: str) -> dict[str, float]:
    """Samples of a text-format 0.0.4 scrape, keyed by
    ``name{sorted,labels}`` (label-free samples key by bare name).

    Comment/``# TYPE`` lines are skipped; unparseable values raise
    :class:`~repro.exceptions.ObservabilityError` (a scrape is machine
    output — garbage means the wrong endpoint was polled).
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ObservabilityError(
                f"unparseable Prometheus sample line: {line!r}")
        name, labels, raw = match.groups()
        key = name
        if labels:
            pairs = sorted(_LABEL.findall(labels))
            key += "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"
        try:
            value = float(raw.replace("+Inf", "inf")
                          .replace("-Inf", "-inf"))
        except ValueError as error:
            raise ObservabilityError(
                f"unparseable sample value in line: {line!r}") from error
        samples[key] = value
    return samples


def bucket_pairs(samples: Mapping[str, float],
                 family: str) -> list[tuple[float, float]]:
    """The cumulative ``(le, count)`` ladder of one ``_bucket`` family
    (e.g. ``walrus_server_request_seconds_hist``), sorted by bound."""
    prefix = f"{family}_bucket{{le=\""
    pairs: list[tuple[float, float]] = []
    for key, value in samples.items():
        if not key.startswith(prefix):
            continue
        bound = key[len(prefix):key.rindex('"')]
        pairs.append((float(bound.replace("+Inf", "inf")), value))
    pairs.sort()
    return pairs


def delta_buckets(current: list[tuple[float, float]],
                  previous: list[tuple[float, float]]
                  ) -> list[tuple[float, float]]:
    """Bucket ladder of the interval between two scrapes."""
    before = dict(previous)
    return [(bound, count - before.get(bound, 0.0))
            for bound, count in current]


def quantile_from_buckets(pairs: list[tuple[float, float]],
                          quantile: float) -> float | None:
    """Estimate a quantile from a cumulative bucket ladder.

    Linear interpolation inside the bucket holding the target rank
    (Prometheus ``histogram_quantile`` semantics); observations in the
    ``+Inf`` overflow bucket clamp to the last finite bound.  Returns
    ``None`` for an empty ladder or zero observations.
    """
    if not pairs or not 0.0 <= quantile <= 1.0:
        return None
    total = pairs[-1][1]
    if total <= 0:
        return None
    target = quantile * total
    lower_bound = 0.0
    lower_count = 0.0
    for bound, cumulative in pairs:
        if cumulative >= target:
            if bound == float("inf"):
                return lower_bound
            width = bound - lower_bound
            in_bucket = cumulative - lower_count
            if in_bucket <= 0 or width <= 0:
                return bound
            return lower_bound + width * (target - lower_count) / in_bucket
        lower_bound, lower_count = bound, cumulative
    return lower_bound


# ---------------------------------------------------------------------------
# the `walrus top` dashboard body
# ---------------------------------------------------------------------------

def _rate(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole > 0 else "-"


def render_top(current: Mapping[str, float],
               previous: Mapping[str, float] | None,
               interval_seconds: float) -> str:
    """The dashboard body from two parsed ``/metrics`` scrapes.

    ``previous`` may be ``None`` on the first poll; rates then cover
    the process lifetime and the header says so.  All numbers
    otherwise describe the last ``interval_seconds`` window.
    """
    before: Mapping[str, float] = previous if previous is not None else {}
    window = "since start" if previous is None else \
        f"last {interval_seconds:.1f}s"

    def delta(key: str) -> float:
        return current.get(key, 0.0) - before.get(key, 0.0)

    requests = {status: delta(f"walrus_server_requests_{status}")
                for status in _REQUEST_STATUSES}
    total = sum(requests.values())
    qps = total / interval_seconds if previous is not None \
        and interval_seconds > 0 else total
    qps_label = f"{qps:8.1f} qps" if previous is not None \
        else f"{total:8.0f} req"

    latency = delta_buckets(
        bucket_pairs(current, "walrus_server_request_seconds_hist"),
        bucket_pairs(before, "walrus_server_request_seconds_hist"))
    p50 = quantile_from_buckets(latency, 0.50)
    p99 = quantile_from_buckets(latency, 0.99)

    lines = [
        f"walrus top — {window}",
        f"requests  {qps_label}   ok {_rate(requests['ok'], total)}   "
        f"shed {_rate(requests['overloaded'], total)}   "
        f"timeout {_rate(requests['deadline_exceeded'], total)}   "
        f"error {_rate(requests['error'] + requests['bad_request'], total)}",
        f"latency   p50 "
        f"{_format_seconds(p50) if p50 is not None else '-':>9}   "
        f"p99 {_format_seconds(p99) if p99 is not None else '-':>9}",
    ]

    caches: dict[str, dict[str, float]] = {}
    for key, value in current.items():
        match = _CACHE_SAMPLE.match(key)
        if match is not None:
            name, kind = match.groups()
            caches.setdefault(name, {})[kind] = value - before.get(key, 0.0)
    if caches:
        parts = []
        for name in sorted(caches):
            hits = caches[name].get("hits", 0.0)
            misses = caches[name].get("misses", 0.0)
            parts.append(f"{name} {_rate(hits, hits + misses)} hit")
        lines.append("caches    " + "   ".join(parts))

    stages: dict[str, float] = {}
    for key, value in current.items():
        match = _STAGE_SAMPLE.match(key)
        if match is not None and match.group(1) in _SPLIT_STAGES:
            stages[match.group(1)] = value - before.get(key, 0.0)
    stage_total = sum(stages.values())
    if stage_total > 0:
        split = " | ".join(
            f"{name} {100.0 * seconds / stage_total:.0f}%"
            for name, seconds in sorted(stages.items(),
                                        key=lambda item: -item[1]))
        lines.append(f"stages    {split}")
    return "\n".join(lines)
