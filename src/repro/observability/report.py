"""The EXPLAIN-style query report.

``WalrusDatabase.query(..., explain=True)`` assembles a
:class:`QueryReport` describing everything the query did: per-stage
wall-clock timings, how hard it hit the R*-tree, how many candidate
regions and images each filtering step kept, and how the query-path
caches behaved.  All count fields are exact and deterministic under
fixed seeds — only the timings vary between runs — so integration
tests assert on them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.tracing import StageTiming


@dataclass(frozen=True)
class ProbeCounts:
    """Exact accounting of one query's Section 5.4 probe phase.

    Attributes
    ----------
    probes_executed:
        Index probes actually run (query regions not served from the
        probe cache).
    probe_cache_hits, probe_cache_misses:
        Probe-cache outcomes across the query's regions.
    node_reads:
        R*-tree nodes read by the executed probes (0 when every region
        hit the cache).
    pairs_probed:
        Region pairs returned by the coarse ``epsilon`` probe, before
        the refined check.
    pairs_refined_out:
        Pairs dropped by the Section 5.5 refined matching phase
        (0 when refinement is off).
    """

    probes_executed: int
    probe_cache_hits: int
    probe_cache_misses: int
    node_reads: int
    pairs_probed: int
    pairs_refined_out: int

    @property
    def pairs_retained(self) -> int:
        """Pairs surviving the probe phase (``probed - refined_out``)."""
        return self.pairs_probed - self.pairs_refined_out


@dataclass(frozen=True)
class QueryReport:
    """Structured per-query diagnostics (the EXPLAIN output).

    Attributes
    ----------
    query_regions:
        Regions extracted from (or recalled for) the query image.
    signature_cache_hit:
        Whether the query's region set came from the signature cache.
    probe:
        The probe phase's exact counts (:class:`ProbeCounts`).
    candidate_images:
        Distinct database images holding at least one matching region
        — the population entering the area-fraction matching step.
    matched_images:
        Images whose Definition 4.3 similarity cleared ``tau`` (before
        the ``max_results`` cap).
    returned_images:
        Matches actually returned (after ``max_results``).
    stages:
        Wall-clock :class:`StageTiming` rows in execution order
        (``extract``, ``probe``, ``match``, ``rank``).
    total_seconds:
        Wall-clock time of the whole query.
    """

    query_regions: int
    signature_cache_hit: bool
    probe: ProbeCounts
    candidate_images: int
    matched_images: int
    returned_images: int
    stages: tuple[StageTiming, ...] = field(default=())
    total_seconds: float = 0.0

    def stage_seconds(self, name: str) -> float:
        """Total seconds across stages called ``name`` (0.0 if absent)."""
        return sum(timing.seconds for timing in self.stages
                   if timing.name == name)

    def counts(self) -> dict[str, int]:
        """Every deterministic count field as a flat dict.

        The keys are stable; benchmark JSON and tests key off them.
        """
        return {
            "query_regions": self.query_regions,
            "signature_cache_hit": int(self.signature_cache_hit),
            "probes_executed": self.probe.probes_executed,
            "probe_cache_hits": self.probe.probe_cache_hits,
            "probe_cache_misses": self.probe.probe_cache_misses,
            "index_node_reads": self.probe.node_reads,
            "pairs_probed": self.probe.pairs_probed,
            "pairs_refined_out": self.probe.pairs_refined_out,
            "pairs_retained": self.probe.pairs_retained,
            "candidate_images": self.candidate_images,
            "matched_images": self.matched_images,
            "returned_images": self.returned_images,
        }

    def render(self) -> str:
        """A human-readable, ``EXPLAIN``-style multi-line summary."""
        lines = [
            "QUERY PLAN (walrus)",
            f"  extract: {self.query_regions} query regions"
            + (" [signature cache hit]" if self.signature_cache_hit
               else ""),
            f"  probe:   {self.probe.probes_executed} index probes "
            f"({self.probe.probe_cache_hits} cached), "
            f"{self.probe.node_reads} R*-tree node reads",
            f"           {self.probe.pairs_probed} candidate pairs"
            + (f", {self.probe.pairs_refined_out} dropped by refinement"
               if self.probe.pairs_refined_out else ""),
            f"  match:   {self.candidate_images} candidate images -> "
            f"{self.matched_images} over tau -> "
            f"{self.returned_images} returned",
        ]
        if self.stages:
            parts = ", ".join(f"{timing.name} {timing.seconds * 1e3:.1f}ms"
                              for timing in self.stages)
            lines.append(f"  timing:  {parts} "
                         f"(total {self.total_seconds * 1e3:.1f}ms)")
        return "\n".join(lines)
