"""The EXPLAIN-style query report.

``WalrusDatabase.query(..., explain=True)`` assembles a
:class:`QueryReport` describing everything the query did: per-stage
wall-clock timings, how hard it hit the R*-tree, how many candidate
regions and images each filtering step kept, and how the query-path
caches behaved.  All count fields are exact and deterministic under
fixed seeds — only the timings vary between runs — so integration
tests assert on them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import ObservabilityError
from repro.observability.tracing import StageTiming

#: Canonical stage names in execution order.  ``render`` and event
#: consumers use this order; a report may carry any subset (e.g. an
#: event-log row for a failed or partially traced query).
CANONICAL_STAGES = ("extract", "probe", "match", "rank")


@dataclass(frozen=True)
class ProbeCounts:
    """Exact accounting of one query's Section 5.4 probe phase.

    Attributes
    ----------
    probes_executed:
        Index probes actually run (query regions not served from the
        probe cache).
    probe_cache_hits, probe_cache_misses:
        Probe-cache outcomes across the query's regions.
    node_reads:
        R*-tree nodes read by the executed probes (0 when every region
        hit the cache).
    pairs_probed:
        Region pairs returned by the coarse ``epsilon`` probe, before
        the refined check.
    pairs_refined_out:
        Pairs dropped by the Section 5.5 refined matching phase
        (0 when refinement is off).
    probes_shared:
        Probes served from ``query_batch``'s batch-scoped shared
        table instead of executing or hitting the LRU (always 0 for a
        standalone ``query``).
    """

    probes_executed: int
    probe_cache_hits: int
    probe_cache_misses: int
    node_reads: int
    pairs_probed: int
    pairs_refined_out: int
    probes_shared: int = 0

    @property
    def pairs_retained(self) -> int:
        """Pairs surviving the probe phase (``probed - refined_out``)."""
        return self.pairs_probed - self.pairs_refined_out

    def to_dict(self) -> dict[str, int]:
        """The counts as a JSON-ready dict (see :meth:`from_dict`)."""
        return {
            "probes_executed": self.probes_executed,
            "probe_cache_hits": self.probe_cache_hits,
            "probe_cache_misses": self.probe_cache_misses,
            "node_reads": self.node_reads,
            "pairs_probed": self.pairs_probed,
            "pairs_refined_out": self.pairs_refined_out,
            "probes_shared": self.probes_shared,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ProbeCounts":
        """Rebuild from a :meth:`to_dict` payload.

        Raises :class:`ObservabilityError` when a field is missing or
        not an integer.  ``probes_shared`` is optional (rows written
        before batch probe sharing existed default it to 0).
        """
        values: dict[str, int] = {}
        for name in ("probes_executed", "probe_cache_hits",
                     "probe_cache_misses", "node_reads", "pairs_probed",
                     "pairs_refined_out", "probes_shared"):
            value = payload.get(name, 0 if name == "probes_shared" else None)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ObservabilityError(
                    f"ProbeCounts payload field {name!r} must be an "
                    f"integer, got {value!r}")
            values[name] = value
        return cls(**values)


@dataclass(frozen=True)
class QueryReport:
    """Structured per-query diagnostics (the EXPLAIN output).

    Attributes
    ----------
    query_regions:
        Regions extracted from (or recalled for) the query image.
    signature_cache_hit:
        Whether the query's region set came from the signature cache.
    probe:
        The probe phase's exact counts (:class:`ProbeCounts`).
    candidate_images:
        Distinct database images holding at least one matching region
        — the population entering the area-fraction matching step.
    matched_images:
        Images whose Definition 4.3 similarity cleared ``tau`` (before
        the ``max_results`` cap).
    returned_images:
        Matches actually returned (after ``max_results``).
    stages:
        Wall-clock :class:`StageTiming` rows in execution order
        (``extract``, ``probe``, ``match``, ``rank``).
    total_seconds:
        Wall-clock time of the whole query.
    """

    query_regions: int
    signature_cache_hit: bool
    probe: ProbeCounts
    candidate_images: int
    matched_images: int
    returned_images: int
    stages: tuple[StageTiming, ...] = field(default=())
    total_seconds: float = 0.0

    def stage_seconds(self, name: str) -> float:
        """Total seconds across stages called ``name`` (0.0 if absent)."""
        return sum(timing.seconds for timing in self.stages
                   if timing.name == name)

    def counts(self) -> dict[str, int]:
        """Every deterministic count field as a flat dict.

        The keys are stable; benchmark JSON and tests key off them.
        """
        return {
            "query_regions": self.query_regions,
            "signature_cache_hit": int(self.signature_cache_hit),
            "probes_executed": self.probe.probes_executed,
            "probe_cache_hits": self.probe.probe_cache_hits,
            "probe_cache_misses": self.probe.probe_cache_misses,
            "index_node_reads": self.probe.node_reads,
            "pairs_probed": self.probe.pairs_probed,
            "pairs_refined_out": self.probe.pairs_refined_out,
            "pairs_retained": self.probe.pairs_retained,
            "probes_shared": self.probe.probes_shared,
            "candidate_images": self.candidate_images,
            "matched_images": self.matched_images,
            "returned_images": self.returned_images,
        }

    def to_dict(self) -> dict[str, Any]:
        """The full report as a JSON-ready dict.

        The payload round-trips through :meth:`from_dict` and is the
        ``query`` / ``slow_query`` event-log body and the shape behind
        ``walrus stats --format=json``.  Counts are exact ints; only
        the timing fields vary between runs.
        """
        return {
            "query_regions": self.query_regions,
            "signature_cache_hit": self.signature_cache_hit,
            "probe": self.probe.to_dict(),
            "candidate_images": self.candidate_images,
            "matched_images": self.matched_images,
            "returned_images": self.returned_images,
            "stages": [{"name": timing.name, "seconds": timing.seconds}
                       for timing in self.stages],
            "total_seconds": self.total_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryReport":
        """Rebuild a report from a :meth:`to_dict` payload.

        Accepts payloads with missing or partial ``stages`` (an event
        row written by an older version, or a query traced without
        timings); raises :class:`ObservabilityError` on malformed
        count fields.
        """
        counts: dict[str, int] = {}
        for name in ("query_regions", "candidate_images",
                     "matched_images", "returned_images"):
            value = payload.get(name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ObservabilityError(
                    f"QueryReport payload field {name!r} must be an "
                    f"integer, got {value!r}")
            counts[name] = value
        probe_payload = payload.get("probe")
        if not isinstance(probe_payload, Mapping):
            raise ObservabilityError(
                "QueryReport payload field 'probe' must be an object")
        stages: list[StageTiming] = []
        for row in payload.get("stages") or ():
            if not isinstance(row, Mapping) or "name" not in row:
                raise ObservabilityError(
                    f"QueryReport stage row is malformed: {row!r}")
            stages.append(StageTiming(str(row["name"]),
                                      float(row.get("seconds", 0.0))))
        return cls(
            query_regions=counts["query_regions"],
            signature_cache_hit=bool(payload.get("signature_cache_hit",
                                                 False)),
            probe=ProbeCounts.from_dict(probe_payload),
            candidate_images=counts["candidate_images"],
            matched_images=counts["matched_images"],
            returned_images=counts["returned_images"],
            stages=tuple(stages),
            total_seconds=float(payload.get("total_seconds", 0.0)),
        )

    def render(self) -> str:
        """A human-readable, ``EXPLAIN``-style multi-line summary.

        Degrades gracefully on partial reports: the timing line shows
        the canonical stages that were actually recorded (plus any
        extra stage names, in recorded order) and is omitted entirely
        when no stage was timed — a report rebuilt from an event row
        without timings still renders.
        """
        lines = [
            "QUERY PLAN (walrus)",
            f"  extract: {self.query_regions} query regions"
            + (" [signature cache hit]" if self.signature_cache_hit
               else ""),
            f"  probe:   {self.probe.probes_executed} index probes "
            f"({self.probe.probe_cache_hits} cached"
            + (f", {self.probe.probes_shared} batch-shared"
               if self.probe.probes_shared else "")
            + f"), {self.probe.node_reads} R*-tree node reads",
            f"           {self.probe.pairs_probed} candidate pairs"
            + (f", {self.probe.pairs_refined_out} dropped by refinement"
               if self.probe.pairs_refined_out else ""),
            f"  match:   {self.candidate_images} candidate images -> "
            f"{self.matched_images} over tau -> "
            f"{self.returned_images} returned",
        ]
        recorded = [timing.name for timing in self.stages]
        if recorded:
            shown = [name for name in CANONICAL_STAGES if name in recorded]
            shown += [name for name in dict.fromkeys(recorded)
                      if name not in CANONICAL_STAGES]
            parts = ", ".join(
                f"{name} {self.stage_seconds(name) * 1e3:.1f}ms"
                for name in shown)
            lines.append(f"  timing:  {parts} "
                         f"(total {self.total_seconds * 1e3:.1f}ms)")
        return "\n".join(lines)
