"""Per-operation stage tracing.

A :class:`StageTrace` records what one logical operation (a query, an
ingest batch) did: named stage timings in execution order plus named
integer counts.  Unlike the process-wide registry it is explicitly
created, threaded through the operation, and read once at the end —
the substrate of the EXPLAIN-style :class:`~repro.observability.report.
QueryReport`.

Code on the hot path writes ``with trace.stage("probe"): ...``
unconditionally; when tracing is off it is handed the shared
:data:`NULL_TRACE`, whose stage contexts never touch the clock.

:class:`SpanStageTrace` is the bridge to the span layer
(:mod:`repro.observability.spans`): with the process tracer enabled,
the query path swaps it in and every stage block *also* opens a child
span of the current request span, while the recorded
:class:`StageTiming` rows — and therefore the EXPLAIN
:class:`~repro.observability.report.QueryReport` — keep exactly their
old shape.  With the tracer disabled nothing here changes, so EXPLAIN
output stays byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.observability.registry import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.spans import (_NullSpanHandle, _SpanHandle,
                                           Span, Tracer)


@dataclass(frozen=True)
class StageTiming:
    """One completed stage: its name and wall-clock seconds."""

    name: str
    seconds: float


class _StageContext:
    """Context manager appending a :class:`StageTiming` on exit."""

    __slots__ = ("_trace", "_name", "_stopwatch")

    def __init__(self, trace: "StageTrace", name: str) -> None:
        self._trace = trace
        self._name = name
        self._stopwatch: Stopwatch | None = None

    def __enter__(self) -> "_StageContext":
        self._stopwatch = Stopwatch()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._stopwatch is not None:
            self._trace._record(StageTiming(self._name,
                                            self._stopwatch.elapsed))
            self._stopwatch = None


class _NullStageContext:
    """Shared do-nothing stage context used by :data:`NULL_TRACE`."""

    __slots__ = ()

    def __enter__(self) -> "_NullStageContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_STAGE = _NullStageContext()


class StageTrace:
    """An active recorder of stage timings and counts.

    Stages nest and repeat freely; they are recorded flat, in
    completion order.  Counts are plain named integers accumulated
    with :meth:`add`.
    """

    enabled = True

    __slots__ = ("stages", "counts")

    def __init__(self) -> None:
        self.stages: list[StageTiming] = []
        self.counts: dict[str, int] = {}

    def stage(self, name: str
              ) -> "_StageContext | _NullStageContext | _SpanStageContext":
        """A context manager timing the enclosed block as ``name``."""
        return _StageContext(self, name)

    def _record(self, timing: StageTiming) -> None:
        self.stages.append(timing)

    def add(self, name: str, amount: int = 1) -> None:
        """Accumulate ``amount`` into the count called ``name``."""
        self.counts[name] = self.counts.get(name, 0) + amount

    def count(self, name: str) -> int:
        """The accumulated count (0 when never added)."""
        return self.counts.get(name, 0)

    def stage_seconds(self, name: str) -> float:
        """Total recorded seconds across stages called ``name``."""
        return sum(timing.seconds for timing in self.stages
                   if timing.name == name)

    def total_seconds(self) -> float:
        """Sum over every recorded stage."""
        return sum(timing.seconds for timing in self.stages)


class _NullStageTrace(StageTrace):
    """The no-op trace: every recording method does nothing.

    Hot paths can hold a ``StageTrace`` reference unconditionally; the
    null instance keeps them branch-free and allocation-free when
    tracing is off.
    """

    enabled = False

    __slots__ = ()

    def stage(self, name: str) -> _NullStageContext:
        return _NULL_STAGE

    def _record(self, timing: StageTiming) -> None:
        return None

    def add(self, name: str, amount: int = 1) -> None:
        return None


#: Shared no-op trace for the not-explaining fast path.
NULL_TRACE = _NullStageTrace()


class _SpanStageContext:
    """Stage context that opens a tracer span for the block and feeds
    the span's own duration back into the stage-timing list — one
    clock-read pair serves both the EXPLAIN report and the trace."""

    __slots__ = ("_trace", "_name", "_handle", "_span")

    def __init__(self, trace: "SpanStageTrace", name: str) -> None:
        self._trace = trace
        self._name = name
        self._handle: "_SpanHandle | _NullSpanHandle | None" = None
        self._span: "Span | None" = None

    def __enter__(self) -> "_SpanStageContext":
        from repro.observability.spans import Span
        handle = self._trace.tracer.span(self._name)
        self._handle = handle
        span = handle.__enter__()
        self._span = span if isinstance(span, Span) else None
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None, tb: object) -> None:
        handle, self._handle = self._handle, None
        span, self._span = self._span, None
        if handle is not None:
            handle.__exit__(exc_type, exc, tb)
        if span is not None and self._trace.keep_timings:
            self._trace._record(StageTiming(self._name, span.duration))


class SpanStageTrace(StageTrace):
    """A :class:`StageTrace` whose stages are also tracer spans.

    The query path swaps this in when the process tracer is enabled:
    each ``with trace.stage(name)`` block becomes a child span of the
    thread's current span (named after the stage), and — when
    ``keep_timings`` is set because an EXPLAIN report or the event log
    wants the flat timing rows — a :class:`StageTiming` computed from
    the span's duration is recorded exactly as before.  Counts behave
    identically to the base class.
    """

    __slots__ = ("tracer", "keep_timings")

    def __init__(self, tracer: "Tracer", *,
                 keep_timings: bool = True) -> None:
        super().__init__()
        self.tracer = tracer
        self.keep_timings = keep_timings

    def stage(self, name: str) -> "_SpanStageContext":
        """A context manager spanning *and* timing the block."""
        return _SpanStageContext(self, name)
