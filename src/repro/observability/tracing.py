"""Per-operation stage tracing.

A :class:`StageTrace` records what one logical operation (a query, an
ingest batch) did: named stage timings in execution order plus named
integer counts.  Unlike the process-wide registry it is explicitly
created, threaded through the operation, and read once at the end —
the substrate of the EXPLAIN-style :class:`~repro.observability.report.
QueryReport`.

Code on the hot path writes ``with trace.stage("probe"): ...``
unconditionally; when tracing is off it is handed the shared
:data:`NULL_TRACE`, whose stage contexts never touch the clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observability.registry import Stopwatch


@dataclass(frozen=True)
class StageTiming:
    """One completed stage: its name and wall-clock seconds."""

    name: str
    seconds: float


class _StageContext:
    """Context manager appending a :class:`StageTiming` on exit."""

    __slots__ = ("_trace", "_name", "_stopwatch")

    def __init__(self, trace: "StageTrace", name: str) -> None:
        self._trace = trace
        self._name = name
        self._stopwatch: Stopwatch | None = None

    def __enter__(self) -> "_StageContext":
        self._stopwatch = Stopwatch()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._stopwatch is not None:
            self._trace._record(StageTiming(self._name,
                                            self._stopwatch.elapsed))
            self._stopwatch = None


class _NullStageContext:
    """Shared do-nothing stage context used by :data:`NULL_TRACE`."""

    __slots__ = ()

    def __enter__(self) -> "_NullStageContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_STAGE = _NullStageContext()


class StageTrace:
    """An active recorder of stage timings and counts.

    Stages nest and repeat freely; they are recorded flat, in
    completion order.  Counts are plain named integers accumulated
    with :meth:`add`.
    """

    enabled = True

    __slots__ = ("stages", "counts")

    def __init__(self) -> None:
        self.stages: list[StageTiming] = []
        self.counts: dict[str, int] = {}

    def stage(self, name: str) -> _StageContext | _NullStageContext:
        """A context manager timing the enclosed block as ``name``."""
        return _StageContext(self, name)

    def _record(self, timing: StageTiming) -> None:
        self.stages.append(timing)

    def add(self, name: str, amount: int = 1) -> None:
        """Accumulate ``amount`` into the count called ``name``."""
        self.counts[name] = self.counts.get(name, 0) + amount

    def count(self, name: str) -> int:
        """The accumulated count (0 when never added)."""
        return self.counts.get(name, 0)

    def stage_seconds(self, name: str) -> float:
        """Total recorded seconds across stages called ``name``."""
        return sum(timing.seconds for timing in self.stages
                   if timing.name == name)

    def total_seconds(self) -> float:
        """Sum over every recorded stage."""
        return sum(timing.seconds for timing in self.stages)


class _NullStageTrace(StageTrace):
    """The no-op trace: every recording method does nothing.

    Hot paths can hold a ``StageTrace`` reference unconditionally; the
    null instance keeps them branch-free and allocation-free when
    tracing is off.
    """

    enabled = False

    __slots__ = ()

    def stage(self, name: str) -> _NullStageContext:
        return _NULL_STAGE

    def _record(self, timing: StageTiming) -> None:
        return None

    def add(self, name: str, amount: int = 1) -> None:
        return None


#: Shared no-op trace for the not-explaining fast path.
NULL_TRACE = _NullStageTrace()
