"""Observability: metrics, stage tracing and query reports.

This package is the single place the WALRUS system accounts for where
its time and I/O go.  It is dependency-free and has three layers:

* :mod:`repro.observability.registry` — a process-wide
  :class:`MetricsRegistry` of named counters, gauges, histograms and
  timer contexts.  Disabled by default; every instrument is a true
  no-op until :func:`enable_metrics` is called, so the hot paths pay
  one attribute load and branch, nothing more.  :class:`Stopwatch` is
  the sanctioned way to measure wall-clock time inside ``src/repro``
  (lint rule R006 forbids calling ``time.time()`` and friends
  directly).
* :mod:`repro.observability.tracing` — :class:`StageTrace`, a
  per-operation recorder of named stage timings and counts.  The
  query path threads a trace through its stages when ``explain=True``
  and the shared no-op :data:`NULL_TRACE` otherwise;
  :class:`SpanStageTrace` bridges the stage blocks onto the span
  layer when the tracer is on.
* :mod:`repro.observability.spans` /
  :mod:`repro.observability.flightrecorder` — distributed tracing:
  hierarchical :class:`Span` trees with W3C ``traceparent``
  propagation (:func:`parse_traceparent` /
  :func:`format_traceparent`), a process-wide seeded
  :class:`Tracer` with head sampling (:func:`enable_tracing`), and
  the always-on tail-sampling :class:`FlightRecorder` ring that
  force-retains slow, deadline-exceeded and errored traces behind
  ``GET /debug/traces``.
* :mod:`repro.observability.report` — :class:`QueryReport`, the
  structured EXPLAIN-style record returned by
  ``WalrusDatabase.query(..., explain=True)``: per-stage timings,
  R*-tree node accesses, candidate counts before/after filtering and
  cache behavior, with a human-readable :meth:`QueryReport.render`
  and a JSON round-trip (:meth:`QueryReport.to_dict` /
  :meth:`QueryReport.from_dict`).
* :mod:`repro.observability.events` — the structured JSON-lines
  event log (:class:`EventLog`): typed ``ingest`` / ``query`` /
  ``slow_query`` / ``verify`` / ``fsck`` / ``fault`` events over a
  size-rotated stdlib logging sink.  Disabled by default and then a
  true no-op.
* :mod:`repro.observability.export` /
  :mod:`repro.observability.server` — external telemetry surfaces:
  Prometheus text-format 0.0.4 rendering, JSON snapshots, and the
  daemon-threaded :class:`MetricsServer` behind
  ``walrus serve-metrics`` (``/metrics`` + ``/healthz``).

Every *count* the layer emits is deterministic under fixed seeds (the
paper's own evaluation tables are built on these observables); only
the timings vary run to run.
"""

from repro.observability.deadline import Deadline
from repro.observability.events import (
    EVENT_TYPES,
    EventLog,
    disable_events,
    enable_events,
    get_events,
    parse_event_line,
    set_events,
)
from repro.observability.export import (
    render_chrome_trace,
    render_json,
    render_prometheus,
    sanitize_metric_name,
    snapshot_payload,
)
from repro.observability.flightrecorder import FlightRecorder
from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    Stopwatch,
    disable_metrics,
    enable_metrics,
    get_metrics,
    set_metrics,
)
from repro.observability.report import ProbeCounts, QueryReport
from repro.observability.server import MetricsServer
from repro.observability.spans import (
    NULL_SPAN,
    Span,
    SpanContext,
    TraceSegment,
    Tracer,
    current_span,
    current_traceparent,
    disable_tracing,
    enable_tracing,
    format_traceparent,
    get_tracer,
    parse_traceparent,
    set_tracer,
)
from repro.observability.tracing import (NULL_TRACE, SpanStageTrace,
                                         StageTiming, StageTrace)
from repro.observability.traceview import (
    find_traces,
    parse_prometheus_text,
    quantile_from_buckets,
    render_span_tree,
    render_top,
    render_trace_list,
    trace_summaries,
)

__all__ = [
    "Counter",
    "Deadline",
    "EVENT_TYPES",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_SPAN",
    "NULL_TRACE",
    "ProbeCounts",
    "QueryReport",
    "Span",
    "SpanContext",
    "SpanStageTrace",
    "StageTiming",
    "StageTrace",
    "Stopwatch",
    "TraceSegment",
    "Tracer",
    "current_span",
    "current_traceparent",
    "disable_events",
    "disable_metrics",
    "disable_tracing",
    "enable_events",
    "enable_metrics",
    "enable_tracing",
    "find_traces",
    "format_traceparent",
    "get_events",
    "get_metrics",
    "get_tracer",
    "parse_event_line",
    "parse_prometheus_text",
    "parse_traceparent",
    "quantile_from_buckets",
    "render_chrome_trace",
    "render_json",
    "render_prometheus",
    "render_span_tree",
    "render_top",
    "render_trace_list",
    "sanitize_metric_name",
    "set_events",
    "set_metrics",
    "set_tracer",
    "snapshot_payload",
    "trace_summaries",
]
