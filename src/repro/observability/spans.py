"""Hierarchical span-based tracing with W3C ``traceparent`` propagation.

Where :class:`~repro.observability.tracing.StageTrace` records a flat
list of stage timings for *one* operation inside *one* process, a
:class:`Span` tree explains a whole request: the client's HTTP call,
the server's admission wait, the session acquire, and every query
stage hang off one ``trace_id`` with parent links, so a slow answer is
attributable to a specific stage of a specific request across the
process boundary.

The pieces:

* :class:`SpanContext` — the propagated identity (``trace_id``,
  ``span_id``, sampled flag); :func:`format_traceparent` /
  :func:`parse_traceparent` carry it over HTTP as a W3C
  ``traceparent`` header (``00-<trace>-<span>-<flags>``).
* :class:`Span` — one timed operation: name, parent link, attributes,
  point-in-time events, and an error status stamped from the exception
  (``with``-block) that ended it.  Times are process-relative seconds
  from a module-level :class:`Stopwatch` epoch — monotonic, and
  exactly what the Chrome trace export needs.
* :class:`Tracer` — creates spans, tracks the current one in a
  :class:`contextvars.ContextVar` (each server handler thread gets its
  own), decides head sampling with a seeded RNG (determinism rule
  R002), and hands every completed trace segment to its
  :class:`~repro.observability.flightrecorder.FlightRecorder`.

**Disabled is a true no-op** (the same contract the metrics registry
and event log keep): while ``tracer.enabled`` is false,
:meth:`Tracer.span` returns one shared context-manager singleton whose
enter/exit touch neither the clock nor the allocator — a test asserts
zero clock reads and zero allocations per span.  Hot paths therefore
write ``with tracer.span("probe"):`` unconditionally.

Sampling is *head* sampling: the root span of a trace draws once from
the seeded RNG against ``sample_rate``, and the decision propagates in
the ``traceparent`` flags so client and server retain the same traces.
The flight recorder adds *tail* retention on top — slow,
deadline-exceeded and errored traces are kept even at 0% head
sampling.
"""

from __future__ import annotations

import random
import threading
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any

from repro.exceptions import DeadlineExceededError, ObservabilityError
from repro.observability.registry import Stopwatch, get_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.observability.flightrecorder import FlightRecorder

#: The one ``traceparent`` version this library emits.
TRACEPARENT_VERSION = "00"

#: Default head-sampling rate for :func:`enable_tracing`.
DEFAULT_SAMPLE_RATE = 1.0

_HEX = frozenset("0123456789abcdef")

#: The process-relative timeline origin.  Every span start/end is
#: ``_EPOCH.elapsed`` — monotonic seconds since this module loaded —
#: so durations are exact and the Chrome export's microsecond
#: timestamps never jump with wall-clock adjustments.
_EPOCH = Stopwatch()


class SpanContext:
    """The propagated identity of one span: ids plus the sampled flag."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def __repr__(self) -> str:
        return (f"SpanContext(trace_id={self.trace_id!r}, "
                f"span_id={self.span_id!r}, sampled={self.sampled})")


def format_traceparent(context: SpanContext) -> str:
    """``context`` as a W3C ``traceparent`` header value.

    ``00-<32 hex trace_id>-<16 hex span_id>-<flags>`` with the sampled
    bit as the only flag.
    """
    flags = "01" if context.sampled else "00"
    return (f"{TRACEPARENT_VERSION}-{context.trace_id}-"
            f"{context.span_id}-{flags}")


def _is_hex(value: str, width: int) -> bool:
    return len(value) == width and all(ch in _HEX for ch in value)


def parse_traceparent(header: str | None) -> SpanContext | None:
    """Parse a ``traceparent`` header; ``None`` when absent or invalid.

    Follows the W3C Trace Context rules: exactly four ``-``-separated
    fields for version ``00`` (a version-``00`` header with trailing
    fields is malformed); *future* versions are accepted as long as
    their first four fields parse (the spec's forward-compatibility
    clause), while version ``ff`` is explicitly forbidden.  All-zero
    trace or span ids are invalid.  A malformed header is dropped, not
    raised — a broken upstream must not fail the request.
    """
    if header is None:
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[:4]
    if not _is_hex(version.lower(), 2) or version.lower() == "ff":
        return None
    if version == TRACEPARENT_VERSION and len(parts) != 4:
        return None
    trace_id = trace_id.lower()
    span_id = span_id.lower()
    if not _is_hex(trace_id, 32) or trace_id == "0" * 32:
        return None
    if not _is_hex(span_id, 16) or span_id == "0" * 16:
        return None
    if not _is_hex(flags.lower(), 2):
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return SpanContext(trace_id, span_id, sampled)


class _TraceState:
    """Mutable per-segment accumulator shared by a trace's local spans.

    One request is handled by one thread, so the state is only ever
    touched from the thread that opened the segment's root span — no
    lock needed; the handoff to the flight recorder happens once, at
    root-span exit.
    """

    __slots__ = ("trace_id", "sampled", "spans", "root")

    def __init__(self, trace_id: str, sampled: bool) -> None:
        self.trace_id = trace_id
        self.sampled = sampled
        self.spans: list["Span"] = []  # completed spans, completion order
        self.root: "Span | None" = None


class Span:
    """One timed operation inside a trace.

    Created by :meth:`Tracer.span` (never directly) and closed by its
    ``with`` block; :attr:`end` stays ``None`` while open.  Attributes
    and events are only worth setting when :attr:`recording` is true —
    the disabled tracer hands out :data:`NULL_SPAN`, whose mutators do
    nothing, so call sites can stay unconditional.
    """

    __slots__ = ("name", "context", "parent_id", "start", "end",
                 "attributes", "events", "status", "_state")

    recording = True

    def __init__(self, name: str, context: SpanContext,
                 parent_id: str | None, start: float,
                 state: _TraceState) -> None:
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attributes: dict[str, Any] = {}
        self.events: list[dict[str, Any]] = []
        self.status = "ok"
        self._state = state

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while the span is open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one key/value to the span."""
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: Any) -> None:
        """Record a named point-in-time event on the span."""
        event: dict[str, Any] = {"name": name, "at": _EPOCH.elapsed}
        if attributes:
            event.update(attributes)
        self.events.append(event)

    def to_dict(self) -> dict[str, Any]:
        """The span as a JSON-ready dict (the dump/export shape)."""
        return {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": list(self.events),
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, trace_id={self.context.trace_id!r}, "
                f"status={self.status!r})")


class _NullSpan:
    """The shared span handed out while tracing is disabled."""

    __slots__ = ()

    recording = False
    name = ""
    parent_id: str | None = None
    status = "ok"

    def set_attribute(self, key: str, value: Any) -> None:
        return None

    def add_event(self, name: str, **attributes: Any) -> None:
        return None


#: Shared do-nothing span (what disabled ``with tracer.span(...)``
#: blocks receive).
NULL_SPAN = _NullSpan()


class _NullSpanHandle:
    """Shared no-op context manager for the disabled tracer.

    One module-level instance serves every disabled ``span()`` call:
    enter and exit read no clock and allocate nothing, which the
    overhead-guard test asserts directly.
    """

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN_HANDLE = _NullSpanHandle()

#: The current span of this thread of execution.  A ``ContextVar`` so
#: every server handler thread (and any future async task) carries its
#: own chain without explicit plumbing.
_ACTIVE: ContextVar["Span | None"] = ContextVar("walrus_active_span",
                                               default=None)


def current_span() -> Span | None:
    """The innermost open span on this thread (``None`` outside one)."""
    return _ACTIVE.get()


def current_traceparent() -> str | None:
    """The ``traceparent`` header for the current span, if any."""
    span = _ACTIVE.get()
    if span is None:
        return None
    return format_traceparent(span.context)


class _SpanHandle:
    """Context manager opening one live span (from :meth:`Tracer.span`).

    Lint rule R014 requires every handle to be consumed by a ``with``
    statement (or an explicit try/finally in the span machinery
    itself) so no span is left open.
    """

    __slots__ = ("_tracer", "_name", "_remote", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str,
                 remote: SpanContext | None) -> None:
        self._tracer = tracer
        self._name = name
        self._remote = remote
        self._span: Span | None = None
        self._token: Any = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        parent = _ACTIVE.get()
        if self._remote is not None:
            # Continuing a trace from another process: honor its ids
            # and its sampling decision.
            state = _TraceState(self._remote.trace_id,
                                self._remote.sampled)
            parent_id: str | None = self._remote.span_id
        elif parent is not None:
            state = parent._state
            parent_id = parent.context.span_id
        else:
            state = _TraceState(tracer._make_trace_id(),
                                tracer._decide_sampled())
            parent_id = None
        context = SpanContext(state.trace_id, tracer._make_span_id(),
                              state.sampled)
        span = Span(self._name, context, parent_id, _EPOCH.elapsed, state)
        if state.root is None:
            state.root = span
        self._span = span
        self._token = _ACTIVE.set(span)
        return span

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None, tb: object) -> None:
        span = self._span
        if span is None:
            return None
        self._span = None
        span.end = _EPOCH.elapsed
        if exc is not None:
            if isinstance(exc, DeadlineExceededError):
                span.status = "deadline_exceeded"
            else:
                span.status = "error"
            span.set_attribute("error.type", type(exc).__name__)
            span.set_attribute("error.message", str(exc))
        _ACTIVE.reset(self._token)
        state = span._state
        state.spans.append(span)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.histogram(
                f"trace.span_seconds.{span.name}").observe(span.duration)
        if span is state.root:
            self._tracer._finish_segment(state)
        return None


class Tracer:
    """Creates spans, samples traces, and feeds the flight recorder.

    Parameters
    ----------
    enabled:
        Start enabled (the process-wide default tracer starts
        disabled; tests build enabled instances directly).
    sample_rate:
        Head-sampling probability in ``[0, 1]`` for traces rooted in
        this process; propagated decisions (a ``traceparent`` parent)
        are honored as-is.
    seed:
        Seed for the id/sampling RNG — two runs with one seed produce
        identical trace ids and sampling decisions (rule R002).
    recorder:
        The flight recorder receiving completed segments; built with
        defaults when omitted.
    """

    def __init__(self, *, enabled: bool = False,
                 sample_rate: float = DEFAULT_SAMPLE_RATE, seed: int = 0,
                 recorder: "FlightRecorder | None" = None) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ObservabilityError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        self.enabled = enabled
        self.sample_rate = sample_rate
        # Built lazily on first access: the flightrecorder module
        # imports this one, so a default cannot be constructed while
        # either module is still initializing.
        self._recorder: "FlightRecorder | None" = recorder
        self._rng = random.Random(seed)  # guarded-by: _lock
        #: Serializes id generation and sampling draws: ``Random`` is
        #: not safe under concurrent ``getrandbits`` from the server's
        #: handler threads.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Switch
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @property
    def recorder(self) -> "FlightRecorder":
        """The tracer's flight recorder (default-built on first use)."""
        recorder = self._recorder
        if recorder is None:
            from repro.observability.flightrecorder import FlightRecorder
            recorder = FlightRecorder()
            self._recorder = recorder
        return recorder

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(self, name: str,
             parent: SpanContext | None = None
             ) -> _SpanHandle | _NullSpanHandle:
        """A context manager opening a span called ``name``.

        ``parent`` carries a *remote* parent (a parsed ``traceparent``
        header); without it the span nests under this thread's current
        span, or roots a new trace.  While the tracer is disabled this
        returns a shared no-op handle without touching the clock or
        the allocator.
        """
        if not self.enabled:
            return _NULL_SPAN_HANDLE
        return _SpanHandle(self, name, parent)

    def _make_trace_id(self) -> str:
        with self._lock:
            value = self._rng.getrandbits(128)
        return f"{value or 1:032x}"

    def _make_span_id(self) -> str:
        with self._lock:
            value = self._rng.getrandbits(64)
        return f"{value or 1:016x}"

    def _decide_sampled(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < self.sample_rate

    # ------------------------------------------------------------------
    # Segment completion
    # ------------------------------------------------------------------
    def _finish_segment(self, state: _TraceState) -> None:
        """Root span closed: hand the segment to the recorder and,
        when sampled and the event log is on, emit a ``trace`` event
        (the JSON-lines exporter)."""
        segment = TraceSegment(trace_id=state.trace_id,
                               sampled=state.sampled,
                               spans=tuple(state.spans))
        self.recorder.record(segment)
        from repro.observability.events import get_events
        events = get_events()
        if events.enabled and state.sampled:
            events.emit("trace", segment.to_dict())


class TraceSegment:
    """The completed spans of one trace from one process.

    A distributed trace is several segments sharing a ``trace_id``
    (the client's and the server's); the flight recorder's dump merges
    them back together.
    """

    __slots__ = ("trace_id", "sampled", "spans")

    def __init__(self, *, trace_id: str, sampled: bool,
                 spans: tuple[Span, ...]) -> None:
        self.trace_id = trace_id
        self.sampled = sampled
        self.spans = spans

    @property
    def root(self) -> Span | None:
        """The segment's root span (opened first, closed last)."""
        return self.spans[-1] if self.spans else None

    @property
    def duration(self) -> float:
        """The root span's duration (0.0 for an empty segment)."""
        root = self.root
        return root.duration if root is not None else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready shape: ``{"trace_id", "sampled", "spans"}``."""
        return {
            "trace_id": self.trace_id,
            "sampled": self.sampled,
            "spans": [span.to_dict() for span in self.spans],
        }


#: The process-wide default tracer.  Disabled until someone opts in.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer the library's hot paths span through."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one.

    Test isolation hook, mirroring
    :func:`~repro.observability.registry.set_metrics`.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def enable_tracing(*, sample_rate: float = DEFAULT_SAMPLE_RATE,
                   seed: int = 0, slow_seconds: float | None = None,
                   capacity: int | None = None) -> Tracer:
    """Replace the process-wide tracer with an enabled one; returns it.

    ``slow_seconds`` / ``capacity`` configure the new tracer's flight
    recorder (defaults apply when omitted).  A fresh tracer (rather
    than toggling the old one) guarantees the RNG and recorder start
    from a known state — the same determinism contract
    :func:`enable_events` keeps for the event log.
    """
    from repro.observability.flightrecorder import FlightRecorder
    recorder_kwargs: dict[str, Any] = {}
    if slow_seconds is not None:
        recorder_kwargs["slow_seconds"] = slow_seconds
    if capacity is not None:
        recorder_kwargs["capacity"] = capacity
    tracer = Tracer(enabled=True, sample_rate=sample_rate, seed=seed,
                    recorder=FlightRecorder(**recorder_kwargs))
    set_tracer(tracer)
    return tracer


def disable_tracing() -> Tracer:
    """Switch the process-wide tracer off; returns it."""
    _TRACER.disable()
    return _TRACER
