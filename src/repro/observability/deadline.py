"""Deadlines: a wall-clock budget threaded through an operation.

A :class:`Deadline` is created when a request arrives (the HTTP layer
of ``walrus serve``, or any caller of
``WalrusDatabase.query(..., deadline=...)``) and handed down through
the query path.  Long-running stages call :meth:`Deadline.check` at
their natural checkpoints — before every R*-tree node read, per
matched pair — so an expired budget aborts the work within one
checkpoint interval instead of running to completion.

The class lives in the observability package because it is a clock
consumer: it is built on :class:`Stopwatch`, the one sanctioned
wrapper around ``time.perf_counter`` (lint rule R006), and it keeps
the library's layering clean — both :mod:`repro.core` and
:mod:`repro.index` already depend on observability, and the server
package depends on all three.

Checkpoints treat ``None`` as "no deadline" so hot paths stay
branch-cheap::

    if deadline is not None:
        deadline.check("probe")
"""

from __future__ import annotations

from repro.exceptions import DeadlineExceededError, InvalidParameterError
from repro.observability.registry import Stopwatch


class Deadline:
    """A running time budget with explicit expiry checkpoints.

    Parameters
    ----------
    budget_seconds:
        Wall-clock seconds this operation may take, measured from
        construction (or :meth:`restart`).  Must be positive; use
        ``None`` at call sites, not a huge budget, for "no deadline".
    """

    __slots__ = ("budget_seconds", "_watch")

    def __init__(self, budget_seconds: float) -> None:
        if not budget_seconds > 0:
            raise InvalidParameterError(
                f"deadline budget must be > 0 seconds, got {budget_seconds}")
        self.budget_seconds = float(budget_seconds)
        self._watch = Stopwatch()

    @classmethod
    def after(cls, budget_seconds: float) -> "Deadline":
        """Alias constructor reading naturally at call sites:
        ``Deadline.after(0.250)``."""
        return cls(budget_seconds)

    def restart(self) -> None:
        """Reset the budget's start point to now."""
        self._watch.restart()

    @property
    def elapsed(self) -> float:
        """Seconds consumed so far."""
        return self._watch.elapsed

    def remaining(self) -> float:
        """Seconds left before expiry (never negative)."""
        left = self.budget_seconds - self._watch.elapsed
        return left if left > 0.0 else 0.0

    @property
    def expired(self) -> bool:
        """Whether the budget has been consumed."""
        return self._watch.elapsed >= self.budget_seconds

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent.

        ``context`` labels the checkpoint (``"probe"``, ``"match"``)
        and travels on the exception, so abort sites are identifiable
        in error responses and event logs.
        """
        elapsed = self._watch.elapsed
        if elapsed >= self.budget_seconds:
            where = f" at {context}" if context else ""
            raise DeadlineExceededError(
                f"deadline of {self.budget_seconds:.3f}s exceeded{where} "
                f"({elapsed:.3f}s elapsed)",
                budget_seconds=self.budget_seconds,
                elapsed_seconds=elapsed, context=context)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Deadline(budget={self.budget_seconds:.3f}s, "
                f"elapsed={self.elapsed:.3f}s)")
