"""Exporters: Prometheus text format 0.0.4 and JSON snapshots.

The :class:`~repro.observability.registry.MetricsRegistry` is an
in-process structure; this module renders it for external consumers:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): one ``# TYPE`` line per metric family followed by
  its samples.  Counters map to ``counter``, gauges to ``gauge`` and
  the registry's O(1) histograms to ``summary`` families with exact
  ``{quantile="0"}`` (minimum) and ``{quantile="1"}`` (maximum) lines
  plus the standard ``_sum`` / ``_count`` samples.  Each histogram
  *additionally* exports a native ``histogram`` family named
  ``<name>_hist`` with cumulative ``_bucket{le="..."}`` lines (ending
  in ``+Inf``) over the registry's fixed bucket ladder, so scrapers
  can compute real quantiles (``histogram_quantile``) instead of only
  min/max.
* :func:`render_chrome_trace` — a flight-recorder dump payload
  (``GET /debug/traces`` / ``walrus trace``) converted to the Chrome
  trace-event JSON format, loadable in Perfetto / ``chrome://tracing``
  (each trace gets its own track; spans are complete ``"X"`` events
  in microseconds, span events become instants).
* :func:`snapshot_payload` / :func:`render_json` — the same snapshot
  as a JSON-ready dict (histograms become
  ``{count, total, min, max, mean}`` objects), used by
  ``walrus stats --format=json`` and the benchmark-history harness.

Metric names are sanitized with :func:`sanitize_metric_name`: the
registry's dotted names (``query.seconds``) become legal Prometheus
names (``walrus_query_seconds``).  Sanitization must stay injective
over the registry's actual names; a collision (two registry names
mapping onto one exported name) raises
:class:`~repro.exceptions.ObservabilityError` rather than silently
merging two instruments.
"""

from __future__ import annotations

import json
import re
from typing import Any, Mapping

from repro.exceptions import ObservabilityError
from repro.observability.registry import (Counter, Gauge, Histogram,
                                          HistogramSummary, MetricsRegistry,
                                          get_metrics)

#: Default prefix namespacing every exported metric.
METRIC_PREFIX = "walrus_"

#: Characters legal in a Prometheus metric name body.
_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, *, prefix: str = METRIC_PREFIX) -> str:
    """``prefix`` + ``name`` with every illegal character folded to ``_``.

    Dots (the registry's grouping separator) become underscores;
    a leading digit after the prefix is guarded with an underscore so
    the result always matches ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
    """
    body = _ILLEGAL.sub("_", name)
    if not prefix and (not body or body[0].isdigit()):
        body = "_" + body
    return prefix + body


def _format_value(value: float) -> str:
    """A Prometheus-parseable number (integers without the ``.0``)."""
    if isinstance(value, bool):  # pragma: no cover - registry never stores
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float != as_float:  # NaN
        return "NaN"
    if as_float in (float("inf"), float("-inf")):
        return "+Inf" if as_float > 0 else "-Inf"
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(registry: MetricsRegistry | None = None, *,
                      prefix: str = METRIC_PREFIX) -> str:
    """The registry as Prometheus text exposition format 0.0.4.

    Families are emitted in sorted registry-name order; the output
    always ends with a newline (the scrape format requires it) and is
    valid even for an empty registry (empty string stays empty).
    """
    if registry is None:
        registry = get_metrics()
    lines: list[str] = []
    seen: dict[str, str] = {}
    for instrument in registry.instruments():
        exported = sanitize_metric_name(instrument.name, prefix=prefix)
        previous = seen.get(exported)
        if previous is not None:
            raise ObservabilityError(
                f"metric name collision after sanitization: "
                f"{previous!r} and {instrument.name!r} both export as "
                f"{exported!r}")
        seen[exported] = instrument.name
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {exported} counter")
            lines.append(f"{exported} {_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {exported} gauge")
            lines.append(f"{exported} {_format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            summary = instrument.summary()
            lines.append(f"# TYPE {exported} summary")
            lines.append(f'{exported}{{quantile="0"}} '
                         f"{_format_value(summary.minimum)}")
            lines.append(f'{exported}{{quantile="1"}} '
                         f"{_format_value(summary.maximum)}")
            lines.append(f"{exported}_sum {_format_value(summary.total)}")
            lines.append(f"{exported}_count "
                         f"{_format_value(summary.count)}")
            # The native histogram family rides alongside the summary
            # under a distinct name (a family cannot be both types).
            hist = f"{exported}_hist"
            previous = seen.get(hist)
            if previous is not None:
                raise ObservabilityError(
                    f"metric name collision after sanitization: "
                    f"{previous!r} and the generated histogram family "
                    f"of {instrument.name!r} both export as {hist!r}")
            seen[hist] = instrument.name
            lines.append(f"# TYPE {hist} histogram")
            for bound, cumulative in instrument.buckets():
                lines.append(f'{hist}_bucket{{le="{_format_value(bound)}"}} '
                             f"{cumulative}")
            lines.append(f"{hist}_sum {_format_value(summary.total)}")
            lines.append(f"{hist}_count {_format_value(summary.count)}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def render_chrome_trace(dump: Mapping[str, Any]) -> dict[str, Any]:
    """A flight-recorder dump as Chrome trace-event format JSON.

    ``dump`` is the payload of
    :meth:`~repro.observability.flightrecorder.FlightRecorder.dump`
    (or the body of ``GET /debug/traces``).  Each trace becomes its
    own track (``tid``), named by a metadata event; each span becomes
    a complete (``"X"``) event with microsecond ``ts``/``dur`` and its
    ids, status and attributes under ``args``; span events become
    thread-scoped instants.  The result serializes directly with
    :func:`json.dumps` and loads in Perfetto or ``chrome://tracing``.
    """
    trace_events: list[dict[str, Any]] = []
    traces = dump.get("traces")
    if not isinstance(traces, list):
        raise ObservabilityError(
            "trace dump payload has no 'traces' list")
    for tid, trace in enumerate(traces, start=1):
        trace_id = str(trace.get("trace_id", ""))
        retained = trace.get("retained", [])
        label = f"trace {trace_id[:16]}"
        if retained:
            label += f" [{','.join(str(r) for r in retained)}]"
        trace_events.append({
            "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": label},
        })
        for span in trace.get("spans", []):
            start = float(span.get("start", 0.0))
            args: dict[str, Any] = {
                "trace_id": trace_id,
                "span_id": span.get("span_id"),
                "parent_id": span.get("parent_id"),
                "status": span.get("status", "ok"),
            }
            attributes = span.get("attributes")
            if isinstance(attributes, Mapping):
                args.update(attributes)
            trace_events.append({
                "name": str(span.get("name", "span")),
                "cat": "walrus",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": round(start * 1e6, 3),
                "dur": round(float(span.get("duration", 0.0)) * 1e6, 3),
                "args": args,
            })
            for event in span.get("events", []):
                if not isinstance(event, Mapping):
                    continue
                trace_events.append({
                    "name": str(event.get("name", "event")),
                    "cat": "walrus",
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid,
                    "ts": round(float(event.get("at", start)) * 1e6, 3),
                })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def snapshot_payload(registry: MetricsRegistry | None = None
                     ) -> dict[str, Any]:
    """The registry snapshot as a JSON-ready dict, keyed by raw name.

    Counters stay ints, gauges floats; histogram summaries become
    ``{"count", "total", "min", "max", "mean"}`` objects.
    """
    if registry is None:
        registry = get_metrics()
    payload: dict[str, Any] = {}
    for name, value in registry.snapshot().items():
        if isinstance(value, HistogramSummary):
            payload[name] = {
                "count": value.count,
                "total": value.total,
                "min": value.minimum,
                "max": value.maximum,
                "mean": value.mean,
            }
        else:
            payload[name] = value
    return payload


def render_json(registry: MetricsRegistry | None = None, *,
                indent: int | None = 2) -> str:
    """:func:`snapshot_payload` serialized as sorted JSON text."""
    return json.dumps(snapshot_payload(registry), indent=indent,
                      sort_keys=True)
