"""Region model: what WALRUS stores per extracted image region.

A *region* is a cluster of sliding windows with similar wavelet
signatures (Section 5.3).  What survives of the cluster is its
signature — the centroid of the member window signatures, or their
bounding box — plus the coarse coverage bitmap of the pixels its
windows span.  Regions are the unit stored in the R*-tree and compared
by Definition 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitmap import CoverageBitmap
from repro.exceptions import ParameterError
from repro.index.geometry import Rect


@dataclass(frozen=True)
class RegionSignature:
    """A point-or-box signature in feature space.

    ``lower == upper`` for centroid signatures.  ``centroid`` is always
    available (for boxes it is the box center — used by distance
    computations and kNN probes).
    """

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=np.float64)
        upper = np.asarray(self.upper, dtype=np.float64)
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ParameterError("signature bounds must be equal-length vectors")
        if np.any(lower > upper):
            raise ParameterError("signature lower bound exceeds upper bound")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @classmethod
    def from_centroid(cls, centroid: np.ndarray) -> "RegionSignature":
        centroid = np.asarray(centroid, dtype=np.float64)
        return cls(centroid, centroid.copy())

    @classmethod
    def from_bounds(cls, lower: np.ndarray,
                    upper: np.ndarray) -> "RegionSignature":
        return cls(np.asarray(lower, dtype=np.float64),
                   np.asarray(upper, dtype=np.float64))

    @property
    def is_point(self) -> bool:
        return bool(np.array_equal(self.lower, self.upper))

    @property
    def centroid(self) -> np.ndarray:
        return (self.lower + self.upper) / 2.0

    @property
    def dimensions(self) -> int:
        return self.lower.shape[0]

    def to_rect(self) -> Rect:
        """The R*-tree key for this signature."""
        return Rect(self.lower, self.upper)

    def distance(self, other: "RegionSignature", *,
                 metric: str = "l2") -> float:
        """Minimum distance between the two signature boxes.

        For centroid signatures this is the plain point distance; for
        boxes it is the gap between the rectangles (0 if they overlap),
        matching Definition 4.1's epsilon-envelope test:
        ``a.distance(b) <= eps``  iff  ``a`` extended by ``eps``
        touches ``b``.
        """
        gap = np.maximum(self.lower - other.upper, 0.0)
        gap = np.maximum(gap, other.lower - self.upper)
        if metric == "l2":
            return float(np.linalg.norm(gap))
        if metric == "linf":
            return float(gap.max(initial=0.0))
        raise ParameterError(f"unknown metric {metric!r}")

    def matches(self, other: "RegionSignature", epsilon: float, *,
                metric: str = "l2") -> bool:
        """Definition 4.1: similar iff within the epsilon envelope."""
        return self.distance(other, metric=metric) <= epsilon


@dataclass(frozen=True)
class Region:
    """One extracted image region.

    Attributes
    ----------
    signature:
        Feature-space signature (centroid point or bounding box).
    bitmap:
        Coarse coverage bitmap over the source image.
    window_count:
        Number of sliding windows in the underlying cluster.
    cluster_radius:
        BIRCH radius of the cluster (a homogeneity diagnostic).
    refined:
        Optional detailed signature — the centroid of the member
        windows' larger ``r x r`` wavelet signatures, used by the
        Section 5.5 refined matching phase.  ``None`` unless the
        extractor was configured with ``refine_signature_size``.
    """

    signature: RegionSignature
    bitmap: CoverageBitmap
    window_count: int
    cluster_radius: float
    refined: np.ndarray | None = None

    def refined_distance(self, other: "Region") -> float:
        """Euclidean distance between the two refined signatures."""
        if self.refined is None or other.refined is None:
            raise ParameterError(
                "refined_distance requires regions extracted with "
                "refine_signature_size set"
            )
        return float(np.linalg.norm(self.refined - other.refined))

    @property
    def covered_pixels(self) -> int:
        """Pixels of the source image this region covers."""
        return self.bitmap.covered_pixels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Region windows={self.window_count} "
                f"pixels={self.covered_pixels} "
                f"r={self.cluster_radius:.4f}>")
