"""Parameter records for region extraction and querying.

All knobs of the WALRUS pipeline live in two frozen dataclasses so a
database and its queries are reproducible from the parameter values
alone.  Defaults follow Section 6.4 of the paper: fixed 64x64 sliding
windows, 2x2 signatures per color channel, YCC color space, clustering
threshold ``eps_c = 0.05``, centroid region signatures, 16x16 coverage
bitmaps, query threshold ``eps = 0.085`` and the quick matching
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ParameterError
from repro.wavelets.haar import is_power_of_two

#: Region signature modes (Definition 4.1 offers both).
SIGNATURE_MODES = ("centroid", "bbox")
#: Image-matching algorithms (Section 5.5).
MATCHING_MODES = ("quick", "greedy", "exact")
#: Similarity denominators (Section 4 discusses these variations).
AREA_MODES = ("both", "query", "smaller")


@dataclass(frozen=True)
class ExtractionParameters:
    """How images are decomposed into regions.

    Attributes
    ----------
    color_space:
        Working color space ("ycc", "rgb", "yiq" or "hsv"); inputs are
        converted on entry.
    signature_size:
        Side ``s`` of the per-channel wavelet signature (power of two).
    window_min, window_max:
        Smallest/largest sliding-window side (powers of two).  The
        paper's retrieval experiments fix both to 64; set them apart to
        enable the multi-scale windows of Section 5.1.
    stride:
        Slide distance ``t`` between adjacent windows (power of two).
    cluster_threshold:
        BIRCH radius threshold ``eps_c`` on window-signature clusters.
    signature_mode:
        "centroid" (cluster centroid point) or "bbox" (bounding box of
        the member signatures).
    bitmap_grid:
        Side of the coarse coverage bitmap (the paper stores 16x16).
    normalize_signatures:
        Apply the paper's scale normalization to each ``s x s`` block
        (a no-op for ``s = 2``).
    branching_factor, max_leaf_entries:
        CF-tree knobs passed through to BIRCH.
    min_region_windows:
        Drop clusters with fewer member windows than this (noise
        suppression; 1 keeps everything).
    refine_signature_size:
        When set, each region additionally carries the centroid of its
        windows' larger ``r x r`` signatures, enabling the Section 5.5
        "refined matching phase with more detailed signatures" at query
        time (see ``QueryParameters.refine_epsilon``).  Must be a power
        of two in ``(signature_size, window_min]``; ``None`` disables.
    merge_factor:
        When set, subclusters whose centroids lie within
        ``merge_factor * cluster_threshold`` are agglomeratively merged
        after pre-clustering (BIRCH's global phase), de-fragmenting
        regions the CF-tree's insertion order split.  ``None`` disables.
    """

    color_space: str = "ycc"
    signature_size: int = 2
    window_min: int = 64
    window_max: int = 64
    stride: int = 8
    cluster_threshold: float = 0.05
    signature_mode: str = "centroid"
    bitmap_grid: int = 16
    normalize_signatures: bool = False
    branching_factor: int = 50
    max_leaf_entries: int | None = None
    min_region_windows: int = 1
    refine_signature_size: int | None = None
    merge_factor: float | None = None

    def __post_init__(self) -> None:
        if self.color_space not in ("ycc", "rgb", "yiq", "hsv", "gray"):
            raise ParameterError(f"unknown color space {self.color_space!r}")
        for name in ("signature_size", "window_min", "window_max", "stride"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ParameterError(
                    f"{name} must be a power of two, got {value}"
                )
        if self.window_min > self.window_max:
            raise ParameterError(
                f"window_min {self.window_min} exceeds window_max "
                f"{self.window_max}"
            )
        if self.signature_size > self.window_min:
            raise ParameterError(
                f"signature_size {self.signature_size} exceeds window_min "
                f"{self.window_min}"
            )
        if self.cluster_threshold < 0:
            raise ParameterError("cluster_threshold must be >= 0")
        if self.signature_mode not in SIGNATURE_MODES:
            raise ParameterError(
                f"signature_mode must be one of {SIGNATURE_MODES}, "
                f"got {self.signature_mode!r}"
            )
        if self.bitmap_grid < 1:
            raise ParameterError("bitmap_grid must be >= 1")
        if self.branching_factor < 2:
            raise ParameterError("branching_factor must be >= 2")
        if self.min_region_windows < 1:
            raise ParameterError("min_region_windows must be >= 1")
        if self.refine_signature_size is not None:
            r = self.refine_signature_size
            if not is_power_of_two(r):
                raise ParameterError(
                    f"refine_signature_size must be a power of two, got {r}"
                )
            if not self.signature_size < r <= self.window_min:
                raise ParameterError(
                    f"refine_signature_size must lie in "
                    f"({self.signature_size}, {self.window_min}], got {r}"
                )
        if self.merge_factor is not None and self.merge_factor <= 0:
            raise ParameterError("merge_factor must be positive or None")

    @property
    def channels(self) -> int:
        """Color channels in the working space."""
        return 1 if self.color_space == "gray" else 3

    @property
    def feature_dimensions(self) -> int:
        """Dimensionality of a window feature vector
        (``channels * s^2``; 12 for the paper's defaults)."""
        return self.channels * self.signature_size ** 2

    def with_(self, **changes: object) -> "ExtractionParameters":
        """Functional update (``dataclasses.replace`` with validation)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class QueryParameters:
    """How a query is matched against the database.

    Attributes
    ----------
    epsilon:
        Region-matching distance threshold ``eps`` (Definition 4.1).
    tau:
        Image-similarity threshold (Definition 4.3); results below it
        are dropped.  0 returns everything ranked.
    matching:
        "quick" (bitmap union, regions may repeat), "greedy" (one-to-one
        heuristic) or "exact" (branch-and-bound; small inputs only).
    area_mode:
        Similarity denominator: "both" images (the paper's default),
        "query" only, or twice the "smaller" image (Section 4's
        variations).
    max_results:
        Cap on returned matches (None = no cap).
    metric:
        "l2" euclidean probe (the paper's experiments) or "linf"
        envelope.
    refine_epsilon:
        When set, region pairs surviving the coarse ε-probe are
        re-checked against the regions' detailed signatures
        (Section 5.5's refined matching phase): the pair is kept only
        if the refined centroid distance is within ``refine_epsilon``.
        Requires the database to have been built with
        ``ExtractionParameters.refine_signature_size``.
    """

    epsilon: float = 0.085
    tau: float = 0.0
    matching: str = "quick"
    area_mode: str = "both"
    max_results: int | None = None
    metric: str = "l2"
    refine_epsilon: float | None = None

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ParameterError("epsilon must be >= 0")
        if not 0.0 <= self.tau <= 1.0:
            raise ParameterError("tau must lie in [0, 1]")
        if self.matching not in MATCHING_MODES:
            raise ParameterError(
                f"matching must be one of {MATCHING_MODES}, "
                f"got {self.matching!r}"
            )
        if self.area_mode not in AREA_MODES:
            raise ParameterError(
                f"area_mode must be one of {AREA_MODES}, "
                f"got {self.area_mode!r}"
            )
        if self.max_results is not None and self.max_results < 1:
            raise ParameterError("max_results must be >= 1 or None")
        if self.metric not in ("l2", "linf"):
            raise ParameterError(f"metric must be l2 or linf, got {self.metric!r}")
        if self.refine_epsilon is not None and self.refine_epsilon < 0:
            raise ParameterError("refine_epsilon must be >= 0 or None")

    def with_(self, **changes: object) -> "QueryParameters":
        """Functional update."""
        return replace(self, **changes)


# The exact parameter set of the paper's Section 6.4 retrieval study.
PAPER_EXTRACTION = ExtractionParameters()
PAPER_QUERY = QueryParameters()
