"""The WALRUS image database: indexing and similarity retrieval.

Ties the whole system together (Section 5.1's overview):

* :meth:`WalrusDatabase.add_images` extracts regions — optionally in
  parallel via :class:`~repro.core.pipeline.ExtractionPipeline` — and
  indexes their signatures in an R*-tree, keyed by centroid point or
  bounding box, with ``(image_id, region_index)`` as the payload.  On a
  fresh database the tree is packed bottom-up with one
  Sort-Tile-Recursive pass instead of repeated insertion.
* :meth:`WalrusDatabase.query` extracts the query's regions the same
  way, probes the index within ``epsilon`` per query region
  (Section 5.4), groups the matching pairs per target image, scores
  each target with the configured matching algorithm (Section 5.5) and
  returns images whose similarity clears ``tau``, ranked.

Lifecycle: :meth:`WalrusDatabase.create` builds a database — in memory
with ``path=None``, or over a durable directory layout — and
:meth:`WalrusDatabase.open` reattaches to anything previously
persisted (a checkpoint directory or a legacy pickle snapshot).  The
database is a context manager; leaving the ``with`` block checkpoints
(when disk-backed) and closes the page store.  The pre-1.0 entry
points ``create_on_disk`` / ``open_on_disk`` / ``save`` / ``load``
remain as deprecated shims scheduled for removal in 2.0 (see the
API.md migration guide).

The query path keeps two small LRU caches: extracted query-region sets
(keyed by image content) and per-region index probes (keyed by
signature, ``epsilon`` and metric, invalidated whenever the index
mutates).  ``cache_stats()`` exposes their hit rates.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
from typing import Any, Iterable, Sequence

from repro.core.cache import CacheStats, LRUCache
from repro.core.extraction import RegionExtractor
from repro.core.matching import MATCHERS
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.core.pipeline import ExtractionPipeline
from repro.core.regions import Region
from repro.core.results import (ImageMatch, QueryResult, QueryStats,
                                RegionMatch)
from repro.exceptions import (DatabaseClosedError, DatabaseError,
                              InvalidParameterError, WalrusError)
from repro.imaging.image import Image
from repro.index.geometry import Rect
from repro.index.pagestore import (PageStore, create_page_store,
                                   open_page_store)
from repro.index.rstar import RStarTree
from repro.index.storage import PageFileBase, fsync_directory
from repro.observability import (NULL_TRACE, Deadline, ProbeCounts,
                                 QueryReport, SpanStageTrace, StageTrace,
                                 Stopwatch, current_span, get_events,
                                 get_metrics, get_tracer)


class IndexedImage:
    """Book-keeping for one database image."""

    __slots__ = ("image_id", "name", "height", "width", "regions")

    def __init__(self, image_id: int, name: str, height: int, width: int,
                 regions: list[Region]) -> None:
        self.image_id = image_id
        self.name = name
        self.height = height
        self.width = width
        self.regions = regions

    @property
    def area(self) -> int:
        return self.height * self.width

    def __getstate__(self) -> tuple[int, str, int, int, list[Region]]:
        return (self.image_id, self.name, self.height, self.width,
                self.regions)

    def __setstate__(
            self, state: tuple[int, str, int, int, list[Region]]) -> None:
        (self.image_id, self.name, self.height, self.width,
         self.regions) = state


class WalrusDatabase:
    """A similarity-searchable collection of images.

    Build instances with :meth:`create` (or :meth:`open` for an
    existing one); the constructor itself makes a bare in-memory
    database.

    Parameters
    ----------
    params:
        Extraction parameters shared by indexing and querying.
    store:
        Optional page store for the R*-tree (file-backed for a
        disk-resident index); defaults to memory.
    max_entries:
        R*-tree node capacity.
    signature_cache, probe_cache:
        Capacities of the query-path LRU caches (0 disables).
    """

    #: File names used by the directory-based on-disk layout.
    PAGE_FILE = "regions.pages"
    META_FILE = "walrus.meta"

    #: Default LRU capacities for the query path.
    SIGNATURE_CACHE_SIZE = 8
    PROBE_CACHE_SIZE = 512

    def __init__(self, params: ExtractionParameters | None = None, *,
                 store: PageStore | None = None,
                 max_entries: int = 32,
                 signature_cache: int | None = None,
                 probe_cache: int | None = None) -> None:
        self.params = params if params is not None else ExtractionParameters()
        self.extractor = RegionExtractor(self.params)
        self.index = RStarTree(self.params.feature_dimensions, store=store,
                               max_entries=max_entries)
        self.images: dict[int, IndexedImage] = {}
        self._next_id = 0
        self._directory: str | None = None
        self._closed = False
        self._readonly = False
        self._init_caches(signature_cache, probe_cache)

    def _init_caches(self, signature_cache: int | None,
                     probe_cache: int | None) -> None:
        self._signature_cache_size = (self.SIGNATURE_CACHE_SIZE
                                      if signature_cache is None
                                      else signature_cache)
        self._probe_cache_size = (self.PROBE_CACHE_SIZE
                                  if probe_cache is None else probe_cache)
        self._signature_cache = LRUCache(self._signature_cache_size,
                                         metrics_name="signatures")
        self._probe_cache = LRUCache(self._probe_cache_size,
                                     metrics_name="probes")
        self._generation = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str | None = None, *,
               params: ExtractionParameters | None = None,
               max_entries: int = 32,
               buffer_pages: int = 256,
               page_format: int | None = None,
               store: PageStore | None = None,
               signature_cache: int | None = None,
               probe_cache: int | None = None) -> "WalrusDatabase":
        """Create a database.

        With ``path=None`` the database lives in memory (persist later
        with :meth:`open`-able snapshots if desired).  With a ``path``
        the R*-tree pages live in that directory and the database is
        durable: an initial checkpoint is written immediately, so
        :meth:`open` works even before the first explicit
        :meth:`checkpoint`.  If creation fails partway, the files
        written so far are removed so a retry is not blocked by
        "directory already contains a database".

        ``page_format`` picks the on-disk page-file format: ``3`` (the
        default — zero-copy ``mmap`` reads) or ``2`` (pickled pages).
        Existing databases keep whatever format they were created
        with until ``walrus migrate`` upgrades them; :meth:`open`
        detects the format automatically.

        ``store`` substitutes a caller-provided page store for the
        default (memory, or the page-format-selected store over
        ``regions.pages`` when ``path`` is given — used by the
        fault-injection tests and custom storage wrappers); a
        disk-backed substitute must persist to the same file for
        :meth:`open` to reattach.
        """
        if page_format is not None and store is not None:
            raise InvalidParameterError(
                "page_format= and store= are mutually exclusive; the "
                "injected store already fixes the format")
        if path is None:
            if page_format is not None:
                raise InvalidParameterError(
                    "page_format= applies to on-disk databases only")
            return cls(params, store=store, max_entries=max_entries,
                       signature_cache=signature_cache,
                       probe_cache=probe_cache)
        os.makedirs(path, exist_ok=True)
        page_path = os.path.join(path, cls.PAGE_FILE)
        meta_path = os.path.join(path, cls.META_FILE)
        # An injected store has already created/opened its own file, so
        # the caller takes responsibility for the existence check.
        if store is None and os.path.exists(page_path):
            raise DatabaseError(
                f"{path} already contains a database; use open()"
            )
        database = None
        try:
            if store is None:
                store = create_page_store(page_path,
                                          format_version=page_format,
                                          buffer_pages=buffer_pages)
            database = cls(params, store=store, max_entries=max_entries,
                           signature_cache=signature_cache,
                           probe_cache=probe_cache)
            database._directory = path
            database.checkpoint()
            return database
        except Exception:
            if database is not None:
                database._closed = True  # skip the checkpoint in close()
            if store is not None:
                try:
                    store.close()
                except Exception:
                    pass
            for leftover in (page_path, meta_path, meta_path + ".tmp"):
                if os.path.exists(leftover):
                    try:
                        os.unlink(leftover)
                    except OSError:
                        pass
            raise

    @classmethod
    def open(cls, path: str, *,
             buffer_pages: int = 256,
             store: PageStore | None = None,
             readonly: bool = False) -> "WalrusDatabase":
        """Reattach to a previously persisted database.

        ``path`` may be a checkpoint directory (the layout written by
        :meth:`create` with a path) or a legacy pickle snapshot file.
        ``store`` substitutes a caller-provided page store over a
        directory's page file (see :meth:`create`).

        ``readonly=True`` opens the page file without write access and
        pins this handle to the commit that was current at open time:
        the heap file is append-only and commits flip a header slot in
        place, so a concurrent writer never disturbs an already-opened
        snapshot.  Readonly databases skip the checkpoint on
        :meth:`close` — this is the session primitive ``walrus serve``
        builds its concurrent snapshot readers on.
        """
        if os.path.isdir(path):
            return cls._open_directory(path, buffer_pages=buffer_pages,
                                       store=store, readonly=readonly)
        if store is not None:
            raise InvalidParameterError(
                "store= only applies to a checkpoint directory, "
                f"not the snapshot file {path!r}")
        if readonly:
            raise InvalidParameterError(
                "readonly= only applies to a checkpoint directory, "
                f"not the snapshot file {path!r}")
        return cls._read_snapshot(path)

    @classmethod
    def _open_directory(cls, directory: str, *, buffer_pages: int,
                        store: PageStore | None,
                        readonly: bool = False) -> "WalrusDatabase":
        meta_path = os.path.join(directory, cls.META_FILE)
        page_path = os.path.join(directory, cls.PAGE_FILE)
        if not os.path.exists(meta_path) or not os.path.exists(page_path):
            raise DatabaseError(f"{directory} is not a WALRUS database")
        if store is None:
            store = open_page_store(page_path, buffer_pages=buffer_pages,
                                    readonly=readonly)
        blob = store.metadata if hasattr(store, "metadata") else None
        if blob is not None:
            meta = cls._parse_meta(blob, page_path)
        else:
            # Store without commit-coupled metadata: fall back to the
            # sidecar file.
            meta = cls._load_meta(meta_path)
        database = cls.__new__(cls)
        database.params = meta["params"]
        database.extractor = RegionExtractor(database.params)
        database.images = meta["images"]
        database._next_id = meta["next_id"]
        database.index = RStarTree.from_state(meta["index_state"], store)
        database._directory = directory
        database._closed = False
        database._readonly = readonly
        database._init_caches(None, None)
        return database

    @property
    def readonly(self) -> bool:
        """Whether this handle was opened with ``readonly=True``."""
        return getattr(self, "_readonly", False)

    def close(self) -> None:
        """Checkpoint (when disk-backed and writable) and release the
        page store.

        Idempotent: closing an already-closed database is a no-op.
        Readonly handles never checkpoint — they own a snapshot, not
        the database.
        """
        if getattr(self, "_closed", False):
            return
        self._closed = True
        if getattr(self, "_directory", None) is not None \
                and not self.readonly:
            self.checkpoint(_force=True)
        self.index.store.close()

    def __enter__(self) -> "WalrusDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise DatabaseClosedError(
                "operation on a closed WalrusDatabase")

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def add_image(self, image: Image) -> int:
        """Extract and index ``image``'s regions; returns its image id."""
        self._check_open()
        events = get_events()
        watch = Stopwatch() if events.enabled else None
        regions = self.extractor.extract(image)
        image_id = self._register(image, regions)
        for region_index, region in enumerate(regions):
            self.index.insert(region.signature.to_rect(),
                              (image_id, region_index))
        self._invalidate_probes()
        if watch is not None:
            events.emit("ingest", {
                "images": 1,
                "regions": len(regions),
                "bulk": False,
                "workers": 1,
                "seconds": watch.elapsed,
                "total_images": len(self.images),
                "total_regions": self.region_count,
            })
        return image_id

    def add_images(self, images: Iterable[Image], *,
                   bulk: bool | None = None,
                   workers: int | None = None,
                   chunk_size: int | None = None) -> list[int]:
        """Index a batch of images; returns their ids in order.

        ``workers`` fans region extraction across a process pool
        (:class:`ExtractionPipeline`); ``None`` or ``1`` extracts
        in-process.  Results are identical either way — parallel
        extraction is deterministic and order-preserving.

        ``bulk`` controls how the R*-tree is built.  ``None`` (the
        default) packs the tree with one Sort-Tile-Recursive pass when
        the database is empty and falls back to per-region insertion
        otherwise; ``True`` demands the bulk path (an error on a
        non-empty database); ``False`` forces insertion.  Bulk-built
        trees are better packed and much faster to construct.
        """
        self._check_open()
        events = get_events()
        watch = Stopwatch() if events.enabled else None
        batch = list(images)
        if bulk is None:
            bulk = not self.images
        elif bulk and self.images:
            raise DatabaseError(
                "bulk indexing requires an empty database; "
                "use add_images(..., bulk=False) to extend one"
            )
        if not batch:
            return []

        if workers is None or workers == 1:
            regions_per_image = [self.extractor.extract(image)
                                 for image in batch]
        else:
            with ExtractionPipeline(self.params, workers=workers,
                                    chunk_size=chunk_size) as pipeline:
                regions_per_image = pipeline.extract_many(batch)

        ids: list[int] = []
        items: list[tuple[Rect, tuple[int, int]]] = []
        for image, regions in zip(batch, regions_per_image):
            image_id = self._register(image, regions)
            ids.append(image_id)
            items.extend(
                (region.signature.to_rect(), (image_id, region_index))
                for region_index, region in enumerate(regions)
            )
        if bulk:
            self.index.rebuild_bulk(items)
        else:
            for rect, item in items:
                self.index.insert(rect, item)
        self._invalidate_probes()
        if watch is not None:
            events.emit("ingest", {
                "images": len(batch),
                "regions": len(items),
                "bulk": bool(bulk),
                "workers": workers if workers is not None else 1,
                "seconds": watch.elapsed,
                "total_images": len(self.images),
                "total_regions": self.region_count,
            })
        return ids

    def _register(self, image: Image, regions: list[Region]) -> int:
        image_id = self._next_id
        self._next_id += 1
        self.images[image_id] = IndexedImage(
            image_id, image.name or f"image-{image_id}",
            image.height, image.width, regions)
        return image_id

    def remove_image(self, image_id: int) -> None:
        """Remove an image and all its regions from the index."""
        self._check_open()
        record = self.images.pop(image_id, None)
        if record is None:
            raise DatabaseError(f"no image with id {image_id}")
        for region_index, region in enumerate(record.regions):
            removed = self.index.delete(
                region.signature.to_rect(),
                lambda item, key=(image_id, region_index): item == key,
            )
            if removed != 1:
                raise DatabaseError(
                    f"index inconsistency removing image {image_id} "
                    f"region {region_index}: {removed} entries removed"
                )
        self._invalidate_probes()

    def __len__(self) -> int:
        return len(self.images)

    @property
    def region_count(self) -> int:
        """Total indexed regions across all images."""
        return len(self.index)

    # ------------------------------------------------------------------
    # Query-path caches
    # ------------------------------------------------------------------
    def _invalidate_probes(self) -> None:
        """Any index mutation retires every cached probe."""
        self._generation += 1
        self._probe_cache.clear()

    @staticmethod
    def _image_fingerprint(image: Image) -> bytes:
        digest = hashlib.sha1()
        digest.update(image.color_space.encode())
        digest.update(repr(image.shape).encode())
        digest.update(image.pixels.tobytes())
        return digest.digest()

    def _query_regions(self, image: Image, *,
                       deadline: Deadline | None = None
                       ) -> tuple[list[Region], bool]:
        """Extract (or recall) the query image's regions.

        Returns ``(regions, cache_hit)``.  Safe to cache across index
        mutations: extraction depends only on the pixels and the
        database's fixed parameters.
        """
        key = self._image_fingerprint(image)
        regions = self._signature_cache.get(key)
        if regions is None:
            regions = self.extractor.extract(image, deadline=deadline)
            self._signature_cache.put(key, regions)
            return regions, False
        return regions, True

    def cache_stats(self) -> dict[str, CacheStats]:
        """Hit/miss counters of the query-path caches."""
        return {
            "signatures": self._signature_cache.stats(),
            "probes": self._probe_cache.stats(),
        }

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def nearest_regions(self, image: Image, k: int = 10
                        ) -> list[RegionMatch]:
        """The ``k`` database regions closest to each query region.

        Returns :class:`RegionMatch` rows sorted by distance — an
        exploratory companion to the thresholded probe of
        :meth:`query` (useful for picking an ``epsilon``).
        """
        self._check_open()
        if not self.images:
            raise DatabaseError("nearest_regions on an empty database")
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        results: list[RegionMatch] = []
        query_regions, _ = self._query_regions(image)
        for q_index, region in enumerate(query_regions):
            for distance, (image_id, t_index) in self.index.nearest(
                    region.signature.centroid, k):
                results.append(RegionMatch(
                    image_id=image_id,
                    name=self.images[image_id].name,
                    distance=distance,
                    query_region=q_index,
                    target_region=t_index,
                ))
        results.sort(key=lambda match: (match.distance, match.query_region,
                                        match.image_id, match.target_region))
        return results

    def query(self, image: Image,
              query_params: QueryParameters | None = None, *,
              explain: bool = False,
              deadline: Deadline | None = None,
              max_regions: int | None = None) -> QueryResult:
        """Find database images similar to ``image`` (Definition 4.3).

        With ``explain=True`` the result additionally carries a
        :class:`~repro.observability.report.QueryReport` on
        ``result.report``: per-stage wall-clock timings (``extract``,
        ``probe``, ``match``, ``rank``), exact probe accounting
        (R*-tree node reads, probe-cache hits, candidate pair counts)
        and the candidate/matched/returned image funnel.  Every count
        in the report is deterministic; only the timings vary between
        runs.

        ``deadline`` bounds the query's wall-clock: it is checked at
        every stage boundary, before each R*-tree node read inside the
        probe and per matcher iteration, so an expired budget raises
        :class:`~repro.exceptions.DeadlineExceededError` promptly
        instead of finishing the work.  ``max_regions`` caps how many
        query regions are probed, keeping the largest ``N`` by covered
        pixels (ties broken by region index) — the serving layer's
        degradation knob under load.

        With the process tracer enabled (:func:`enable_tracing`) the
        whole call runs under a ``query`` span — nested under the
        caller's current span, e.g. the server's request span — with
        one child span per stage.
        """
        with get_tracer().span("query") as span:
            result = self._execute_query(image, query_params,
                                         explain=explain,
                                         deadline=deadline,
                                         max_regions=max_regions,
                                         shared_probes=None)
            if span.recording:
                span.set_attribute("query_regions",
                                   result.stats.query_regions)
                span.set_attribute("candidate_images",
                                   result.stats.candidate_images)
                span.set_attribute("matches", len(result.matches))
            return result

    def query_batch(self, images: Sequence[Image],
                    query_params: QueryParameters
                    | Sequence[QueryParameters | None] | None = None, *,
                    explain: bool | Sequence[bool] = False,
                    deadline: Deadline | None = None,
                    max_regions: int | Sequence[int | None] | None = None,
                    return_exceptions: bool = False
                    ) -> list[QueryResult | WalrusError]:
        """Run several queries as one batch, deduplicating shared
        R*-tree probes.

        Batch items often overlap — near-duplicate query images, or
        the same image swept under different ``tau`` / ``max_results``
        — and their per-region probes are then identical.  All items
        share a batch-scoped probe table keyed exactly like the probe
        LRU (signature, ``epsilon``, metric, index generation), so a
        probe any earlier item executed is reused instead of walking
        the tree again, even when the per-item probe cache is disabled.
        Reuse is exact, never approximate: items with different
        ``epsilon`` or ``metric`` never share entries.  The per-item
        EXPLAIN report counts reuse in ``probes_shared``.

        ``query_params``, ``explain`` and ``max_regions`` accept either
        one value for the whole batch or a sequence with one entry per
        image.  ``deadline`` spans the batch.

        Returns one entry per image, in order.  With
        ``return_exceptions=False`` (default) the first failing item
        raises; with ``True`` a failing item contributes its
        :class:`~repro.exceptions.WalrusError` in place of a
        :class:`QueryResult` and the rest of the batch still runs —
        the contract the batch endpoint's per-item error payloads are
        built on.
        """
        self._check_open()
        batch = list(images)
        params_list = self._broadcast_option(query_params, len(batch),
                                             "query_params")
        explain_list = self._broadcast_option(explain, len(batch), "explain")
        caps = self._broadcast_option(max_regions, len(batch), "max_regions")
        shared_probes: dict[Any, list[tuple[int, int]]] = {}
        results: list[QueryResult | WalrusError] = []
        tracer = get_tracer()
        with tracer.span("query_batch") as batch_span:
            if batch_span.recording:
                batch_span.set_attribute("items", len(batch))
            for index, (image, item_params, item_explain, cap) in enumerate(
                    zip(batch, params_list, explain_list, caps)):
                try:
                    with tracer.span("query_batch.item") as item_span:
                        if item_span.recording:
                            item_span.set_attribute("index", index)
                        results.append(self._execute_query(
                            image, item_params, explain=bool(item_explain),
                            deadline=deadline, max_regions=cap,
                            shared_probes=shared_probes))
                except WalrusError as error:
                    if not return_exceptions:
                        raise
                    results.append(error)
        return results

    @staticmethod
    def _broadcast_option(value: Any, count: int, name: str) -> list[Any]:
        """One-per-item or one-for-all batch options (see
        :meth:`query_batch`)."""
        if isinstance(value, (list, tuple)):
            if len(value) != count:
                raise InvalidParameterError(
                    f"{name} has {len(value)} entries for a batch of "
                    f"{count} images")
            return list(value)
        return [value] * count

    def _execute_query(self, image: Image,
                       query_params: QueryParameters | None, *,
                       explain: bool,
                       deadline: Deadline | None,
                       max_regions: int | None,
                       shared_probes: dict[Any, list[tuple[int, int]]] | None
                       ) -> QueryResult:
        """The query pipeline behind :meth:`query` and
        :meth:`query_batch` (which adds the batch-scoped
        ``shared_probes`` table)."""
        self._check_open()
        if not self.images:
            raise DatabaseError("query on an empty database")
        if max_regions is not None and max_regions < 1:
            raise InvalidParameterError(
                f"max_regions must be >= 1, got {max_regions}")
        qp = query_params if query_params is not None else QueryParameters()
        events = get_events()
        tracer = get_tracer()
        # The event log wants the same funnel the EXPLAIN report
        # carries, so an enabled log forces the per-stage trace on.
        # With the tracer on, stage blocks additionally open spans
        # (SpanStageTrace); with it off this line is byte-for-byte the
        # old behavior, so EXPLAIN output cannot drift.
        want_report = explain or events.enabled
        trace: StageTrace
        if tracer.enabled:
            trace = SpanStageTrace(tracer, keep_timings=want_report)
        elif want_report:
            trace = StageTrace()
        else:
            trace = NULL_TRACE
        watch = Stopwatch()
        with trace.stage("extract"):
            query_regions, signature_hit = self._query_regions(
                image, deadline=deadline)
        if max_regions is not None and len(query_regions) > max_regions:
            ranked = sorted(range(len(query_regions)),
                            key=lambda i: (-query_regions[i].covered_pixels,
                                           i))
            keep = sorted(ranked[:max_regions])
            query_regions = [query_regions[i] for i in keep]
        if deadline is not None:
            deadline.check("query.extract")
        with trace.stage("probe"):
            pairs_by_image, probe_counts = self._probe(
                query_regions, qp, deadline=deadline,
                shared=shared_probes)
        retrieved = sum(len(pairs) for pairs in pairs_by_image.values())

        matcher = MATCHERS[qp.matching]
        matches: list[ImageMatch] = []
        with trace.stage("match"):
            for image_id, pairs in pairs_by_image.items():
                if deadline is not None:
                    deadline.check("query.match")
                record = self.images[image_id]
                outcome = matcher(query_regions, record.regions, pairs,
                                  area_mode=qp.area_mode, deadline=deadline)
                if outcome.similarity >= qp.tau and outcome.similarity > 0:
                    matches.append(ImageMatch(image_id, record.name,
                                              outcome.similarity, outcome))
        with trace.stage("rank"):
            matches.sort(
                key=lambda match: (-match.similarity, match.image_id))
            matched = len(matches)
            if qp.max_results is not None:
                matches = matches[: qp.max_results]
        elapsed = watch.elapsed
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("query.count").inc()
            metrics.counter("query.candidate_images").inc(
                len(pairs_by_image))
            metrics.counter("query.matched_images").inc(matched)
            metrics.histogram("query.seconds").observe(elapsed)
        stats = QueryStats(
            query_regions=len(query_regions),
            regions_retrieved=retrieved,
            mean_regions_per_query_region=(
                retrieved / len(query_regions) if query_regions else 0.0),
            candidate_images=len(pairs_by_image),
            elapsed_seconds=elapsed,
        )
        report = None
        if want_report:
            report = QueryReport(
                query_regions=len(query_regions),
                signature_cache_hit=signature_hit,
                probe=probe_counts,
                candidate_images=len(pairs_by_image),
                matched_images=matched,
                returned_images=len(matches),
                stages=tuple(trace.stages),
                total_seconds=elapsed,
            )
            if events.enabled:
                payload = report.to_dict()
                events.emit("query", payload)
                if elapsed >= events.slow_query_seconds:
                    slow = dict(payload,
                                threshold_seconds=events.slow_query_seconds)
                    span = current_span()
                    if span is not None:
                        # Joins the log row to the trace retained by
                        # the flight recorder.
                        slow["trace_id"] = span.context.trace_id
                    events.emit("slow_query", slow)
        return QueryResult(tuple(matches), stats,
                           report if explain else None)

    def query_scene(self, image: Image, top: int, left: int, height: int,
                    width: int,
                    query_params: QueryParameters | None = None, *,
                    explain: bool = False) -> QueryResult:
        """Query with a *user-specified scene*: a sub-rectangle of
        ``image`` (the "US" in WALRUS).

        The crop is decomposed into regions like any query image.  By
        default the similarity denominator is the scene only
        (``area_mode="query"``, one of Section 4's variations): a
        target scores highly when it contains the specified scene,
        regardless of what else it contains.
        """
        self._check_open()
        scene = image.crop(top, left, height, width)
        if query_params is None:
            query_params = QueryParameters(area_mode="query")
        return self.query(scene, query_params, explain=explain)

    def describe(self) -> dict[str, Any]:
        """Summary statistics of the database and its index."""
        self._check_open()
        region_counts = [len(record.regions)
                         for record in self.images.values()]
        return {
            "images": len(self.images),
            "regions": self.region_count,
            "regions_per_image_min": min(region_counts, default=0),
            "regions_per_image_max": max(region_counts, default=0),
            "regions_per_image_mean": (
                sum(region_counts) / len(region_counts)
                if region_counts else 0.0),
            "index_height": self.index.height(),
            "index_pages": len(self.index.store),
            "feature_dimensions": self.params.feature_dimensions,
            "parameters": self.params,
        }

    def _probe(self, query_regions: Sequence[Region],
               qp: QueryParameters, *,
               deadline: Deadline | None = None,
               shared: dict[Any, list[tuple[int, int]]] | None = None
               ) -> tuple[dict[int, list[tuple[int, int]]], ProbeCounts]:
        """Section 5.4's region-matching step: for each query region,
        all database regions within ``epsilon``; grouped per image.
        Returns the grouped pairs plus exact :class:`ProbeCounts`.

        Per-region probe results are memoized in an LRU keyed by
        ``(signature, epsilon, metric)`` plus the index generation, so
        re-running a query (or sweeping ``tau``/``refine_epsilon``,
        which act downstream of the probe) skips the tree walks.

        ``shared`` is :meth:`query_batch`'s batch-scoped probe table,
        keyed identically; it is consulted before the LRU and filled
        by every probe this call resolves, so later batch items reuse
        earlier items' tree walks (counted as ``probes_shared``).

        With ``qp.refine_epsilon`` set, surviving pairs additionally
        pass the Section 5.5 refined check on the detailed signatures
        — applied *after* cache retrieval, so refined and unrefined
        queries share probe entries.
        """
        if qp.refine_epsilon is not None \
                and self.params.refine_signature_size is None:
            raise DatabaseError(
                "refine_epsilon requires a database built with "
                "refine_signature_size set"
            )
        before = self.index.counters.snapshot()
        cache_hits = 0
        cache_misses = 0
        shared_hits = 0
        pairs_probed = 0
        refined_out = 0
        pairs_by_image: dict[int, list[tuple[int, int]]] = {}
        for q_index, region in enumerate(query_regions):
            if deadline is not None:
                deadline.check("query.probe")
            signature = region.signature
            cache_key = (self._generation, signature.lower.tobytes(),
                         signature.upper.tobytes(), qp.epsilon, qp.metric)
            found = shared.get(cache_key) if shared is not None else None
            if found is not None:
                shared_hits += 1
            else:
                found = self._probe_cache.get(cache_key)
                if found is None:
                    cache_misses += 1
                    if signature.is_point:
                        hits = self.index.search_within(
                            signature.centroid, qp.epsilon, metric=qp.metric,
                            deadline=deadline)
                        found = [item for _, item in hits]
                    else:
                        probe = signature.to_rect().expand(qp.epsilon)
                        found = self.index.search(probe, deadline=deadline)
                    self._probe_cache.put(cache_key, found)
                else:
                    cache_hits += 1
                if shared is not None:
                    shared[cache_key] = found
            pairs_probed += len(found)
            for image_id, t_index in found:
                if qp.refine_epsilon is not None:
                    target = self.images[image_id].regions[t_index]
                    if region.refined_distance(target) > qp.refine_epsilon:
                        refined_out += 1
                        continue
                pairs_by_image.setdefault(image_id, []).append(
                    (q_index, t_index))
        delta = self.index.counters.delta(before)
        metrics = get_metrics()
        if metrics.enabled:
            for field, amount in delta.items():
                if amount:
                    metrics.counter(f"index.{field}").inc(amount)
        counts = ProbeCounts(
            probes_executed=cache_misses,
            probe_cache_hits=cache_hits,
            probe_cache_misses=cache_misses,
            node_reads=delta["node_reads"],
            pairs_probed=pairs_probed,
            pairs_refined_out=refined_out,
            probes_shared=shared_hits,
        )
        return pairs_by_image, counts

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def checkpoint(self, *, _force: bool = False) -> None:
        """Durably commit index pages and metadata to the directory.

        The metadata (image catalog, parameters, index root) is staged
        into the page store and committed by the store's single atomic
        header flip *together with* the pages — a crash at any byte
        boundary reopens to the previous checkpoint, and metadata can
        never disagree with the page table it describes.  A human- and
        fsck-readable copy is additionally mirrored to ``walrus.meta``
        via temp file + ``os.replace`` + directory fsync; the mirror is
        advisory (the store's copy is authoritative).
        """
        if not _force:
            self._check_open()
        if self.readonly:
            raise DatabaseError(
                "checkpoint on a readonly database handle")
        directory = getattr(self, "_directory", None)
        if directory is None:
            raise DatabaseError(
                "checkpoint requires a database created with "
                "WalrusDatabase.create(path=...)"
            )
        meta = {
            "params": self.params,
            "images": self.images,
            "next_id": self._next_id,
            "index_state": self.index.state(),
        }
        blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
        store = self.index.store
        if hasattr(store, "set_metadata"):
            store.set_metadata(blob)
        store.sync()
        meta_path = os.path.join(directory, self.META_FILE)
        with open(meta_path + ".tmp", "wb") as stream:
            stream.write(blob)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(meta_path + ".tmp", meta_path)
        fsync_directory(directory)

    @classmethod
    def _load_meta(cls, meta_path: str) -> dict[str, Any]:
        """Load a metadata pickle file, wrapping corruption in
        :class:`DatabaseError` instead of leaking ``UnpicklingError``."""
        try:
            with open(meta_path, "rb") as stream:
                blob = stream.read()
        except OSError as error:
            raise DatabaseError(
                f"{meta_path}: cannot read metadata: {error}") from error
        return cls._parse_meta(blob, meta_path)

    @classmethod
    def _parse_meta(cls, blob: bytes, source: str) -> dict[str, Any]:
        """Unpickle and validate a checkpoint metadata blob."""
        try:
            meta = pickle.loads(blob)
        except Exception as error:
            raise DatabaseError(
                f"{source}: metadata is corrupt: {error}") from error
        if not isinstance(meta, dict) or not {
                "params", "images", "next_id", "index_state"} <= set(meta):
            raise DatabaseError(
                f"{source}: metadata is not a WALRUS checkpoint")
        return meta

    def _write_snapshot(self, path: str) -> None:
        """Pickle the entire database (index pages included) to ``path``.

        Only supported with the in-memory page store; a disk-backed
        database is already durable — use :meth:`checkpoint` /
        :meth:`open` instead.
        """
        self._check_open()
        if isinstance(self.index.store, PageFileBase):
            raise DatabaseError(
                "snapshots work with the in-memory store only; "
                "disk-backed databases persist via checkpoint()"
            )
        with open(path, "wb") as stream:
            pickle.dump(self, stream, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def _read_snapshot(cls, path: str) -> "WalrusDatabase":
        try:
            with open(path, "rb") as stream:
                database = pickle.load(stream)
        except OSError as error:
            raise DatabaseError(
                f"{path} is not a WALRUS database: {error}") from error
        except Exception as error:
            raise DatabaseError(
                f"{path}: snapshot is corrupt: {error}") from error
        if not isinstance(database, cls):
            raise DatabaseError(f"{path} does not contain a WalrusDatabase")
        return database

    # Caches hold derived data keyed partly by runtime state; snapshots
    # persist without them and rebuild empty ones on load (which also
    # upgrades pre-cache pickles).
    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state.pop("_signature_cache", None)
        state.pop("_probe_cache", None)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._directory = state.get("_directory")
        self._closed = state.get("_closed", False)
        self._readonly = state.get("_readonly", False)
        self._init_caches(state.get("_signature_cache_size"),
                          state.get("_probe_cache_size"))

    # ------------------------------------------------------------------
    # Deprecated 0.x entry points (removal scheduled: see API.md)
    # ------------------------------------------------------------------
    #: Release in which the 0.x shims below stop existing.
    DEPRECATED_REMOVAL_VERSION = "2.0"

    @classmethod
    def create_on_disk(cls, directory: str,
                       params: ExtractionParameters | None = None, *,
                       buffer_pages: int = 256,
                       max_entries: int = 32,
                       store: PageStore | None = None) -> "WalrusDatabase":
        """Deprecated: use :meth:`create` with a ``path``."""
        warnings.warn(
            "WalrusDatabase.create_on_disk() is deprecated and will be "
            f"removed in {cls.DEPRECATED_REMOVAL_VERSION}; use "
            "WalrusDatabase.create(path, ...) (see the API.md migration "
            "guide)",
            DeprecationWarning, stacklevel=2)
        return cls.create(directory, params=params,
                          buffer_pages=buffer_pages,
                          max_entries=max_entries, store=store)

    @classmethod
    def open_on_disk(cls, directory: str, *,
                     buffer_pages: int = 256,
                     store: PageStore | None = None) -> "WalrusDatabase":
        """Deprecated: use :meth:`open`."""
        warnings.warn(
            "WalrusDatabase.open_on_disk() is deprecated and will be "
            f"removed in {cls.DEPRECATED_REMOVAL_VERSION}; use "
            "WalrusDatabase.open(path) (see the API.md migration guide)",
            DeprecationWarning, stacklevel=2)
        return cls._open_directory(directory, buffer_pages=buffer_pages,
                                   store=store)

    def save(self, path: str) -> None:
        """Deprecated: snapshotting is superseded by
        :meth:`create` with a ``path`` (durable checkpoints)."""
        warnings.warn(
            "WalrusDatabase.save() is deprecated and will be removed in "
            f"{self.DEPRECATED_REMOVAL_VERSION}; create the database "
            "with WalrusDatabase.create(path) for durability (see the "
            "API.md migration guide)",
            DeprecationWarning, stacklevel=2)
        self._write_snapshot(path)

    @classmethod
    def load(cls, path: str) -> "WalrusDatabase":
        """Deprecated: use :meth:`open`."""
        warnings.warn(
            "WalrusDatabase.load() is deprecated and will be removed in "
            f"{cls.DEPRECATED_REMOVAL_VERSION}; use "
            "WalrusDatabase.open(path) (see the API.md migration guide)",
            DeprecationWarning, stacklevel=2)
        return cls._read_snapshot(path)
