"""The WALRUS image database: indexing and similarity retrieval.

Ties the whole system together (Section 5.1's overview):

* :meth:`WalrusDatabase.add_image` extracts regions and inserts their
  signatures into an R*-tree, keyed by centroid point or bounding box,
  with ``(image_id, region_index)`` as the payload.
* :meth:`WalrusDatabase.query` extracts the query's regions the same
  way, probes the index within ``epsilon`` per query region
  (Section 5.4), groups the matching pairs per target image, scores
  each target with the configured matching algorithm (Section 5.5) and
  returns images whose similarity clears ``tau``, ranked.

Persistence: :meth:`save` / :meth:`load` pickle the database; for the
index itself a file-backed page store may be supplied to keep the
R*-tree on disk, as in the paper.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Iterable, Sequence

from repro.core.extraction import RegionExtractor
from repro.core.matching import MATCHERS
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.core.regions import Region
from repro.core.results import ImageMatch, QueryResult, QueryStats
from repro.exceptions import DatabaseError
from repro.imaging.image import Image
from repro.index.rstar import RStarTree
from repro.index.storage import FilePageStore, PageStore, fsync_directory


class IndexedImage:
    """Book-keeping for one database image."""

    __slots__ = ("image_id", "name", "height", "width", "regions")

    def __init__(self, image_id: int, name: str, height: int, width: int,
                 regions: list[Region]) -> None:
        self.image_id = image_id
        self.name = name
        self.height = height
        self.width = width
        self.regions = regions

    @property
    def area(self) -> int:
        return self.height * self.width

    def __getstate__(self) -> tuple:
        return (self.image_id, self.name, self.height, self.width,
                self.regions)

    def __setstate__(self, state: tuple) -> None:
        (self.image_id, self.name, self.height, self.width,
         self.regions) = state


class WalrusDatabase:
    """A similarity-searchable collection of images.

    Parameters
    ----------
    params:
        Extraction parameters shared by indexing and querying.
    store:
        Optional page store for the R*-tree (file-backed for a
        disk-resident index); defaults to memory.
    max_entries:
        R*-tree node capacity.
    """

    def __init__(self, params: ExtractionParameters | None = None, *,
                 store: PageStore | None = None,
                 max_entries: int = 32) -> None:
        self.params = params if params is not None else ExtractionParameters()
        self.extractor = RegionExtractor(self.params)
        self.index = RStarTree(self.params.feature_dimensions, store=store,
                               max_entries=max_entries)
        self.images: dict[int, IndexedImage] = {}
        self._next_id = 0
        self._directory: str | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def add_image(self, image: Image) -> int:
        """Extract and index ``image``'s regions; returns its image id."""
        image_id = self._next_id
        self._next_id += 1
        regions = self.extractor.extract(image)
        record = IndexedImage(image_id, image.name or f"image-{image_id}",
                              image.height, image.width, regions)
        self.images[image_id] = record
        for region_index, region in enumerate(regions):
            self.index.insert(region.signature.to_rect(),
                              (image_id, region_index))
        return image_id

    def add_images(self, images: Iterable[Image], *,
                   bulk: bool = False) -> list[int]:
        """Index several images; returns their ids in order.

        With ``bulk=True`` (only valid on an empty database) all
        regions are extracted first and the R*-tree is built in one
        Sort-Tile-Recursive pass — much faster and better packed than
        repeated insertion when indexing a whole collection up front.
        """
        if not bulk:
            return [self.add_image(image) for image in images]
        if self.images:
            raise DatabaseError(
                "bulk indexing requires an empty database; "
                "use add_images(..., bulk=False) to extend one"
            )
        ids: list[int] = []
        items: list[tuple] = []
        for image in images:
            image_id = self._next_id
            self._next_id += 1
            regions = self.extractor.extract(image)
            self.images[image_id] = IndexedImage(
                image_id, image.name or f"image-{image_id}",
                image.height, image.width, regions)
            items.extend(
                (region.signature.to_rect(), (image_id, region_index))
                for region_index, region in enumerate(regions)
            )
            ids.append(image_id)
        self.index = RStarTree.bulk_load(
            self.params.feature_dimensions, items,
            store=self.index.store, max_entries=self.index.max_entries)
        return ids

    def nearest_regions(self, image: Image, k: int = 10
                        ) -> list[tuple[float, int, int, int]]:
        """The ``k`` database regions closest to each query region.

        Returns ``(distance, query_region_index, image_id,
        target_region_index)`` tuples sorted by distance — an
        exploratory companion to the thresholded probe of
        :meth:`query` (useful for picking an ``epsilon``).
        """
        if not self.images:
            raise DatabaseError("nearest_regions on an empty database")
        results: list[tuple[float, int, int, int]] = []
        for q_index, region in enumerate(self.extractor.extract(image)):
            for distance, (image_id, t_index) in self.index.nearest(
                    region.signature.centroid, k):
                results.append((distance, q_index, image_id, t_index))
        results.sort()
        return results

    def remove_image(self, image_id: int) -> None:
        """Remove an image and all its regions from the index."""
        record = self.images.pop(image_id, None)
        if record is None:
            raise DatabaseError(f"no image with id {image_id}")
        for region_index, region in enumerate(record.regions):
            removed = self.index.delete(
                region.signature.to_rect(),
                lambda item, key=(image_id, region_index): item == key,
            )
            if removed != 1:
                raise DatabaseError(
                    f"index inconsistency removing image {image_id} "
                    f"region {region_index}: {removed} entries removed"
                )

    def __len__(self) -> int:
        return len(self.images)

    @property
    def region_count(self) -> int:
        """Total indexed regions across all images."""
        return len(self.index)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self, image: Image,
              query_params: QueryParameters | None = None) -> QueryResult:
        """Find database images similar to ``image`` (Definition 4.3)."""
        if not self.images:
            raise DatabaseError("query on an empty database")
        qp = query_params if query_params is not None else QueryParameters()
        started = time.perf_counter()
        query_regions = self.extractor.extract(image)
        pairs_by_image = self._probe(query_regions, qp)
        retrieved = sum(len(pairs) for pairs in pairs_by_image.values())

        matcher = MATCHERS[qp.matching]
        matches: list[ImageMatch] = []
        for image_id, pairs in pairs_by_image.items():
            record = self.images[image_id]
            outcome = matcher(query_regions, record.regions, pairs,
                              area_mode=qp.area_mode)
            if outcome.similarity >= qp.tau and outcome.similarity > 0:
                matches.append(ImageMatch(image_id, record.name,
                                          outcome.similarity, outcome))
        matches.sort(key=lambda match: (-match.similarity, match.image_id))
        if qp.max_results is not None:
            matches = matches[: qp.max_results]
        elapsed = time.perf_counter() - started
        stats = QueryStats(
            query_regions=len(query_regions),
            regions_retrieved=retrieved,
            mean_regions_per_query_region=(
                retrieved / len(query_regions) if query_regions else 0.0),
            candidate_images=len(pairs_by_image),
            elapsed_seconds=elapsed,
        )
        return QueryResult(tuple(matches), stats)

    def query_scene(self, image: Image, top: int, left: int, height: int,
                    width: int,
                    query_params: QueryParameters | None = None
                    ) -> QueryResult:
        """Query with a *user-specified scene*: a sub-rectangle of
        ``image`` (the "US" in WALRUS).

        The crop is decomposed into regions like any query image.  By
        default the similarity denominator is the scene only
        (``area_mode="query"``, one of Section 4's variations): a
        target scores highly when it contains the specified scene,
        regardless of what else it contains.
        """
        scene = image.crop(top, left, height, width)
        if query_params is None:
            query_params = QueryParameters(area_mode="query")
        return self.query(scene, query_params)

    def describe(self) -> dict:
        """Summary statistics of the database and its index."""
        region_counts = [len(record.regions)
                         for record in self.images.values()]
        return {
            "images": len(self.images),
            "regions": self.region_count,
            "regions_per_image_min": min(region_counts, default=0),
            "regions_per_image_max": max(region_counts, default=0),
            "regions_per_image_mean": (
                sum(region_counts) / len(region_counts)
                if region_counts else 0.0),
            "index_height": self.index.height(),
            "index_pages": len(self.index.store),
            "feature_dimensions": self.params.feature_dimensions,
            "parameters": self.params,
        }

    def _probe(self, query_regions: Sequence[Region],
               qp: QueryParameters) -> dict[int, list[tuple[int, int]]]:
        """Section 5.4's region-matching step: for each query region,
        all database regions within ``epsilon``; grouped per image.

        With ``qp.refine_epsilon`` set, surviving pairs additionally
        pass the Section 5.5 refined check on the detailed signatures.
        """
        if qp.refine_epsilon is not None \
                and self.params.refine_signature_size is None:
            raise DatabaseError(
                "refine_epsilon requires a database built with "
                "refine_signature_size set"
            )
        pairs_by_image: dict[int, list[tuple[int, int]]] = {}
        for q_index, region in enumerate(query_regions):
            signature = region.signature
            if signature.is_point:
                hits = self.index.search_within(signature.centroid,
                                                qp.epsilon, metric=qp.metric)
                found = [item for _, item in hits]
            else:
                probe = signature.to_rect().expand(qp.epsilon)
                found = self.index.search(probe)
            for image_id, t_index in found:
                if qp.refine_epsilon is not None:
                    target = self.images[image_id].regions[t_index]
                    if region.refined_distance(target) > qp.refine_epsilon:
                        continue
                pairs_by_image.setdefault(image_id, []).append(
                    (q_index, t_index))
        return pairs_by_image

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    #: File names used by the directory-based on-disk layout.
    PAGE_FILE = "regions.pages"
    META_FILE = "walrus.meta"

    @classmethod
    def create_on_disk(cls, directory: str,
                       params: ExtractionParameters | None = None, *,
                       buffer_pages: int = 256,
                       max_entries: int = 32,
                       store: PageStore | None = None) -> "WalrusDatabase":
        """Create a database whose R*-tree pages live in ``directory``.

        The directory is immediately valid: an initial checkpoint is
        written, so :meth:`open_on_disk` works even before the first
        explicit :meth:`checkpoint`.  If creation fails partway, the
        files written so far are removed so a retry is not blocked by
        "directory already contains a database".

        ``store`` substitutes a caller-provided page store for the
        default :class:`FilePageStore` over ``regions.pages`` (used by
        the fault-injection tests and custom storage wrappers); it must
        persist to the same file for :meth:`open_on_disk` to reattach.
        """
        os.makedirs(directory, exist_ok=True)
        page_path = os.path.join(directory, cls.PAGE_FILE)
        meta_path = os.path.join(directory, cls.META_FILE)
        # An injected store has already created/opened its own file, so
        # the caller takes responsibility for the existence check.
        if store is None and os.path.exists(page_path):
            raise DatabaseError(
                f"{directory} already contains a database; "
                "use open_on_disk"
            )
        database = None
        try:
            if store is None:
                store = FilePageStore(page_path, buffer_pages=buffer_pages)
            database = cls(params, store=store, max_entries=max_entries)
            database._directory = directory
            database.checkpoint()
            return database
        except Exception:
            if database is not None:
                database._closed = True  # skip the checkpoint in close()
            if store is not None:
                try:
                    store.close()
                except Exception:
                    pass
            for leftover in (page_path, meta_path, meta_path + ".tmp"):
                if os.path.exists(leftover):
                    try:
                        os.unlink(leftover)
                    except OSError:
                        pass
            raise

    def checkpoint(self) -> None:
        """Durably commit index pages and metadata to the directory.

        The metadata (image catalog, parameters, index root) is staged
        into the page store and committed by the store's single atomic
        header flip *together with* the pages — a crash at any byte
        boundary reopens to the previous checkpoint, and metadata can
        never disagree with the page table it describes.  A human- and
        fsck-readable copy is additionally mirrored to ``walrus.meta``
        via temp file + ``os.replace`` + directory fsync; the mirror is
        advisory (the store's copy is authoritative).
        """
        directory = getattr(self, "_directory", None)
        if directory is None:
            raise DatabaseError(
                "checkpoint requires a database created with "
                "create_on_disk / open_on_disk"
            )
        meta = {
            "params": self.params,
            "images": self.images,
            "next_id": self._next_id,
            "index_state": self.index.state(),
        }
        blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
        store = self.index.store
        if hasattr(store, "set_metadata"):
            store.set_metadata(blob)
        store.sync()
        meta_path = os.path.join(directory, self.META_FILE)
        with open(meta_path + ".tmp", "wb") as stream:
            stream.write(blob)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(meta_path + ".tmp", meta_path)
        fsync_directory(directory)

    @classmethod
    def open_on_disk(cls, directory: str, *,
                     buffer_pages: int = 256,
                     store: PageStore | None = None) -> "WalrusDatabase":
        """Reattach to a directory written by :meth:`checkpoint`.

        ``store`` substitutes a caller-provided page store over the
        directory's page file (see :meth:`create_on_disk`).
        """
        meta_path = os.path.join(directory, cls.META_FILE)
        page_path = os.path.join(directory, cls.PAGE_FILE)
        if not os.path.exists(meta_path) or not os.path.exists(page_path):
            raise DatabaseError(f"{directory} is not a WALRUS database")
        if store is None:
            store = FilePageStore(page_path, buffer_pages=buffer_pages)
        blob = store.metadata if hasattr(store, "metadata") else None
        if blob is not None:
            meta = cls._parse_meta(blob, page_path)
        else:
            # Store without commit-coupled metadata: fall back to the
            # sidecar file.
            meta = cls._load_meta(meta_path)
        database = cls.__new__(cls)
        database.params = meta["params"]
        database.extractor = RegionExtractor(database.params)
        database.images = meta["images"]
        database._next_id = meta["next_id"]
        database.index = RStarTree.from_state(meta["index_state"], store)
        database._directory = directory
        database._closed = False
        return database

    @classmethod
    def _load_meta(cls, meta_path: str) -> dict:
        """Load a metadata pickle file, wrapping corruption in
        :class:`DatabaseError` instead of leaking ``UnpicklingError``."""
        try:
            with open(meta_path, "rb") as stream:
                blob = stream.read()
        except OSError as error:
            raise DatabaseError(
                f"{meta_path}: cannot read metadata: {error}") from error
        return cls._parse_meta(blob, meta_path)

    @classmethod
    def _parse_meta(cls, blob: bytes, source: str) -> dict:
        """Unpickle and validate a checkpoint metadata blob."""
        try:
            meta = pickle.loads(blob)
        except Exception as error:
            raise DatabaseError(
                f"{source}: metadata is corrupt: {error}") from error
        if not isinstance(meta, dict) or not {
                "params", "images", "next_id", "index_state"} <= set(meta):
            raise DatabaseError(
                f"{source}: metadata is not a WALRUS checkpoint")
        return meta

    def close(self) -> None:
        """Checkpoint (when disk-backed) and release the page store.

        Idempotent: closing an already-closed database is a no-op.
        """
        if getattr(self, "_closed", False):
            return
        self._closed = True
        if getattr(self, "_directory", None) is not None:
            self.checkpoint()
        self.index.store.close()

    def save(self, path: str) -> None:
        """Pickle the entire database (index pages included) to ``path``.

        Only supported with the in-memory page store; a disk-backed
        database is already durable — use :meth:`checkpoint` /
        :meth:`open_on_disk` instead.
        """
        if isinstance(self.index.store, FilePageStore):
            raise DatabaseError(
                "save() works with the in-memory store only; "
                "disk-backed databases persist via checkpoint()"
            )
        with open(path, "wb") as stream:
            pickle.dump(self, stream, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: str) -> "WalrusDatabase":
        """Invert :meth:`save`."""
        with open(path, "rb") as stream:
            database = pickle.load(stream)
        if not isinstance(database, cls):
            raise DatabaseError(f"{path} does not contain a WalrusDatabase")
        return database
