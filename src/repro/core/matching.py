"""Image matching: from matched region pairs to an image similarity.

Given the matching region pairs ``(Q_i, T_j)`` that the index probe
returned for a query image Q and one target image T, Section 5.5 offers
three ways to score Definition 4.3's similarity:

* :func:`quick_match` — union the bitmaps of every matched region on
  each side and measure the covered area.  Linear in the number of
  pairs; a region may participate in any number of pairs (the relaxed
  reading of Definition 4.2).  This is what the paper's retrieval
  experiments use.
* :func:`greedy_match` — enforce the one-to-one similar-region-pair-set
  of Definition 4.2 by repeatedly taking the pair with the largest
  marginal covered area (the paper's ``O(n^2)`` heuristic for the
  NP-hard maximization, Theorem 5.1).
* :func:`exact_match` — branch-and-bound over pair subsets; exponential
  worst case, intended for validating the greedy heuristic on small
  instances and for tests.

All three return a :class:`MatchOutcome` whose ``similarity`` follows
the configured ``area_mode`` denominator (Section 4 lists the
variations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitmap import CoverageBitmap
from repro.core.regions import Region
from repro.exceptions import ParameterError
from repro.observability import Deadline, get_metrics


@dataclass(frozen=True)
class MatchOutcome:
    """Result of scoring one query/target image pair.

    Attributes
    ----------
    similarity:
        Definition 4.3's ratio under the chosen denominator.
    pairs:
        The region index pairs ``(q_index, t_index)`` that contributed.
    query_covered, target_covered:
        Pixels covered on each side by the contributing regions.
    """

    similarity: float
    pairs: tuple[tuple[int, int], ...]
    query_covered: int
    target_covered: int


def _similarity(query_covered: int, target_covered: int, query_area: int,
                target_area: int, area_mode: str) -> float:
    if area_mode == "both":
        return (query_covered + target_covered) / (query_area + target_area)
    if area_mode == "query":
        return query_covered / query_area
    if area_mode == "smaller":
        return (query_covered + target_covered) / (
            2 * min(query_area, target_area))
    raise ParameterError(f"unknown area_mode {area_mode!r}")


def _empty_like(regions: list[Region]) -> CoverageBitmap:
    bitmap = regions[0].bitmap
    return CoverageBitmap(bitmap.height, bitmap.width, bitmap.grid)


def quick_match(query_regions: list[Region], target_regions: list[Region],
                pairs: list[tuple[int, int]], *,
                area_mode: str = "both",
                deadline: Deadline | None = None) -> MatchOutcome:
    """Bitmap-union similarity (regions may repeat across pairs)."""
    get_metrics().counter("matching.quick_calls").inc()
    if not pairs:
        return MatchOutcome(0.0, (), 0, 0)
    query_union = _empty_like(query_regions)
    target_union = _empty_like(target_regions)
    for q_index, t_index in pairs:
        if deadline is not None:
            deadline.check("matching.quick_match")
        query_union.union_update(query_regions[q_index].bitmap)
        target_union.union_update(target_regions[t_index].bitmap)
    query_covered = query_union.covered_pixels
    target_covered = target_union.covered_pixels
    return MatchOutcome(
        _similarity(query_covered, target_covered,
                    query_union.height * query_union.width,
                    target_union.height * target_union.width, area_mode),
        tuple(pairs), query_covered, target_covered,
    )


def greedy_match(query_regions: list[Region], target_regions: list[Region],
                 pairs: list[tuple[int, int]], *,
                 area_mode: str = "both",
                 deadline: Deadline | None = None) -> MatchOutcome:
    """One-to-one similar-region-pair-set by greedy marginal area.

    Each iteration scans the remaining admissible pairs for the one
    whose regions add the most uncovered pixels (summed over both
    images), takes it, and retires its two regions.  Stops when no
    admissible pair adds anything.
    """
    get_metrics().counter("matching.greedy_calls").inc()
    if not pairs:
        return MatchOutcome(0.0, (), 0, 0)
    query_union = _empty_like(query_regions)
    target_union = _empty_like(target_regions)
    remaining = list(dict.fromkeys(pairs))  # dedupe, keep order
    used_query: set[int] = set()
    used_target: set[int] = set()
    chosen: list[tuple[int, int]] = []
    while remaining:
        if deadline is not None:
            deadline.check("matching.greedy_match")
        best_gain = 0
        best_index = -1
        for k, (q_index, t_index) in enumerate(remaining):
            gain = (query_union.marginal_pixels(query_regions[q_index].bitmap)
                    + target_union.marginal_pixels(
                        target_regions[t_index].bitmap))
            if gain > best_gain:
                best_gain = gain
                best_index = k
        if best_index < 0:
            break
        q_index, t_index = remaining.pop(best_index)
        chosen.append((q_index, t_index))
        used_query.add(q_index)
        used_target.add(t_index)
        query_union.union_update(query_regions[q_index].bitmap)
        target_union.union_update(target_regions[t_index].bitmap)
        remaining = [(q, t) for q, t in remaining
                     if q not in used_query and t not in used_target]
    query_covered = query_union.covered_pixels
    target_covered = target_union.covered_pixels
    return MatchOutcome(
        _similarity(query_covered, target_covered,
                    query_union.height * query_union.width,
                    target_union.height * target_union.width, area_mode),
        tuple(chosen), query_covered, target_covered,
    )


def exact_match(query_regions: list[Region], target_regions: list[Region],
                pairs: list[tuple[int, int]], *, area_mode: str = "both",
                max_pairs: int = 20,
                deadline: Deadline | None = None) -> MatchOutcome:
    """Optimal one-to-one similar-region-pair-set by branch-and-bound.

    The covered area is submodular in the chosen pair set, so the sum
    of each remaining pair's individual marginal against the current
    union is an admissible upper bound; branches that cannot beat the
    incumbent are pruned.  Guarded by ``max_pairs`` because the problem
    is NP-hard (Theorem 5.1).
    """
    get_metrics().counter("matching.exact_calls").inc()
    unique_pairs = list(dict.fromkeys(pairs))
    if not unique_pairs:
        return MatchOutcome(0.0, (), 0, 0)
    if len(unique_pairs) > max_pairs:
        raise ParameterError(
            f"exact matching limited to {max_pairs} pairs, "
            f"got {len(unique_pairs)} (use greedy_match)"
        )
    query_union = _empty_like(query_regions)
    target_union = _empty_like(target_regions)

    best = {"covered": -1, "chosen": (), "q": 0, "t": 0}

    def recurse(index: int, used_query: set[int], used_target: set[int],
                q_bitmap: CoverageBitmap, t_bitmap: CoverageBitmap,
                chosen: list[tuple[int, int]]) -> None:
        if deadline is not None:
            deadline.check("matching.exact_match")
        covered = q_bitmap.covered_pixels + t_bitmap.covered_pixels
        if covered > best["covered"]:
            best.update(covered=covered, chosen=tuple(chosen),
                        q=q_bitmap.covered_pixels,
                        t=t_bitmap.covered_pixels)
        bound = covered
        for q_index, t_index in unique_pairs[index:]:
            if q_index in used_query or t_index in used_target:
                continue
            bound += (q_bitmap.marginal_pixels(query_regions[q_index].bitmap)
                      + t_bitmap.marginal_pixels(
                          target_regions[t_index].bitmap))
        if bound <= best["covered"]:
            return
        for k in range(index, len(unique_pairs)):
            q_index, t_index = unique_pairs[k]
            if q_index in used_query or t_index in used_target:
                continue
            next_q = q_bitmap.copy()
            next_q.union_update(query_regions[q_index].bitmap)
            next_t = t_bitmap.copy()
            next_t.union_update(target_regions[t_index].bitmap)
            chosen.append((q_index, t_index))
            recurse(k + 1, used_query | {q_index}, used_target | {t_index},
                    next_q, next_t, chosen)
            chosen.pop()

    recurse(0, set(), set(), query_union, target_union, [])
    return MatchOutcome(
        _similarity(best["q"], best["t"],
                    query_union.height * query_union.width,
                    target_union.height * target_union.width, area_mode),
        best["chosen"], best["q"], best["t"],
    )


#: Dispatch used by the database layer.
MATCHERS = {"quick": quick_match, "greedy": greedy_match,
            "exact": exact_match}
