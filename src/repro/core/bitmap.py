"""Coarse pixel-coverage bitmaps for regions (Section 5.3).

Each region stores which pixels of its image the member windows cover.
A full-resolution mask would be wasteful, so — exactly as the paper
suggests — coverage is kept on a coarse ``G x G`` block grid (the paper
uses 16x16, i.e. 32 bytes per region).  A block counts as covered when
at least half of its pixels are covered by the union of the region's
windows; the choice is made at rasterization time against an exact
full-resolution mask, so overlap between windows never double-counts.

The similarity measure of Definition 4.3 needs the *pixel* area covered
by unions of such bitmaps; :meth:`CoverageBitmap.covered_pixels` maps
set blocks back to their true pixel counts (edge blocks are smaller
when the image side is not divisible by ``G``).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError


def _block_edges(extent: int, grid: int) -> np.ndarray:
    """Pixel boundaries of the ``grid`` blocks along one axis."""
    return np.linspace(0, extent, grid + 1).round().astype(int)


class CoverageBitmap:
    """A ``G x G`` boolean coverage grid over an ``height x width`` image."""

    __slots__ = ("height", "width", "grid", "blocks")

    def __init__(self, height: int, width: int, grid: int,
                 blocks: np.ndarray | None = None) -> None:
        if height < 1 or width < 1:
            raise ParameterError("bitmap image size must be positive")
        if grid < 1:
            raise ParameterError("bitmap grid must be >= 1")
        self.height = height
        self.width = width
        self.grid = grid
        if blocks is None:
            blocks = np.zeros((grid, grid), dtype=bool)
        else:
            blocks = np.asarray(blocks, dtype=bool)
            if blocks.shape != (grid, grid):
                raise ParameterError(
                    f"blocks must be {grid}x{grid}, got {blocks.shape}"
                )
        self.blocks = blocks

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_windows(cls, height: int, width: int, grid: int,
                     windows: list[tuple[int, int, int]],
                     *, threshold: float = 0.5) -> "CoverageBitmap":
        """Rasterize ``(row, col, size)`` windows into a coverage bitmap.

        A block is set when the union of the windows covers at least
        ``threshold`` of its pixels.
        """
        mask = np.zeros((height, width), dtype=bool)
        for row, col, size in windows:
            if row < 0 or col < 0 or row + size > height or col + size > width:
                raise ParameterError(
                    f"window {size}@({row},{col}) exceeds image "
                    f"{height}x{width}"
                )
            mask[row:row + size, col:col + size] = True
        return cls.from_mask(mask, grid, threshold=threshold)

    @classmethod
    def from_mask(cls, mask: np.ndarray, grid: int,
                  *, threshold: float = 0.5) -> "CoverageBitmap":
        """Downsample a full-resolution boolean mask to a block bitmap."""
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2:
            raise ParameterError(f"mask must be 2-D, got {mask.ndim}-D")
        return cls.from_masks(mask[np.newaxis], grid,
                              threshold=threshold)[0]

    @classmethod
    def from_masks(cls, masks: np.ndarray, grid: int,
                   *, threshold: float = 0.5) -> list["CoverageBitmap"]:
        """Downsample a ``(count, height, width)`` stack of masks at once.

        The batched form of :meth:`from_mask`: one pair of prefix-sum
        passes over the whole stack instead of one per region, which is
        what region extraction uses (an image yields dozens of regions
        over the same geometry).  Results are identical to mapping
        :meth:`from_mask` over the stack.
        """
        masks = np.asarray(masks, dtype=bool)
        if masks.ndim != 3:
            raise ParameterError(
                f"masks must be (count, height, width), got {masks.ndim}-D")
        count, height, width = masks.shape
        row_edges = _block_edges(height, grid)
        col_edges = _block_edges(width, grid)
        # Block-wise covered-pixel counts via prefix sums, batched over
        # the leading axis.
        prefix = np.zeros((count, height + 1, width + 1), dtype=np.int64)
        np.cumsum(np.cumsum(masks, axis=1), axis=2, out=prefix[:, 1:, 1:])
        r0, r1 = row_edges[:-1], row_edges[1:]
        c0, c1 = col_edges[:-1], col_edges[1:]
        covered = (prefix[:, r1][:, :, c1] - prefix[:, r1][:, :, c0]
                   - prefix[:, r0][:, :, c1] + prefix[:, r0][:, :, c0])
        sizes = np.outer(r1 - r0, c1 - c0)
        nonempty = sizes > 0
        blocks = np.zeros((count, grid, grid), dtype=bool)
        blocks[:, nonempty] = covered[:, nonempty] \
            >= threshold * sizes[nonempty]
        return [cls(height, width, grid, block) for block in blocks]

    @classmethod
    def from_window_groups(cls, height: int, width: int, grid: int,
                           window_groups: list[list[tuple[int, int, int]]],
                           *, threshold: float = 0.5
                           ) -> list["CoverageBitmap"]:
        """Rasterize several window groups (one bitmap each) in a batch.

        Equivalent to calling :meth:`from_windows` per group, but the
        coarse downsampling runs once over the whole stack.
        """
        masks = np.zeros((len(window_groups), height, width), dtype=bool)
        for index, windows in enumerate(window_groups):
            mask = masks[index]
            for row, col, size in windows:
                if row < 0 or col < 0 or row + size > height \
                        or col + size > width:
                    raise ParameterError(
                        f"window {size}@({row},{col}) exceeds image "
                        f"{height}x{width}"
                    )
                mask[row:row + size, col:col + size] = True
        return cls.from_masks(masks, grid, threshold=threshold)

    @classmethod
    def full(cls, height: int, width: int, grid: int) -> "CoverageBitmap":
        """Bitmap covering the whole image."""
        return cls(height, width, grid, np.ones((grid, grid), dtype=bool))

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "CoverageBitmap") -> None:
        if (self.height, self.width, self.grid) != (
                other.height, other.width, other.grid):
            raise ParameterError(
                "bitmaps cover different images "
                f"({self.height}x{self.width}/{self.grid} vs "
                f"{other.height}x{other.width}/{other.grid})"
            )

    def union(self, other: "CoverageBitmap") -> "CoverageBitmap":
        """Blocks covered by either bitmap."""
        self._check_compatible(other)
        return CoverageBitmap(self.height, self.width, self.grid,
                              self.blocks | other.blocks)

    def intersection(self, other: "CoverageBitmap") -> "CoverageBitmap":
        """Blocks covered by both bitmaps."""
        self._check_compatible(other)
        return CoverageBitmap(self.height, self.width, self.grid,
                              self.blocks & other.blocks)

    def union_update(self, other: "CoverageBitmap") -> None:
        """In-place union (hot path of the matching algorithms)."""
        self._check_compatible(other)
        self.blocks |= other.blocks

    def copy(self) -> "CoverageBitmap":
        return CoverageBitmap(self.height, self.width, self.grid,
                              self.blocks.copy())

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    def block_pixel_counts(self) -> np.ndarray:
        """Pixel count of each block (edge blocks may be smaller)."""
        row_edges = _block_edges(self.height, self.grid)
        col_edges = _block_edges(self.width, self.grid)
        rows = np.diff(row_edges)
        cols = np.diff(col_edges)
        return rows[:, None] * cols[None, :]

    @property
    def covered_pixels(self) -> int:
        """Pixels in covered blocks — the ``area(...)`` of Definition 4.3."""
        return int(self.block_pixel_counts()[self.blocks].sum())

    @property
    def covered_fraction(self) -> float:
        """Covered pixels / image pixels."""
        return self.covered_pixels / (self.height * self.width)

    def marginal_pixels(self, other: "CoverageBitmap") -> int:
        """Pixels ``other`` would add to this bitmap's coverage."""
        self._check_compatible(other)
        fresh = other.blocks & ~self.blocks
        return int(self.block_pixel_counts()[fresh].sum())

    # ------------------------------------------------------------------
    # Serialization (the paper's 32-byte region payload)
    # ------------------------------------------------------------------
    def pack(self) -> bytes:
        """Pack the block grid into ``ceil(G*G / 8)`` bytes."""
        return np.packbits(self.blocks.reshape(-1)).tobytes()

    @classmethod
    def unpack(cls, data: bytes, height: int, width: int,
               grid: int) -> "CoverageBitmap":
        """Invert :meth:`pack` given the image geometry."""
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8),
                             count=grid * grid)
        return cls(height, width, grid,
                   bits.reshape(grid, grid).astype(bool))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageBitmap):
            return NotImplemented
        return ((self.height, self.width, self.grid)
                == (other.height, other.width, other.grid)
                and bool(np.array_equal(self.blocks, other.blocks)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<CoverageBitmap {self.grid}x{self.grid} over "
                f"{self.height}x{self.width} "
                f"cov={self.covered_fraction:.2f}>")
