"""Database-level format migration: ``walrus migrate`` as a library.

:func:`migrate_database` wraps
:func:`~repro.index.migrate.migrate_page_file` with the database
directory layout checks the CLI needs — the directory must look like a
checkpoint (page file + metadata file), and after the rewrite the
whole database is optionally re-verified with
:func:`~repro.core.fsck.fsck_database` so a migration that produced an
unreadable file fails loudly instead of being discovered at the next
query.

Migration is offline: close every writer and reader over the directory
first.  Readers that stay open keep serving their pinned snapshot from
the old inode (``os.replace`` semantics) and pick up the new format
when they reopen.
"""

from __future__ import annotations

import os
from typing import Any

from repro.core.database import WalrusDatabase
from repro.core.fsck import fsck_database
from repro.exceptions import StorageError
from repro.index.migrate import migrate_page_file


def migrate_database(directory: str, *, to_format: int | None = None,
                     keep_backup: bool = False,
                     check: bool = True) -> dict[str, Any]:
    """Convert the page file under ``directory`` to ``to_format``.

    Returns a summary dict: the
    :meth:`~repro.index.migrate.MigrationReport.to_dict` payload plus
    ``directory``, ``checked`` and ``ok`` (``False`` only when the
    post-migration fsck found issues).  Raises :class:`StorageError`
    when the directory is not a database or the page file already has
    the target format.
    """
    page_path = os.path.join(directory, WalrusDatabase.PAGE_FILE)
    meta_path = os.path.join(directory, WalrusDatabase.META_FILE)
    if not os.path.isdir(directory):
        raise StorageError(f"{directory} is not a directory")
    for path, label in ((page_path, "page file"),
                        (meta_path, "metadata file")):
        if not os.path.exists(path):
            raise StorageError(
                f"{directory} is not a walrus database: missing {label} "
                f"{os.path.basename(path)}")
    report = migrate_page_file(page_path, to_format=to_format,
                               keep_backup=keep_backup)
    summary: dict[str, Any] = report.to_dict()
    summary["directory"] = directory
    summary["checked"] = check
    summary["ok"] = True
    if check:
        fsck = fsck_database(directory)
        summary["ok"] = bool(fsck["ok"])
        if not fsck["ok"]:
            summary["fsck_issues"] = fsck["issues"]
    return summary
