"""Recovery checking: ``walrus fsck`` as a library function.

:func:`fsck_database` verifies an on-disk database directory — page
checksums and page-table health via
:meth:`~repro.index.pagestore.PageStore.scan` (on either on-disk
format — the store is opened through
:func:`~repro.index.pagestore.open_page_store`), metadata integrity,
and R*-tree structure via
:meth:`~repro.index.rstar.RStarTree.verify_summary` — and returns a
machine-readable summary dict instead of printing.  The CLI renders
the dict; CI and the structured event log consume it directly (when
the event log is enabled, the summary is also emitted as an ``fsck``
event).

Summary keys
------------
``directory``
    The checked path.
``is_database``
    Whether the directory has the page file + metadata layout at all
    (when ``False``, every other count is zero and ``issues`` says
    what is missing).
``pages_checked``
    Committed pages whose checksums were verified.
``issues``
    Every problem found, in check order (empty means healthy).
``index``
    The R*-tree :meth:`verify_summary` dict, or ``None`` when the
    walk could not run (unusable store or metadata).
``format_version``
    The page file's on-disk format (2 or 3), or ``None`` when the
    store could not be opened.
``ok``
    ``is_database and not issues``.
"""

from __future__ import annotations

import os
from typing import Any

from repro.core.database import WalrusDatabase
from repro.exceptions import StorageError, WalrusError
from repro.index.rstar import RStarTree
from repro.index.pagestore import open_page_store
from repro.observability.events import get_events


def fsck_database(directory: str) -> dict[str, Any]:
    """Check ``directory`` for corruption; returns the summary dict.

    Never raises for damage it was built to detect — missing files,
    checksum failures, corrupt metadata and structural index damage
    all land in ``issues``.
    """
    page_path = os.path.join(directory, WalrusDatabase.PAGE_FILE)
    meta_path = os.path.join(directory, WalrusDatabase.META_FILE)
    issues: list[str] = []
    index_summary: dict[str, Any] | None = None
    format_version: int | None = None
    pages_checked = 0
    is_database = True

    if not os.path.isdir(directory):
        is_database = False
        issues.append(f"{directory} is not a directory")
    else:
        for path, label in ((page_path, "page file"),
                            (meta_path, "metadata file")):
            if not os.path.exists(path):
                is_database = False
                issues.append(
                    f"missing {label} {os.path.basename(path)}")

    if is_database:
        store = None
        try:
            store = open_page_store(page_path, readonly=True)
        except StorageError as error:
            issues.append(f"page file unusable: {error}")
        if store is not None:
            format_version = store.FORMAT_VERSION
            report = store.scan()
            pages_checked = len(report.pages)
            issues.extend(f"page file: {issue}" for issue in report.issues)
            meta = None
            try:
                blob = store.metadata
                if blob is not None:
                    meta = WalrusDatabase._parse_meta(blob, page_path)
                else:
                    meta = WalrusDatabase._load_meta(meta_path)
            except StorageError as error:
                if not any("metadata record" in issue for issue in issues):
                    issues.append(f"page file: {error}")
            except WalrusError as error:
                issues.append(str(error))
            if meta is not None:
                try:
                    tree = RStarTree.from_state(meta["index_state"], store)
                    index_summary = tree.verify_summary()
                    issues.extend(f"index: {issue}"
                                  for issue in index_summary["issues"])
                except (KeyError, TypeError) as error:
                    issues.append(
                        f"metadata: malformed index state: {error!r}")
            store.close()

    summary: dict[str, Any] = {
        "directory": directory,
        "is_database": is_database,
        "pages_checked": pages_checked,
        "format_version": format_version,
        "issues": issues,
        "index": index_summary,
        "ok": is_database and not issues,
    }
    events = get_events()
    if events.enabled:
        events.emit("fsck", summary)
    return summary
