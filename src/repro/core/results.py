"""Typed query results returned by :class:`WalrusDatabase`.

Every public query entry point returns objects from this module rather
than bare tuples: :meth:`~WalrusDatabase.query` and ``query_scene``
return a :class:`QueryResult` of :class:`ImageMatch` rows, and
:meth:`~WalrusDatabase.nearest_regions` returns :class:`RegionMatch`
rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.matching import MatchOutcome
from repro.observability import QueryReport


@dataclass(frozen=True)
class RegionMatch:
    """One database region matched by an ``epsilon``-range probe.

    Attributes
    ----------
    image_id:
        Database-assigned integer id of the image owning the region.
    name:
        That image's name.
    distance:
        Signature-space distance between the query region and the match.
    query_region:
        Index of the query region (into the query's extracted regions).
    target_region:
        Index of the matched region within its image's region list.
    """

    image_id: int
    name: str
    distance: float
    query_region: int
    target_region: int

    def __lt__(self, other: "RegionMatch") -> bool:
        """Matches sort by distance (closest first)."""
        if not isinstance(other, RegionMatch):
            return NotImplemented
        return self.distance < other.distance


@dataclass(frozen=True)
class ImageMatch:
    """One target image that matched the query.

    Attributes
    ----------
    image_id:
        Database-assigned integer id of the target image.
    name:
        The target image's name (as carried on its :class:`Image`).
    similarity:
        Definition 4.3 similarity to the query.
    outcome:
        Full matching detail (contributing pairs, covered areas).
    """

    image_id: int
    name: str
    similarity: float
    outcome: MatchOutcome

    @property
    def pairs(self) -> tuple[tuple[int, int], ...]:
        """The contributing ``(query_region, target_region)`` pairs."""
        return self.outcome.pairs


@dataclass(frozen=True)
class QueryStats:
    """Diagnostics matching the columns of the paper's Table 1.

    Attributes
    ----------
    query_regions:
        Number of regions extracted from the query image.
    regions_retrieved:
        Total matching database regions over all query regions.
    mean_regions_per_query_region:
        ``regions_retrieved / query_regions`` ("Avg. No. of Regions
        Retrieved" in Table 1).
    candidate_images:
        Distinct database images containing at least one matching
        region ("No. of Distinct Images" in Table 1).
    elapsed_seconds:
        Wall-clock time of the whole query (extraction + probe +
        matching).
    """

    query_regions: int
    regions_retrieved: int
    mean_regions_per_query_region: float
    candidate_images: int
    elapsed_seconds: float


@dataclass(frozen=True)
class QueryResult:
    """Ranked matches plus per-query diagnostics.

    ``report`` carries the EXPLAIN-style :class:`QueryReport` when the
    query was run with ``explain=True`` (``None`` otherwise).
    """

    matches: tuple[ImageMatch, ...]
    stats: QueryStats
    report: QueryReport | None = None

    def __iter__(self) -> Iterator[ImageMatch]:
        return iter(self.matches)

    def __len__(self) -> int:
        return len(self.matches)

    def names(self) -> list[str]:
        """Names of the matched images, best first."""
        return [match.name for match in self.matches]
