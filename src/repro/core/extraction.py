"""Region extraction: sliding windows -> BIRCH clusters -> regions.

Implements the indexing-side pipeline of Section 5.1/5.3: compute a
feature vector per sliding window, cluster the vectors with BIRCH's
pre-clustering phase under the radius threshold ``eps_c``, and turn
each cluster into a :class:`~repro.core.regions.Region` carrying a
centroid or bounding-box signature plus the coverage bitmap of its
member windows.
"""

from __future__ import annotations

from repro.clustering.birch import merge_clusters, precluster
from repro.core.bitmap import CoverageBitmap
from repro.core.parameters import ExtractionParameters
from repro.core.regions import Region, RegionSignature
from repro.core.signatures import compute_window_set
from repro.imaging.image import Image
from repro.observability import Deadline, get_metrics


class RegionExtractor:
    """Decomposes images into regions under fixed extraction parameters.

    The extractor is stateless between calls; it exists so a database
    and its queries are guaranteed to use identical parameters.
    """

    def __init__(self, params: ExtractionParameters | None = None) -> None:
        self.params = params if params is not None else ExtractionParameters()

    def extract(self, image: Image, *,
                deadline: Deadline | None = None) -> list[Region]:
        """Extract the regions of ``image``.

        Returns one region per BIRCH subcluster with at least
        ``params.min_region_windows`` member windows.  The number of
        regions varies with image complexity (Section 6.6) — it is not
        a parameter.

        ``deadline`` is checked between the pipeline's stages (window
        features, clustering, signature refinement), so an expired
        budget aborts after the current vectorized stage instead of
        after the whole extraction.
        """
        params = self.params
        metrics = get_metrics()
        if deadline is not None:
            deadline.check("extract.start")
        with metrics.timer("extraction.window_seconds"):
            window_set = compute_window_set(image, params)
        if deadline is not None:
            deadline.check("extract.windows")
        with metrics.timer("extraction.cluster_seconds"):
            clusters = precluster(
                window_set.features,
                params.cluster_threshold,
                branching_factor=params.branching_factor,
                max_leaf_entries=params.max_leaf_entries,
                deadline=deadline,
            )
        if deadline is not None:
            deadline.check("extract.cluster")
        if params.merge_factor is not None:
            clusters = merge_clusters(
                window_set.features, clusters,
                params.merge_factor * params.cluster_threshold)
        refined_features = None
        if params.refine_signature_size is not None:
            # Same window grid, bigger per-window signatures; clustering
            # stays on the coarse features (as in Section 5.5: refine
            # *after* the cheap phase).
            refined_features = compute_window_set(
                image, params,
                signature_size=params.refine_signature_size).features

        kept = [cluster for cluster in clusters
                if cluster.count >= params.min_region_windows]
        window_groups = []
        for cluster in kept:
            member_ids = list(cluster.member_ids)
            window_groups.append([
                (int(row), int(col), int(size))
                for row, col, size in window_set.geometry[member_ids]
            ])
        # One batched rasterization pass for every region of the image.
        bitmaps = CoverageBitmap.from_window_groups(
            image.height, image.width, params.bitmap_grid, window_groups)

        regions: list[Region] = []
        for cluster, bitmap in zip(kept, bitmaps):
            if params.signature_mode == "centroid":
                signature = RegionSignature.from_centroid(cluster.centroid)
            else:
                signature = RegionSignature.from_bounds(cluster.lower,
                                                        cluster.upper)
            refined = None
            if refined_features is not None:
                refined = refined_features[list(cluster.member_ids)].mean(
                    axis=0)
            regions.append(Region(
                signature=signature,
                bitmap=bitmap,
                window_count=cluster.count,
                cluster_radius=cluster.radius,
                refined=refined,
            ))
        metrics.counter("extraction.images").inc()
        metrics.counter("extraction.windows").inc(len(window_set))
        metrics.counter("extraction.clusters").inc(len(clusters))
        metrics.counter("extraction.regions").inc(len(regions))
        return regions

    def coverage(self, regions: list[Region], height: int,
                 width: int) -> float:
        """Fraction of the image covered by the union of ``regions``."""
        if not regions:
            return 0.0
        union = CoverageBitmap(height, width, self.params.bitmap_grid)
        for region in regions:
            union.union_update(region.bitmap)
        return union.covered_fraction

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegionExtractor({self.params!r})"


def extract_regions(image: Image,
                    params: ExtractionParameters | None = None
                    ) -> list[Region]:
    """Convenience wrapper: extract regions with default or given params."""
    return RegionExtractor(params).extract(image)
