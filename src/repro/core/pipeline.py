"""Batched, parallel region extraction — the ingest fan-out.

Indexing cost in WALRUS is dominated by per-image work that is
embarrassingly parallel: sliding-window signature computation
(Section 5.2) and BIRCH clustering (Section 5.3) touch one image at a
time and share nothing.  :class:`ExtractionPipeline` fans that work
across a ``multiprocessing`` pool:

* the input sequence is cut into **chunks** (work-queue granularity:
  large enough to amortize IPC, small enough to load-balance);
* each worker holds one long-lived :class:`RegionExtractor` built from
  the pipeline's parameters (initializer, not per-task pickling);
* chunk results are re-assembled **by input position**, so the output
  is deterministic and byte-identical to a serial run regardless of
  worker scheduling.

With ``workers=1`` the pipeline degrades to an in-process loop (no
pool, no pickling), which is also the only mode used on single-CPU
hosts unless explicitly overridden.  Extraction is deterministic in
``(pixels, parameters)``, so parallel and serial runs agree exactly; a
test asserts byte-identical region sets.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
from typing import Iterable, Sequence, cast

from repro.core.extraction import RegionExtractor
from repro.core.parameters import ExtractionParameters
from repro.core.regions import Region
from repro.exceptions import InvalidParameterError, PipelineError
from repro.imaging.image import Image
from repro.observability import Stopwatch, get_events, get_metrics

#: Per-worker extractor, installed once by :func:`_initialize_worker`.
_WORKER_EXTRACTOR: RegionExtractor | None = None


def _initialize_worker(params: ExtractionParameters) -> None:
    global _WORKER_EXTRACTOR
    _WORKER_EXTRACTOR = RegionExtractor(params)


def _extract_chunk(task: tuple[int, list[Image]]
                   ) -> tuple[int, list[list[Region]], float]:
    """Extract one chunk; returns ``(start, regions, elapsed_seconds)``.

    The elapsed time is measured inside the worker (its own registry is
    the fork-time default, disabled) and shipped back with the result so
    the parent can record per-chunk histograms.
    """
    start, images = task
    extractor = _WORKER_EXTRACTOR
    if extractor is None:  # pragma: no cover - initializer always runs
        raise PipelineError("worker used before initialization")
    watch = Stopwatch()
    regions = [extractor.extract(image) for image in images]
    return start, regions, watch.elapsed


def available_workers() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_chunk_size(count: int, workers: int,
                       chunk_size: int | None = None) -> int:
    """Work-queue granularity: ~4 chunks per worker, capped at 32.

    Explicit ``chunk_size`` wins; it must be positive.
    """
    if chunk_size is not None:
        if chunk_size < 1:
            raise InvalidParameterError(
                f"chunk_size must be >= 1, got {chunk_size}")
        return chunk_size
    if count <= 0:
        return 1
    return max(1, min(32, -(-count // (workers * 4))))


class ExtractionPipeline:
    """A reusable worker pool for region extraction.

    Parameters
    ----------
    params:
        Extraction parameters shared by every worker.
    workers:
        Worker process count; ``None`` uses the available CPUs.  ``1``
        runs in-process.
    chunk_size:
        Images per work-queue item; ``None`` picks ~4 chunks per
        worker.

    The pool is created lazily on the first parallel
    :meth:`extract_many` call and reused until :meth:`close` (or exit
    from the ``with`` block), so a sequence of ingest batches pays the
    fork cost once.
    """

    def __init__(self, params: ExtractionParameters | None = None, *,
                 workers: int | None = None,
                 chunk_size: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise InvalidParameterError(
                f"chunk_size must be >= 1, got {chunk_size}")
        self.params = params if params is not None else ExtractionParameters()
        self.workers = workers if workers is not None else available_workers()
        self.chunk_size = chunk_size
        self._pool: multiprocessing.pool.Pool | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
            self._pool = context.Pool(self.workers,
                                      initializer=_initialize_worker,
                                      initargs=(self.params,))
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ExtractionPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def extract_many(self, images: Iterable[Image]
                     ) -> list[list[Region]]:
        """Regions of every image, in input order.

        The result is exactly ``[extract(i) for i in images]`` — chunk
        scheduling never reorders or changes anything.
        """
        if self._closed:
            raise PipelineError("extract_many on a closed pipeline")
        batch: Sequence[Image] = (images if isinstance(images, (list, tuple))
                                  else list(images))
        if not batch:
            return []
        metrics = get_metrics()
        events = get_events()
        if self.workers == 1:
            extractor = RegionExtractor(self.params)
            serial_watch = Stopwatch() if events.enabled else None
            with metrics.timer("pipeline.batch_seconds"):
                out = [extractor.extract(image) for image in batch]
            metrics.counter("pipeline.images").inc(len(batch))
            if serial_watch is not None:
                serial_wall = serial_watch.elapsed
                events.emit("extract_batch", {
                    "images": len(batch),
                    "chunks": 1,
                    "workers": 1,
                    "wall_seconds": serial_wall,
                    "busy_seconds": serial_wall,
                })
            return out

        chunk = resolve_chunk_size(len(batch), self.workers, self.chunk_size)
        tasks = [(start, list(batch[start:start + chunk]))
                 for start in range(0, len(batch), chunk)]
        results: list[list[Region] | None] = [None] * len(batch)
        pool = self._ensure_pool()
        busy_seconds = 0.0
        watch = Stopwatch()
        for start, regions_per_image, elapsed in pool.imap_unordered(
                _extract_chunk, tasks):
            for offset, regions in enumerate(regions_per_image):
                results[start + offset] = regions
            busy_seconds += elapsed
            if metrics.enabled:
                metrics.histogram("pipeline.chunk_seconds").observe(elapsed)
        if metrics.enabled:
            wall = watch.elapsed
            metrics.counter("pipeline.images").inc(len(batch))
            metrics.counter("pipeline.chunks").inc(len(tasks))
            metrics.histogram("pipeline.batch_seconds").observe(wall)
            # Aggregate worker busy-time over (wall * workers): 1.0 means
            # every worker was extracting the whole time.
            if wall > 0.0:
                metrics.gauge("pipeline.worker_utilization").set(
                    busy_seconds / (wall * self.workers))
        if events.enabled:
            events.emit("extract_batch", {
                "images": len(batch),
                "chunks": len(tasks),
                "workers": self.workers,
                "wall_seconds": watch.elapsed,
                "busy_seconds": busy_seconds,
            })
        # Every input position was assigned exactly once by the chunk
        # bookkeeping above; the Optional slots are only a fill-in-place
        # artifact.
        return cast("list[list[Region]]", results)


def extract_regions_many(images: Iterable[Image],
                         params: ExtractionParameters | None = None, *,
                         workers: int | None = None,
                         chunk_size: int | None = None
                         ) -> list[list[Region]]:
    """One-shot convenience wrapper around :class:`ExtractionPipeline`."""
    with ExtractionPipeline(params, workers=workers,
                            chunk_size=chunk_size) as pipeline:
        return pipeline.extract_many(images)
