"""A small LRU cache used on the query path.

The WALRUS query pipeline repeats two expensive computations verbatim
across calls:

* **Query-region signatures** — the same query image (an interactive
  user refining ``epsilon``/``tau``, a benchmark sweep, a result page
  re-render) is re-decomposed into regions on every call even though
  extraction is deterministic in ``(pixels, parameters)``.
* **Index probes** — each query region's ``epsilon``-range probe into
  the R*-tree depends only on ``(signature, epsilon, metric)`` and the
  index contents, so tuning ``tau`` or the matching algorithm re-runs
  identical probes.

:class:`LRUCache` is the shared substrate: a bounded mapping with
least-recently-used eviction and hit/miss counters.  It is not thread
safe; the database serializes access.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.exceptions import InvalidParameterError
from repro.observability import get_metrics

#: Sentinel distinguishing "missing" from a cached ``None``.
_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache: capacity, occupancy, hits and misses."""

    capacity: int
    size: int
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A bounded ``key -> value`` mapping with LRU eviction.

    ``capacity == 0`` disables the cache entirely: every ``get`` misses
    and ``put`` is a no-op, so callers never need a separate "caching
    off" branch.

    ``metrics_name`` surfaces the cache through the process-wide
    metrics registry: hits, misses and evictions mirror into
    ``cache.<name>.hits`` / ``.misses`` / ``.evictions`` counters
    whenever the registry is enabled (the cache's own integer counters
    stay authoritative and always on — :meth:`stats` reads those).
    """

    __slots__ = ("capacity", "_data", "hits", "misses", "metrics_name")

    def __init__(self, capacity: int, *,
                 metrics_name: str | None = None) -> None:
        if capacity < 0:
            raise InvalidParameterError(
                f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.metrics_name = metrics_name
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def _mirror(self, event: str) -> None:
        """Bump the registry counter for ``event`` when surfacing is on."""
        metrics = get_metrics()
        if metrics.enabled and self.metrics_name is not None:
            metrics.counter(f"cache.{self.metrics_name}.{event}").inc()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            self._mirror("misses")
            return default
        self._data.move_to_end(key)
        self.hits += 1
        self._mirror("hits")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh a value, evicting the least recently used."""
        if self.capacity == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self._mirror("evictions")

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._data.clear()

    def stats(self) -> CacheStats:
        """A snapshot of the cache's counters."""
        return CacheStats(capacity=self.capacity, size=len(self._data),
                          hits=self.hits, misses=self.misses)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<LRUCache {len(self._data)}/{self.capacity} "
                f"hits={self.hits} misses={self.misses}>")
