"""Window feature vectors: from an image to clusterable points.

Bridges the wavelet substrate and the clustering step (Section 5.1-5.2):
for every sliding window of every configured size, build the
``channels * s^2``-dimensional feature vector by concatenating the
per-channel ``s x s`` Haar signatures (computed with the dynamic
programming algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.color.spaces import convert
from repro.core.parameters import ExtractionParameters
from repro.exceptions import WaveletError
from repro.imaging.image import Image
from repro.wavelets.haar import normalize_2d
from repro.wavelets.sliding import dp_sliding_signatures_stack


@dataclass(frozen=True)
class WindowSet:
    """All window feature vectors of one image.

    Attributes
    ----------
    features:
        ``(n_windows, d)`` float array, ``d = channels * s^2``.
    geometry:
        ``(n_windows, 3)`` int array of ``(row, col, size)`` per window.
    """

    features: np.ndarray
    geometry: np.ndarray

    def __len__(self) -> int:
        return self.features.shape[0]


def effective_window_range(params: ExtractionParameters, height: int,
                           width: int) -> tuple[int, int]:
    """Clamp the configured window range to what fits in the image.

    Returns ``(w_min, w_max)``; raises if even the smallest window does
    not fit.
    """
    largest_fit = 1
    while largest_fit * 2 <= min(height, width):
        largest_fit *= 2
    w_max = min(params.window_max, largest_fit)
    w_min = min(params.window_min, w_max)
    if w_min < params.signature_size:
        raise WaveletError(
            f"image {height}x{width} too small: no window of at least "
            f"{params.signature_size}x{params.signature_size} fits"
        )
    return w_min, w_max


def compute_window_set(image: Image, params: ExtractionParameters, *,
                       signature_size: int | None = None) -> WindowSet:
    """Compute feature vectors for every sliding window of ``image``.

    The image is converted to ``params.color_space`` first; each color
    channel contributes an ``s x s`` signature block, concatenated in
    channel order.  Windows of all dyadic sizes in the (clamped)
    ``[window_min, window_max]`` range are included, slid at
    ``params.stride``.

    ``signature_size`` overrides ``params.signature_size`` (used by the
    refined matching phase, which needs a second, more detailed
    signature per window over the *same* window grid).
    """
    working = convert(image, params.color_space) \
        if params.color_space != "gray" else image.to_gray()
    w_min, w_max = effective_window_range(params, image.height, image.width)
    s = signature_size if signature_size is not None \
        else params.signature_size
    if s > w_min:
        raise WaveletError(
            f"signature size {s} exceeds the effective minimum window "
            f"{w_min} for image {image.height}x{image.width}"
        )

    # All channels at once through the batched DP: one set of large,
    # GIL-releasing numpy operations per level instead of one Python
    # call chain per channel (bit-identical to the per-channel path).
    stack = np.stack(list(working.channels_iter()))
    per_level = dp_sliding_signatures_stack(
        stack, min(s, w_max), w_max, params.stride, w_min=w_min)

    feature_blocks: list[np.ndarray] = []
    geometry_blocks: list[np.ndarray] = []
    for w in sorted(per_level):
        signatures = per_level[w]          # (channels, ny, nx, m, m)
        ny, nx = signatures.shape[1], signatures.shape[2]
        stride = min(w, params.stride)
        channel_features = []
        for block in signatures:
            if params.normalize_signatures:
                block = normalize_2d(block)
            channel_features.append(block.reshape(ny * nx, -1))
        feature_blocks.append(np.concatenate(channel_features, axis=1))
        rows = (np.arange(ny) * stride)[:, None]
        cols = (np.arange(nx) * stride)[None, :]
        geometry = np.empty((ny, nx, 3), dtype=np.int64)
        geometry[:, :, 0] = rows
        geometry[:, :, 1] = cols
        geometry[:, :, 2] = w
        geometry_blocks.append(geometry.reshape(ny * nx, 3))

    features = np.concatenate(feature_blocks, axis=0)
    geometry = np.concatenate(geometry_blocks, axis=0)
    return WindowSet(features, geometry)
