"""WALRUS core: region extraction, matching and the image database."""

from repro.core.bitmap import CoverageBitmap
from repro.core.database import IndexedImage, WalrusDatabase
from repro.core.extraction import RegionExtractor, extract_regions
from repro.core.matching import (
    MATCHERS,
    MatchOutcome,
    exact_match,
    greedy_match,
    quick_match,
)
from repro.core.migrate import migrate_database
from repro.core.parameters import (
    AREA_MODES,
    MATCHING_MODES,
    PAPER_EXTRACTION,
    PAPER_QUERY,
    SIGNATURE_MODES,
    ExtractionParameters,
    QueryParameters,
)
from repro.core.regions import Region, RegionSignature
from repro.core.results import ImageMatch, QueryResult, QueryStats
from repro.core.signatures import (
    WindowSet,
    compute_window_set,
    effective_window_range,
)

__all__ = [
    "AREA_MODES",
    "CoverageBitmap",
    "ExtractionParameters",
    "ImageMatch",
    "IndexedImage",
    "MATCHERS",
    "MATCHING_MODES",
    "MatchOutcome",
    "PAPER_EXTRACTION",
    "PAPER_QUERY",
    "QueryParameters",
    "QueryResult",
    "QueryStats",
    "Region",
    "RegionExtractor",
    "RegionSignature",
    "SIGNATURE_MODES",
    "WalrusDatabase",
    "WindowSet",
    "compute_window_set",
    "effective_window_range",
    "exact_match",
    "extract_regions",
    "greedy_match",
    "migrate_database",
    "quick_match",
]
