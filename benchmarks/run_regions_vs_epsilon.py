"""Section 6.6: number of regions per image vs. clustering epsilon.

Paper: on the flower query image, the number of regions (clusters)
decreases as eps_c grows from 0.025 to 0.1, and RGB typically yields
~4x the clusters of YCC at equal eps_c.

Usage: python benchmarks/run_regions_vs_epsilon.py
"""

from __future__ import annotations

import argparse

from harness_common import RETRIEVAL_PARAMS, print_table, timed
from repro.core.extraction import RegionExtractor
from repro.datasets.generator import render_scene

EPSILONS = (0.025, 0.05, 0.075, 0.1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=866_866)
    args = parser.parse_args()

    image = render_scene("flowers", seed=args.seed, name="query-866")

    rows = []
    counts = {"ycc": [], "rgb": []}
    for epsilon_c in EPSILONS:
        row = [f"{epsilon_c:.3f}"]
        for space in ("ycc", "rgb"):
            extractor = RegionExtractor(RETRIEVAL_PARAMS.with_(
                cluster_threshold=epsilon_c, color_space=space))
            elapsed, regions = timed(extractor.extract, image)
            counts[space].append(len(regions))
            row.extend([len(regions), f"{elapsed:.2f}"])
        ratio = counts["rgb"][-1] / max(counts["ycc"][-1], 1)
        row.append(f"{ratio:.1f}x")
        rows.append(row)

    print_table(
        ["eps_c", "YCC regions", "YCC s", "RGB regions", "RGB s",
         "RGB/YCC"],
        rows,
        title="Section 6.6: regions per image vs. cluster epsilon",
    )

    ycc_monotone = counts["ycc"] == sorted(counts["ycc"], reverse=True)
    rgb_monotone = counts["rgb"] == sorted(counts["rgb"], reverse=True)
    rgb_more = all(r >= y for r, y in zip(counts["rgb"], counts["ycc"]))
    print("\nshape checks:")
    print(f"  regions decrease with eps_c (YCC): "
          f"{'OK' if ycc_monotone else 'MISMATCH'}")
    print(f"  regions decrease with eps_c (RGB): "
          f"{'OK' if rgb_monotone else 'MISMATCH'}")
    print(f"  RGB >= YCC region count (paper: ~4x): "
          f"{'OK' if rgb_more else 'MISMATCH'}")


if __name__ == "__main__":
    main()
