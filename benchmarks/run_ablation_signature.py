"""Ablation: centroid vs. bounding-box region signatures.

Definition 4.1 allows either the cluster centroid (a point) or the
bounding box of member window signatures as the region signature; the
paper's experiments use centroids.  This harness compares retrieval
quality and query cost of both modes on identical collections.

Usage: python benchmarks/run_ablation_signature.py
"""

from __future__ import annotations

from harness_common import (
    RETRIEVAL_PARAMS,
    build_collection,
    build_database,
    print_table,
    standard_parser,
)
from repro.core.parameters import QueryParameters
from repro.evaluation.harness import (
    evaluate_retriever,
    make_queries,
    walrus_ranker,
)


def main() -> None:
    parser = standard_parser(__doc__)
    parser.add_argument("--epsilon", type=float, default=0.085)
    parser.add_argument("--k", type=int, default=10)
    args = parser.parse_args()

    dataset = build_collection(args)
    queries = make_queries(dataset, per_class=1)

    rows = []
    for mode in ("centroid", "bbox"):
        database = build_database(
            dataset, RETRIEVAL_PARAMS.with_(signature_mode=mode))
        evaluation = evaluate_retriever(
            mode, walrus_ranker(database,
                                QueryParameters(epsilon=args.epsilon)),
            dataset, queries, k=args.k)
        rows.append([
            mode,
            f"{evaluation.mean_precision:.3f}",
            f"{evaluation.mean_recall:.3f}",
            f"{evaluation.mean_ap:.3f}",
            f"{evaluation.mean_seconds:.2f}",
        ])

    print_table(
        ["signature mode", f"P@{args.k}", "recall", "mAP", "s/query"],
        rows,
        title="Ablation: centroid vs. bounding-box region signatures",
    )
    print("\nnote: bbox signatures match more generously (a box's "
          "epsilon-envelope is wider than its centroid's), trading "
          "selectivity for recall.")


if __name__ == "__main__":
    main()
