"""Substrate micro-benchmarks: BIRCH, R*-tree, transforms, codecs.

Not a paper table — these keep the building blocks honest so a
regression in a substrate is visible before it distorts the
paper-level benchmarks.
"""

from __future__ import annotations

import io

import numpy as np
from typing import Any

import pytest

from repro.clustering.birch import precluster
from repro.index.geometry import Rect
from repro.index.rstar import RStarTree
from repro.wavelets.daubechies import daubechies_2d
from repro.wavelets.haar import haar_2d


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    return np.random.default_rng(7).uniform(size=(5000, 12))


def test_birch_precluster(benchmark: Any, points: np.ndarray) -> None:
    clusters = benchmark.pedantic(
        precluster, args=(points[:2000], 0.05),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["clusters"] = len(clusters)


def test_rstar_bulk_insert(benchmark: Any, points: np.ndarray) -> None:
    def build():
        tree = RStarTree(12, max_entries=32)
        for index, point in enumerate(points[:2000]):
            tree.insert_point(point, index)
        return tree

    tree = benchmark.pedantic(build, rounds=2, iterations=1,
                              warmup_rounds=0)
    benchmark.extra_info["height"] = tree.height()


def test_rstar_range_query(benchmark: Any, points: np.ndarray) -> None:
    tree = RStarTree(12, max_entries=32)
    for index, point in enumerate(points):
        tree.insert_point(point, index)
    query = points[0]

    hits = benchmark.pedantic(
        tree.search_within, args=(query, 0.4),
        rounds=10, iterations=5, warmup_rounds=1,
    )
    benchmark.extra_info["hits"] = len(hits)


def test_rstar_bulk_load(benchmark: Any, points: np.ndarray) -> None:
    from repro.index.geometry import Rect

    items = [(Rect.from_point(point), index)
             for index, point in enumerate(points)]

    tree = benchmark.pedantic(
        lambda: RStarTree.bulk_load(12, items, max_entries=32),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["height"] = tree.height()


def test_gist_rtree_insert(benchmark: Any, points: np.ndarray) -> None:
    from repro.index.geometry import Rect
    from repro.index.gist import GiST, RTreeKey

    def build():
        tree = GiST(RTreeKey(), max_entries=16)
        for index, point in enumerate(points[:1000]):
            tree.insert(Rect.from_point(point), index)
        return tree

    tree = benchmark.pedantic(build, rounds=2, iterations=1,
                              warmup_rounds=0)
    benchmark.extra_info["height"] = tree.height()


def test_haar_2d_full_image(benchmark: Any,
                            bench_channel: np.ndarray) -> None:
    benchmark.pedantic(haar_2d, args=(bench_channel,),
                       rounds=10, iterations=5, warmup_rounds=1)


def test_daubechies_2d_full_image(benchmark: Any,
                                  bench_channel: np.ndarray) -> None:
    benchmark.pedantic(daubechies_2d, args=(bench_channel, 4),
                       rounds=10, iterations=5, warmup_rounds=1)


def test_ppm_codec_roundtrip(benchmark: Any, bench_dataset: Any,
                             tmp_path: Any) -> None:
    from repro.imaging.codecs import read_pnm, write_pnm

    image = bench_dataset.images[0]
    path = tmp_path / "bench.ppm"

    def roundtrip():
        write_pnm(image, path)
        return read_pnm(path)

    benchmark.pedantic(roundtrip, rounds=10, iterations=2, warmup_rounds=1)
