"""Run every experiment harness in sequence (the EXPERIMENTS.md data).

Usage: python benchmarks/run_all.py [--quick]

``--quick`` shrinks sweeps/collections for a fast smoke run.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time

HARNESSES: list[tuple[str, list[str], list[str]]] = [
    # (script, full-scale args, quick args)
    ("run_fig6a.py", [], ["--max-window", "32"]),
    ("run_fig6b.py", [], ["--max-signature", "8"]),
    ("run_fig7_fig8.py", ["--images-per-class", "14"],
     ["--images-per-class", "4", "--queries-per-class", "1", "--k", "4"]),
    ("run_table1.py", ["--images-per-class", "12"],
     ["--images-per-class", "3", "--repeats", "1"]),
    ("run_regions_vs_epsilon.py", [], []),
    ("run_robustness.py", ["--images-per-class", "6"],
     ["--images-per-class", "3", "--k", "3"]),
    ("run_ablation_matching.py", ["--images-per-class", "8"],
     ["--images-per-class", "3"]),
    ("run_ablation_signature.py", ["--images-per-class", "8"],
     ["--images-per-class", "3", "--k", "3"]),
    ("run_ablation_windows.py", ["--images-per-class", "8"],
     ["--images-per-class", "3", "--k", "3"]),
    ("run_ablation_extensions.py", ["--images-per-class", "8"],
     ["--images-per-class", "3", "--k", "3"]),
    ("run_ablation_color.py", ["--images-per-class", "8"],
     ["--images-per-class", "3", "--k", "3"]),
    ("run_scaling.py", ["--sizes", "20", "40", "80", "160"],
     ["--sizes", "10", "20"]),
    ("run_region_matching_quality.py", ["--count", "40"],
     ["--count", "12"]),
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small collections / short sweeps")
    args = parser.parse_args()

    import os

    here = os.path.dirname(os.path.abspath(__file__))
    failures = []
    for script, full_args, quick_args in HARNESSES:
        extra = quick_args if args.quick else full_args
        command = [sys.executable, os.path.join(here, script), *extra]
        print(f"\n{'=' * 72}\n$ {' '.join(command)}\n{'=' * 72}",
              flush=True)
        started = time.perf_counter()
        status = subprocess.run(command, cwd=here).returncode
        elapsed = time.perf_counter() - started
        print(f"[{script}: exit {status}, {elapsed:.0f}s]", flush=True)
        if status != 0:
            failures.append(script)

    if failures:
        print(f"\nFAILED: {failures}")
        return 1
    print("\nall experiment harnesses completed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
