"""Section 6.6: region extraction cost and count vs. cluster epsilon.

The paper varies eps_c over 0.025..0.1 and observes (a) fewer clusters
as eps_c grows and (b) RGB producing ~4x the clusters of YCC.
``run_regions_vs_epsilon.py`` prints the counts; these benchmarks time
extraction at each setting and attach the region count.
"""

from __future__ import annotations

from typing import Any

import pytest

from conftest import BENCH_PARAMS
from repro.core.extraction import RegionExtractor

EPSILONS = [0.025, 0.05, 0.1]


@pytest.mark.parametrize("epsilon_c", EPSILONS)
@pytest.mark.parametrize("space", ["ycc", "rgb"])
def test_extraction(benchmark: Any, flower_query: Any,
                    epsilon_c: float, space: str) -> None:
    extractor = RegionExtractor(BENCH_PARAMS.with_(
        cluster_threshold=epsilon_c, color_space=space))
    regions = benchmark.pedantic(
        extractor.extract, args=(flower_query,),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["regions"] = len(regions)
