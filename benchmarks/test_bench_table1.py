"""Table 1: query response time and selectivity vs. querying epsilon.

Paper setup: flower query against the misc collection, eps_c = 0.05,
YCC, 2x2 signatures, centroid region signatures, quick matching; eps
varied over 0.05..0.09.  Response time, matching regions retrieved and
distinct candidate images all increase monotonically with eps.

``benchmarks/run_table1.py`` prints the full three-column table; these
benchmarks time the end-to-end query (extraction + index probe +
matching, as in the paper's "response time") at each epsilon.
"""

from __future__ import annotations

from typing import Any

import pytest

from repro.core.parameters import QueryParameters

EPSILONS = [0.05, 0.06, 0.07, 0.08, 0.09]


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_query_response_time(benchmark: Any, bench_database: Any,
                             flower_query: Any,
                             epsilon: float) -> None:
    params = QueryParameters(epsilon=epsilon)
    result = benchmark.pedantic(
        bench_database.query, args=(flower_query, params),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    # Attach the Table 1 selectivity columns to the benchmark record.
    benchmark.extra_info["regions_retrieved"] = \
        result.stats.regions_retrieved
    benchmark.extra_info["candidate_images"] = \
        result.stats.candidate_images
    benchmark.extra_info["mean_regions_per_query_region"] = round(
        result.stats.mean_regions_per_query_region, 2)
