"""Shared plumbing for the ``run_*.py`` experiment harnesses.

Each harness regenerates one table or figure of the paper and prints it
in the paper's own row/column format, so EXPERIMENTS.md can be checked
line against line.  Scale knobs (collection size, sweep points) are
argparse options with defaults sized for a laptop-minute run.
"""

from __future__ import annotations

import argparse
import time
from typing import Callable

from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters
from repro.datasets.generator import DatasetSpec, SyntheticDataset, generate_dataset

#: Retrieval-experiment extraction parameters: Section 6.4's settings
#: with multi-scale 16..64 windows (see DESIGN.md, substitution notes).
RETRIEVAL_PARAMS = ExtractionParameters(window_min=16, window_max=64,
                                        stride=8, cluster_threshold=0.05,
                                        color_space="ycc")


def timed(function: Callable, *args: object,
          **kwargs: object) -> tuple[float, object]:
    """Run ``function`` once; return ``(elapsed_seconds, result)``."""
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return time.perf_counter() - started, result


def standard_parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--images-per-class", type=int, default=12,
                        help="synthetic collection size per class")
    parser.add_argument("--seed", type=int, default=1999)
    return parser


def build_collection(args: argparse.Namespace) -> SyntheticDataset:
    print(f"# rendering collection: {args.images_per_class} images x 10 "
          f"classes, seed {args.seed}")
    return generate_dataset(DatasetSpec(
        images_per_class=args.images_per_class, seed=args.seed))


def build_database(dataset: SyntheticDataset,
                   params: ExtractionParameters = RETRIEVAL_PARAMS
                   ) -> WalrusDatabase:
    database = WalrusDatabase(params)
    elapsed, _ = timed(database.add_images, dataset.images, bulk=True)
    print(f"# indexed {len(database)} images -> "
          f"{database.region_count} regions in {elapsed:.1f}s "
          f"(STR bulk load)")
    return database


def print_table(headers: list[str], rows: list[list], *,
                title: str = "") -> None:
    """Fixed-width table printer (matches the paper's plain tables)."""
    if title:
        print(f"\n== {title} ==")
    widths = [max(len(str(headers[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(headers))]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i])
                        for i, cell in enumerate(row)))
