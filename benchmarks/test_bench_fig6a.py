"""Figure 6(a): wavelet-signature time vs. sliding-window size.

Paper setup: 256x256 image, 2x2 signatures, stride 1, window sizes
2..128.  The naive transform's cost grows ~quadratically with the
window side while the dynamic program's grows ~logarithmically; at
window 128 the paper measured naive/DP ~= 17x.

``benchmarks/run_fig6a.py`` prints the full series; these benchmarks
time the endpoints and a middle point of both algorithms so the ratio
is visible straight from ``pytest --benchmark-only``.
"""

from __future__ import annotations

from typing import Any

import pytest

import numpy as np

from repro.wavelets.sliding import (
    dp_sliding_signatures,
    naive_window_signatures,
)

WINDOW_SIZES = [2, 16, 128]


@pytest.mark.parametrize("window", WINDOW_SIZES)
def test_naive_by_window_size(benchmark: Any, bench_channel: np.ndarray,
                              window: int) -> None:
    """Naive per-window transforms at one window size (stride 1)."""
    rounds = 3 if window <= 16 else 1
    benchmark.pedantic(
        naive_window_signatures,
        args=(bench_channel,),
        kwargs={"w": window, "s": 2, "stride": 1},
        rounds=rounds, iterations=1, warmup_rounds=0,
    )


@pytest.mark.parametrize("window", WINDOW_SIZES)
def test_dp_by_window_size(benchmark: Any, bench_channel: np.ndarray,
                           window: int) -> None:
    """DP signatures for every level up to ``window`` (stride 1)."""
    benchmark.pedantic(
        dp_sliding_signatures,
        args=(bench_channel,),
        kwargs={"s": 2, "w_max": window, "stride": 1},
        rounds=3, iterations=1, warmup_rounds=1,
    )
