"""Scalability sweep: indexing and query cost vs. collection size.

The paper argues WALRUS "is practical to use even though it uses a
very general similarity model" (query times 5-20 s against 10000
images on 1997 hardware).  This harness measures how indexing time,
index size and query response time grow with the collection, using STR
bulk loading for construction.

Usage: python benchmarks/run_scaling.py [--sizes 20 40 80 160]
"""

from __future__ import annotations

import argparse

from harness_common import RETRIEVAL_PARAMS, print_table, timed
from repro.core.database import WalrusDatabase
from repro.core.parameters import QueryParameters
from repro.datasets.generator import DatasetSpec, generate_dataset, render_scene


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[20, 40, 80, 160],
                        help="collection sizes (images)")
    parser.add_argument("--seed", type=int, default=1999)
    parser.add_argument("--epsilon", type=float, default=0.085)
    args = parser.parse_args()

    largest = max(args.sizes)
    per_class = -(-largest // 10)
    dataset = generate_dataset(DatasetSpec(images_per_class=per_class,
                                           seed=args.seed))
    # Interleave classes so every prefix is class-balanced.
    interleaved = []
    for index in range(per_class):
        interleaved.extend(
            image for image, label in zip(dataset.images, dataset.labels)
            if image.name.endswith(f"{index:04d}")
        )
    query = render_scene("flowers", seed=866_866, name="query-866")

    rows = []
    for size in sorted(args.sizes):
        database = WalrusDatabase(RETRIEVAL_PARAMS)
        index_elapsed, _ = timed(database.add_images,
                                 interleaved[:size], bulk=True)
        result = database.query(query, QueryParameters(epsilon=args.epsilon))
        rows.append([
            size,
            database.region_count,
            f"{index_elapsed:.1f}",
            f"{index_elapsed / size:.2f}",
            f"{result.stats.elapsed_seconds:.2f}",
            result.stats.candidate_images,
        ])

    print_table(
        ["images", "regions", "index (s)", "s/image", "query (s)",
         "candidates"],
        rows,
        title="Scaling: cost vs. collection size",
    )
    per_image = [float(row[3]) for row in rows]
    print(f"\nshape check: per-image indexing cost ~constant "
          f"(extraction-dominated): min {min(per_image):.2f} "
          f"max {max(per_image):.2f} s/image -> "
          f"{'OK' if max(per_image) <= 3 * max(min(per_image), 0.01) else 'MISMATCH'}")


if __name__ == "__main__":
    main()
