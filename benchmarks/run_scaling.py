"""Scalability sweep: batched ingest, bulk loading and query cost.

The paper argues WALRUS "is practical to use even though it uses a
very general similarity model" (query times 5-20 s against 10000
images on 1997 hardware).  This harness measures three things:

1. **Ingest throughput** — the legacy serial path (per-image extract +
   per-region R*-tree insert) against the batched path
   (``add_images(workers=N)``: pooled extraction + one STR bulk-load
   pass).  Both paths must produce identical query results; the
   speedup is hardware-dependent (the pooled path degrades gracefully
   to serial extraction + bulk load on a single-CPU host).
2. **Bulk vs. incremental index build** — STR packing against repeated
   insertion over the *same* pre-extracted regions, with
   ``verify()`` run on both trees and query-result equality checked.
3. **Query scaling** — response time vs. collection size.

Usage::

    python benchmarks/run_scaling.py [--sizes 20 40 80 160] [--workers 4]
    python benchmarks/run_scaling.py --smoke   # CI gate, exits non-zero
                                               # when batched ingest is
                                               # slower than serial or
                                               # results diverge
"""

from __future__ import annotations

import argparse
import sys

from harness_common import RETRIEVAL_PARAMS, print_table, timed
from repro.core.database import WalrusDatabase
from repro.core.parameters import QueryParameters
from repro.datasets.generator import DatasetSpec, generate_dataset, render_scene
from repro.index.rstar import RStarTree


def build_collection(largest: int, seed: int):
    per_class = -(-largest // 10)
    dataset = generate_dataset(DatasetSpec(images_per_class=per_class,
                                           seed=seed))
    # Interleave classes so every prefix is class-balanced.
    interleaved = []
    for index in range(per_class):
        interleaved.extend(
            image for image, label in zip(dataset.images, dataset.labels)
            if image.name.endswith(f"{index:04d}")
        )
    return interleaved


def ranked_names(database: WalrusDatabase, query, epsilon: float):
    result = database.query(query, QueryParameters(epsilon=epsilon))
    return [(match.name, round(match.similarity, 12)) for match in result]


def compare_ingest(images, query, workers: int, epsilon: float):
    """Serial-incremental vs. pooled+bulk ingest of the same images.

    Returns ``(serial_s, batched_s, identical_results, issues)``.
    """
    serial = WalrusDatabase(RETRIEVAL_PARAMS)
    serial_s, _ = timed(serial.add_images, images, bulk=False)

    batched = WalrusDatabase(RETRIEVAL_PARAMS)
    batched_s, _ = timed(batched.add_images, images,
                         bulk=True, workers=workers)

    issues = batched.index.verify()
    identical = (serial.region_count == batched.region_count
                 and ranked_names(serial, query, epsilon)
                 == ranked_names(batched, query, epsilon))
    return serial_s, batched_s, identical, issues


def compare_tree_build(images, query, epsilon: float):
    """STR bulk load vs. repeated insertion over identical regions.

    Extraction is done once up front so only index construction is
    timed.  Returns ``(incremental_s, bulk_s, identical, issues)``.
    """
    reference = WalrusDatabase(RETRIEVAL_PARAMS)
    regions_per_image = [reference.extractor.extract(image)
                         for image in images]
    items = []
    for image_id, regions in enumerate(regions_per_image):
        items.extend((region.signature.to_rect(), (image_id, index))
                     for index, region in enumerate(regions))

    dims = RETRIEVAL_PARAMS.feature_dimensions
    incremental = RStarTree(dims)

    def insert_all():
        for rect, item in items:
            incremental.insert(rect, item)

    incremental_s, _ = timed(insert_all)
    bulk = RStarTree(dims)
    bulk_s, _ = timed(bulk.rebuild_bulk, items)

    issues = incremental.verify() + bulk.verify()
    probe = None
    for regions in regions_per_image:
        if regions:
            probe = regions[0].signature.to_rect().expand(epsilon)
            break
    identical = len(incremental) == len(bulk) == len(items)
    if probe is not None:
        identical = identical and (
            sorted(incremental.search(probe), key=repr)
            == sorted(bulk.search(probe), key=repr))
    return incremental_s, bulk_s, identical, issues


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[20, 40, 80, 160],
                        help="collection sizes (images)")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for the batched ingest path")
    parser.add_argument("--seed", type=int, default=1999)
    parser.add_argument("--epsilon", type=float, default=0.085)
    parser.add_argument("--smoke", action="store_true",
                        help="small fixed run; exit 1 when the batched "
                             "path is slower than serial or results "
                             "diverge (CI gate)")
    args = parser.parse_args()

    if args.smoke:
        args.sizes = [20]

    interleaved = build_collection(max(args.sizes), args.seed)
    query = render_scene("flowers", seed=866_866, name="query-866")

    failures: list[str] = []

    # ------------------------------------------------------------------
    # 1. Ingest throughput: serial-incremental vs. pooled+bulk.
    # ------------------------------------------------------------------
    size = max(args.sizes)
    serial_s, batched_s, identical, issues = compare_ingest(
        interleaved[:size], query, args.workers, args.epsilon)
    speedup = serial_s / batched_s if batched_s > 0 else float("inf")
    print_table(
        ["path", "images", "time (s)", "img/s"],
        [
            ["serial (incremental)", size, f"{serial_s:.2f}",
             f"{size / serial_s:.2f}"],
            [f"batched (workers={args.workers}, bulk)", size,
             f"{batched_s:.2f}", f"{size / batched_s:.2f}"],
        ],
        title="Ingest throughput",
    )
    print(f"speedup: {speedup:.2f}x   identical query results: "
          f"{'yes' if identical else 'NO'}   "
          f"verify: {'clean' if not issues else issues}")
    if not identical:
        failures.append("batched ingest diverged from serial")
    if issues:
        failures.append(f"bulk-built tree failed verify(): {issues}")
    if args.smoke and batched_s > serial_s * 1.10:
        failures.append(
            f"batched ingest slower than serial: {batched_s:.2f}s vs "
            f"{serial_s:.2f}s")

    # ------------------------------------------------------------------
    # 2. Bulk vs. incremental R*-tree construction (same regions).
    # ------------------------------------------------------------------
    incremental_s, bulk_s, tree_identical, tree_issues = compare_tree_build(
        interleaved[:size], query, args.epsilon)
    build_speedup = (incremental_s / bulk_s if bulk_s > 0 else float("inf"))
    print_table(
        ["build", "time (s)"],
        [
            ["incremental insert", f"{incremental_s:.3f}"],
            ["STR bulk load", f"{bulk_s:.3f}"],
        ],
        title="Index construction (extraction excluded)",
    )
    print(f"speedup: {build_speedup:.1f}x   identical probe results: "
          f"{'yes' if tree_identical else 'NO'}   "
          f"verify: {'clean' if not tree_issues else tree_issues}")
    if not tree_identical:
        failures.append("bulk-built tree probe results diverged")
    if tree_issues:
        failures.append(f"tree verify() reported: {tree_issues}")
    if bulk_s >= incremental_s:
        failures.append(
            f"bulk load not faster than incremental: {bulk_s:.3f}s vs "
            f"{incremental_s:.3f}s")

    # ------------------------------------------------------------------
    # 3. Query scaling (skipped in smoke mode).
    # ------------------------------------------------------------------
    if not args.smoke:
        rows = []
        for count in sorted(args.sizes):
            database = WalrusDatabase(RETRIEVAL_PARAMS)
            index_elapsed, _ = timed(database.add_images,
                                     interleaved[:count],
                                     bulk=True, workers=args.workers)
            result = database.query(query,
                                    QueryParameters(epsilon=args.epsilon))
            rows.append([
                count,
                database.region_count,
                f"{index_elapsed:.1f}",
                f"{index_elapsed / count:.2f}",
                f"{result.stats.elapsed_seconds:.2f}",
                result.stats.candidate_images,
            ])
        print_table(
            ["images", "regions", "index (s)", "s/image", "query (s)",
             "candidates"],
            rows,
            title="Scaling: cost vs. collection size",
        )
        per_image = [float(row[3]) for row in rows]
        print(f"\nshape check: per-image indexing cost ~constant "
              f"(extraction-dominated): min {min(per_image):.2f} "
              f"max {max(per_image):.2f} s/image -> "
              f"{'OK' if max(per_image) <= 3 * max(min(per_image), 0.01) else 'MISMATCH'}")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
