"""Scalability sweep: batched ingest, bulk loading and query cost.

The paper argues WALRUS "is practical to use even though it uses a
very general similarity model" (query times 5-20 s against 10000
images on 1997 hardware).  This harness measures three things:

1. **Ingest throughput** — the legacy serial path (per-image extract +
   per-region R*-tree insert) against the batched path
   (``add_images(workers=N)``: pooled extraction + one STR bulk-load
   pass).  Both paths must produce identical query results; the
   speedup is hardware-dependent (the pooled path degrades gracefully
   to serial extraction + bulk load on a single-CPU host).
2. **Bulk vs. incremental index build** — STR packing against repeated
   insertion over the *same* pre-extracted regions, with
   ``verify()`` run on both trees and query-result equality checked.
3. **Query scaling** — response time vs. collection size.

Usage::

    python benchmarks/run_scaling.py [--sizes 20 40 80 160] [--workers 4]
    python benchmarks/run_scaling.py --json bench.json  # also write the
                                               # instrumented series
                                               # (per-query EXPLAIN
                                               # counts and timings)
    python benchmarks/run_scaling.py --smoke   # CI gate, exits non-zero
                                               # when batched ingest is
                                               # slower than serial,
                                               # results diverge, the
                                               # EXPLAIN report is
                                               # inconsistent, or disabled
                                               # tracing costs >1% of a
                                               # query
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from harness_common import RETRIEVAL_PARAMS, print_table, timed
from repro.core.database import WalrusDatabase
from repro.core.parameters import QueryParameters
from repro.datasets.generator import DatasetSpec, generate_dataset, render_scene
from repro.imaging.image import Image
from repro.index.rstar import RStarTree
from repro.observability import Tracer

#: Span sites a single traced query passes through (client.request,
#: server.request, admission/session acquires, query + four stages),
#: rounded up — the overhead gate multiplies the per-span cost by this.
SPAN_SITES_PER_QUERY = 16


def build_collection(largest: int, seed: int) -> list[Image]:
    per_class = -(-largest // 10)
    dataset = generate_dataset(DatasetSpec(images_per_class=per_class,
                                           seed=seed))
    # Interleave classes so every prefix is class-balanced.
    interleaved = []
    for index in range(per_class):
        interleaved.extend(
            image for image, label in zip(dataset.images, dataset.labels)
            if image.name.endswith(f"{index:04d}")
        )
    return interleaved


def ranked_names(database: WalrusDatabase, query: Image,
                 epsilon: float) -> list[tuple[str, float]]:
    result = database.query(query, QueryParameters(epsilon=epsilon))
    return [(match.name, round(match.similarity, 12)) for match in result]


def explained_query(database: WalrusDatabase, query: Image,
                    epsilon: float) -> tuple[Any, dict[str, Any]]:
    """Run one EXPLAIN query; returns ``(result, instrumented_record)``.

    The record is JSON-ready: the report's deterministic counts plus
    per-stage wall-clock seconds.
    """
    result = database.query(query, QueryParameters(epsilon=epsilon),
                            explain=True)
    report = result.report
    record = dict(report.counts())
    record["total_seconds"] = report.total_seconds
    record["stage_seconds"] = {timing.name: timing.seconds
                               for timing in report.stages}
    return result, record


def check_explain_consistency(database: WalrusDatabase, query: Image,
                              epsilon: float) -> list[str]:
    """Cross-check the EXPLAIN report against itself and the stats.

    Two identical queries must report identical deterministic counts,
    the second must be served from the caches, and the report's funnel
    must agree with ``QueryStats``.
    """
    problems: list[str] = []
    first, _ = explained_query(database, query, epsilon)
    second, _ = explained_query(database, query, epsilon)
    r1, r2 = first.report, second.report
    ignore = {"signature_cache_hit", "probe_cache_hits",
              "probe_cache_misses", "probes_executed", "index_node_reads"}
    for key, value in r1.counts().items():
        if key not in ignore and r2.counts()[key] != value:
            problems.append(
                f"explain count {key} not deterministic: "
                f"{value} vs {r2.counts()[key]}")
    if not r2.signature_cache_hit:
        problems.append("repeat query missed the signature cache")
    if r2.probe.node_reads != 0:
        problems.append(
            f"repeat query read {r2.probe.node_reads} index nodes "
            "instead of hitting the probe cache")
    if r1.candidate_images != first.stats.candidate_images:
        problems.append("report candidate_images disagrees with stats")
    if r1.returned_images != len(first.matches):
        problems.append("report returned_images disagrees with matches")
    return problems


def compare_ingest(
        images: list[Image], query: Image, workers: int,
        epsilon: float) -> tuple[float, float, bool, list[str],
                                 WalrusDatabase]:
    """Serial-incremental vs. pooled+bulk ingest of the same images.

    Returns ``(serial_s, batched_s, identical_results, issues,
    batched_db)``; the batched database is handed back so later phases
    (the EXPLAIN consistency check) can reuse it without re-ingesting.
    """
    serial = WalrusDatabase(RETRIEVAL_PARAMS)
    serial_s, _ = timed(serial.add_images, images, bulk=False)

    batched = WalrusDatabase(RETRIEVAL_PARAMS)
    batched_s, _ = timed(batched.add_images, images,
                         bulk=True, workers=workers)

    issues = batched.index.verify()
    identical = (serial.region_count == batched.region_count
                 and ranked_names(serial, query, epsilon)
                 == ranked_names(batched, query, epsilon))
    return serial_s, batched_s, identical, issues, batched


def compare_tree_build(images: list[Image], query: Image,
                       epsilon: float
                       ) -> tuple[float, float, bool, list[str]]:
    """STR bulk load vs. repeated insertion over identical regions.

    Extraction is done once up front so only index construction is
    timed.  Returns ``(incremental_s, bulk_s, identical, issues)``.
    """
    reference = WalrusDatabase(RETRIEVAL_PARAMS)
    regions_per_image = [reference.extractor.extract(image)
                         for image in images]
    items = []
    for image_id, regions in enumerate(regions_per_image):
        items.extend((region.signature.to_rect(), (image_id, index))
                     for index, region in enumerate(regions))

    dims = RETRIEVAL_PARAMS.feature_dimensions
    incremental = RStarTree(dims)

    def insert_all():
        for rect, item in items:
            incremental.insert(rect, item)

    incremental_s, _ = timed(insert_all)
    bulk = RStarTree(dims)
    bulk_s, _ = timed(bulk.rebuild_bulk, items)

    issues = incremental.verify() + bulk.verify()
    probe = None
    for regions in regions_per_image:
        if regions:
            probe = regions[0].signature.to_rect().expand(epsilon)
            break
    identical = len(incremental) == len(bulk) == len(items)
    if probe is not None:
        identical = identical and (
            sorted(incremental.search(probe), key=repr)
            == sorted(bulk.search(probe), key=repr))
    return incremental_s, bulk_s, identical, issues


def measure_tracing_overhead(
        query_seconds: float) -> tuple[float, float, float]:
    """Cost of the instrumentation with the tracer *disabled*.

    Times a tight loop of disabled span enter/exits (the state every
    production process without ``--trace`` runs in) and scales the
    per-span cost to :data:`SPAN_SITES_PER_QUERY`.  Returns
    ``(per_span_s, per_query_s, ratio_of_query)``.
    """
    handle = Tracer(enabled=False).span

    def spin(count: int) -> None:
        for _ in range(count):
            with handle("bench"):
                pass

    spin(10_000)  # warm-up: interning, bytecode caches
    iterations = 200_000
    elapsed, _ = timed(spin, iterations)
    per_span = elapsed / iterations
    per_query = per_span * SPAN_SITES_PER_QUERY
    ratio = per_query / query_seconds if query_seconds > 0 else 0.0
    return per_span, per_query, ratio


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[20, 40, 80, 160],
                        help="collection sizes (images)")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for the batched ingest path")
    parser.add_argument("--seed", type=int, default=1999)
    parser.add_argument("--epsilon", type=float, default=0.085)
    parser.add_argument("--smoke", action="store_true",
                        help="small fixed run; exit 1 when the batched "
                             "path is slower than serial, results "
                             "diverge, or the EXPLAIN report is "
                             "inconsistent (CI gate)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the results (including the "
                             "instrumented per-query EXPLAIN series) "
                             "as JSON")
    args = parser.parse_args()

    if args.smoke:
        args.sizes = [20]

    interleaved = build_collection(max(args.sizes), args.seed)
    query = render_scene("flowers", seed=866_866, name="query-866")

    failures: list[str] = []

    # ------------------------------------------------------------------
    # 1. Ingest throughput: serial-incremental vs. pooled+bulk.
    # ------------------------------------------------------------------
    size = max(args.sizes)
    serial_s, batched_s, identical, issues, batched_db = compare_ingest(
        interleaved[:size], query, args.workers, args.epsilon)
    speedup = serial_s / batched_s if batched_s > 0 else float("inf")
    print_table(
        ["path", "images", "time (s)", "img/s"],
        [
            ["serial (incremental)", size, f"{serial_s:.2f}",
             f"{size / serial_s:.2f}"],
            [f"batched (workers={args.workers}, bulk)", size,
             f"{batched_s:.2f}", f"{size / batched_s:.2f}"],
        ],
        title="Ingest throughput",
    )
    print(f"speedup: {speedup:.2f}x   identical query results: "
          f"{'yes' if identical else 'NO'}   "
          f"verify: {'clean' if not issues else issues}")
    if not identical:
        failures.append("batched ingest diverged from serial")
    if issues:
        failures.append(f"bulk-built tree failed verify(): {issues}")
    if args.smoke and batched_s > serial_s * 1.10:
        failures.append(
            f"batched ingest slower than serial: {batched_s:.2f}s vs "
            f"{serial_s:.2f}s")

    # ------------------------------------------------------------------
    # 2. Bulk vs. incremental R*-tree construction (same regions).
    # ------------------------------------------------------------------
    incremental_s, bulk_s, tree_identical, tree_issues = compare_tree_build(
        interleaved[:size], query, args.epsilon)
    build_speedup = (incremental_s / bulk_s if bulk_s > 0 else float("inf"))
    print_table(
        ["build", "time (s)"],
        [
            ["incremental insert", f"{incremental_s:.3f}"],
            ["STR bulk load", f"{bulk_s:.3f}"],
        ],
        title="Index construction (extraction excluded)",
    )
    print(f"speedup: {build_speedup:.1f}x   identical probe results: "
          f"{'yes' if tree_identical else 'NO'}   "
          f"verify: {'clean' if not tree_issues else tree_issues}")
    if not tree_identical:
        failures.append("bulk-built tree probe results diverged")
    if tree_issues:
        failures.append(f"tree verify() reported: {tree_issues}")
    if bulk_s >= incremental_s:
        failures.append(
            f"bulk load not faster than incremental: {bulk_s:.3f}s vs "
            f"{incremental_s:.3f}s")

    # ------------------------------------------------------------------
    # 3. EXPLAIN self-consistency (the instrumented query path).
    # ------------------------------------------------------------------
    explain_problems = check_explain_consistency(batched_db, query,
                                                 args.epsilon)
    print(f"\nexplain consistency: "
          f"{'OK' if not explain_problems else 'PROBLEMS'}")
    for problem in explain_problems:
        print(f"  - {problem}")
    failures.extend(explain_problems)

    # ------------------------------------------------------------------
    # 4. Tracing overhead: a disabled span site must be free.
    # ------------------------------------------------------------------
    overhead_query = render_scene("flowers", seed=867_000, name="query-867")
    query_seconds, _ = timed(batched_db.query, overhead_query,
                             QueryParameters(epsilon=args.epsilon))
    per_span, per_query, ratio = measure_tracing_overhead(query_seconds)
    print_table(
        ["tracing disabled", "value"],
        [
            ["per-span enter/exit", f"{per_span * 1e9:.0f} ns"],
            [f"per query ({SPAN_SITES_PER_QUERY} sites)",
             f"{per_query * 1e6:.2f} us"],
            ["uncached query", f"{query_seconds:.3f} s"],
            ["overhead", f"{100.0 * ratio:.4f}%"],
        ],
        title="Tracing overhead (tracer disabled)",
    )
    if ratio > 0.01:
        failures.append(
            f"disabled tracing costs {100.0 * ratio:.2f}% of a query "
            "(budget: 1%)")

    # ------------------------------------------------------------------
    # 5. Query scaling (skipped in smoke mode).
    # ------------------------------------------------------------------
    instrumented_series = []
    if not args.smoke:
        rows = []
        for count in sorted(args.sizes):
            database = WalrusDatabase(RETRIEVAL_PARAMS)
            index_elapsed, _ = timed(database.add_images,
                                     interleaved[:count],
                                     bulk=True, workers=args.workers)
            result, record = explained_query(database, query, args.epsilon)
            record["images"] = count
            record["regions"] = database.region_count
            record["index_seconds"] = index_elapsed
            instrumented_series.append(record)
            rows.append([
                count,
                database.region_count,
                f"{index_elapsed:.1f}",
                f"{index_elapsed / count:.2f}",
                f"{result.stats.elapsed_seconds:.2f}",
                result.stats.candidate_images,
                record["index_node_reads"],
            ])
        print_table(
            ["images", "regions", "index (s)", "s/image", "query (s)",
             "candidates", "node reads"],
            rows,
            title="Scaling: cost vs. collection size",
        )
        per_image = [float(row[3]) for row in rows]
        print(f"\nshape check: per-image indexing cost ~constant "
              f"(extraction-dominated): min {min(per_image):.2f} "
              f"max {max(per_image):.2f} s/image -> "
              f"{'OK' if max(per_image) <= 3 * max(min(per_image), 0.01) else 'MISMATCH'}")

    if args.json is not None:
        _, smoke_record = explained_query(batched_db, query, args.epsilon)
        payload = {
            "sizes": sorted(args.sizes),
            "workers": args.workers,
            "seed": args.seed,
            "epsilon": args.epsilon,
            "ingest": {
                "images": size,
                "serial_seconds": serial_s,
                "batched_seconds": batched_s,
                "identical": identical,
            },
            "index_build": {
                "incremental_seconds": incremental_s,
                "bulk_seconds": bulk_s,
                "identical": tree_identical,
            },
            "explain": smoke_record,
            "scaling": instrumented_series,
            "failures": failures,
        }
        with open(args.json, "w") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
        print(f"\nwrote instrumented results to {args.json}")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
