"""Shared fixtures for the benchmark suite.

Expensive artifacts (the 256x256 benchmark image of Section 6.3, the
synthetic collection and its WALRUS index) are built once per session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import WalrusDatabase
from repro.imaging.image import Image
from repro.core.parameters import ExtractionParameters
from repro.datasets.generator import (DatasetSpec, SyntheticDataset,
                                      generate_dataset, render_scene)

#: Extraction parameters used by the retrieval benchmarks: the paper's
#: Section 6.4 settings except that windows span 16..64 (the general
#: multi-scale algorithm of Section 5.1) because the synthetic objects
#: cover a smaller fraction of the frame than the paper's query image.
BENCH_PARAMS = ExtractionParameters(window_min=16, window_max=64, stride=8,
                                    cluster_threshold=0.05,
                                    color_space="ycc")


@pytest.fixture(scope="session")
def bench_channel() -> np.ndarray:
    """The Section 6.3 workload: one 256x256 single-channel image."""
    return np.random.default_rng(1999).uniform(size=(256, 256))


@pytest.fixture(scope="session")
def bench_dataset() -> SyntheticDataset:
    """A misc-style collection: 10 classes x 12 images."""
    return generate_dataset(DatasetSpec(images_per_class=12, seed=1999))


@pytest.fixture(scope="session")
def bench_database(bench_dataset: SyntheticDataset) -> WalrusDatabase:
    """The collection indexed under :data:`BENCH_PARAMS`."""
    database = WalrusDatabase(BENCH_PARAMS)
    database.add_images(bench_dataset.images)
    return database


@pytest.fixture(scope="session")
def flower_query() -> Image:
    """A held-out flower query (the paper's image 866 role)."""
    return render_scene("flowers", seed=866_866, name="query-866")
