"""Robustness sweep: retrieval stability under image perturbations.

Section 1 claims robustness "with respect to resolution changes,
dithering effects, color shifts, orientation, size, and location".
This harness indexes a collection, then re-queries with perturbed
copies of otherwise in-distribution queries and reports precision@k
per perturbation, for WALRUS and for WBIIS (whose tolerance Jacobs et
al. and the paper describe as small).

Usage: python benchmarks/run_robustness.py
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from harness_common import (
    build_collection,
    build_database,
    print_table,
    standard_parser,
)
from repro.baselines.wbiis import WbiisRetriever
from repro.core.parameters import QueryParameters
from repro.datasets.generator import render_scene
from repro.evaluation.metrics import precision_at_k
from repro.imaging import transforms
from repro.imaging.image import Image


def perturbations() -> list[tuple[str, Callable[[Image], Image]]]:
    rng = np.random.default_rng(7)
    return [
        ("identity", lambda image: image),
        ("rescale 75%", lambda image: transforms.rescale(image, 0.75)),
        ("rescale 125%", lambda image: transforms.rescale(image, 1.25)),
        ("color shift +0.05R",
         lambda image: transforms.color_shift(image, (0.05, 0.0, 0.0))),
        ("brightness 90%",
         lambda image: transforms.brightness(image, 0.9)),
        ("dither noise",
         lambda image: transforms.dither_noise(image, rng, 2.0 / 255.0)),
        ("translate (16, 24)",
         lambda image: transforms.translate_content(
             image, 16, 24, fill=(0.5, 0.5, 0.5))),
        ("flip horizontal", transforms.flip_horizontal),
        ("quantize 16 levels", lambda image: transforms.quantize(image, 16)),
    ]


def main() -> None:
    parser = standard_parser(__doc__)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--epsilon", type=float, default=0.085)
    parser.add_argument("--queries-per-class", type=int, default=1)
    args = parser.parse_args()

    dataset = build_collection(args)
    database = build_database(dataset)
    wbiis = WbiisRetriever()
    wbiis.add_images(dataset.images)

    queries = []
    for label in dataset.spec.classes:
        for index in range(args.queries_per_class):
            queries.append((label, render_scene(
                label, seed=args.seed + 50_000 + index,
                name=f"rq-{label}-{index}")))

    rows = []
    for name, transform in perturbations():
        walrus_scores = []
        wbiis_scores = []
        for label, query in queries:
            perturbed = transform(query)
            relevant = dataset.relevant_names(label)
            ranked = database.query(
                perturbed, QueryParameters(epsilon=args.epsilon)).names()
            walrus_scores.append(precision_at_k(ranked, relevant, args.k))
            baseline = [n for n, _ in wbiis.rank(perturbed)]
            wbiis_scores.append(precision_at_k(baseline, relevant, args.k))
        rows.append([
            name,
            f"{sum(walrus_scores) / len(walrus_scores):.3f}",
            f"{sum(wbiis_scores) / len(wbiis_scores):.3f}",
        ])

    print_table(["perturbation", f"WALRUS P@{args.k}",
                 f"WBIIS P@{args.k}"], rows,
                title="Robustness: precision under query perturbations")

    identity = float(rows[0][1])
    worst = min(float(row[1]) for row in rows[:6])  # photometric rows
    print(f"\nshape check: WALRUS keeps >= 70% of its clean precision "
          f"under photometric perturbations: "
          f"{'OK' if worst >= 0.7 * identity else 'MISMATCH'} "
          f"(clean {identity:.3f}, worst photometric {worst:.3f})")


if __name__ == "__main__":
    main()
