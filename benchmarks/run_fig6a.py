"""Figure 6(a): signature computation time vs. sliding-window size.

Paper: 256x256 image, 2x2 signatures, stride 1, windows 2..128;
naive grows ~quadratically in the window side, DP ~logarithmically,
naive/DP ~= 17x at window 128 (Sun Ultra-2; our ratio is larger
because the DP vectorizes better in numpy than the naive loop did in
C, but the *shape* — who wins and how each curve grows — is the
claim under test).

Usage: python benchmarks/run_fig6a.py [--max-window 128]
"""

from __future__ import annotations

import argparse

import numpy as np

from harness_common import print_table, timed
from repro.wavelets.sliding import (
    dp_sliding_signatures,
    naive_window_signatures,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-window", type=int, default=128)
    parser.add_argument("--image-size", type=int, default=256)
    args = parser.parse_args()

    channel = np.random.default_rng(1999).uniform(
        size=(args.image_size, args.image_size))

    rows = []
    window = 2
    while window <= args.max_window:
        naive_elapsed, _ = timed(naive_window_signatures, channel,
                                 w=window, s=2, stride=1)
        dp_elapsed, _ = timed(dp_sliding_signatures, channel, s=2,
                              w_max=window, stride=1)
        rows.append([window, f"{naive_elapsed:.3f}", f"{dp_elapsed:.3f}",
                     f"{naive_elapsed / dp_elapsed:.1f}x"])
        window *= 2

    print_table(
        ["window", "naive (s)", "dynamic programming (s)", "naive/DP"],
        rows,
        title="Figure 6(a): wavelet signature time vs. window size "
              f"({args.image_size}x{args.image_size}, s=2, stride 1)",
    )
    last = rows[-1]
    ratio = float(last[3].rstrip("x"))
    print(f"\nshape check: naive/DP at window {last[0]} = {ratio:.1f}x "
          f"(paper: ~17x)  ->  {'OK' if ratio > 10 else 'MISMATCH'}")


if __name__ == "__main__":
    main()
