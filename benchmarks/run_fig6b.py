"""Figure 6(b): signature computation time vs. signature size.

Paper: 256x256 image, fixed 128x128 windows, stride 1, signature
sizes 2..32; naive is ~flat (~25s on their hardware), DP grows with
``s^2`` but remains ~5x faster even at s = 32.

Usage: python benchmarks/run_fig6b.py [--max-signature 32]
"""

from __future__ import annotations

import argparse

import numpy as np

from harness_common import print_table, timed
from repro.wavelets.sliding import (
    dp_sliding_signatures,
    naive_window_signatures,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-signature", type=int, default=32)
    parser.add_argument("--window", type=int, default=128)
    parser.add_argument("--image-size", type=int, default=256)
    args = parser.parse_args()

    channel = np.random.default_rng(1999).uniform(
        size=(args.image_size, args.image_size))

    rows = []
    s = 2
    while s <= args.max_signature:
        naive_elapsed, _ = timed(naive_window_signatures, channel,
                                 w=args.window, s=s, stride=1)
        dp_elapsed, _ = timed(dp_sliding_signatures, channel, s=s,
                              w_max=args.window, stride=1)
        rows.append([s, f"{naive_elapsed:.3f}", f"{dp_elapsed:.3f}",
                     f"{naive_elapsed / dp_elapsed:.1f}x"])
        s *= 2

    print_table(
        ["signature", "naive (s)", "dynamic programming (s)", "naive/DP"],
        rows,
        title="Figure 6(b): wavelet signature time vs. signature size "
              f"(window {args.window}, stride 1)",
    )
    naive_times = [float(row[1]) for row in rows]
    # "Flat" means no systematic growth with s; allow generous slack for
    # scheduler noise (each point is a single multi-second measurement).
    flat = max(naive_times) / max(min(naive_times), 1e-9) < 2.5
    last_ratio = float(rows[-1][3].rstrip("x"))
    print(f"\nshape checks: naive flat in s -> "
          f"{'OK' if flat else 'MISMATCH'}; "
          f"DP still faster at s={rows[-1][0]} "
          f"({last_ratio:.1f}x, paper: ~5x) -> "
          f"{'OK' if last_ratio > 1 else 'MISMATCH'}")


if __name__ == "__main__":
    main()
