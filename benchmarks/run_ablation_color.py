"""Ablation: working color space (YCC vs RGB vs YIQ vs HSV).

The paper presents YCC results "due to the lack of space" and defers
other color spaces to the technical report [NRS98]; Section 6.6 notes
RGB produces ~4x the regions of YCC.  This harness completes the
picture: retrieval quality, index size and query cost per space on the
same collection.

Usage: python benchmarks/run_ablation_color.py
"""

from __future__ import annotations

from harness_common import (
    RETRIEVAL_PARAMS,
    build_collection,
    build_database,
    print_table,
    standard_parser,
)
from repro.core.parameters import QueryParameters
from repro.evaluation.harness import (
    evaluate_retriever,
    make_queries,
    walrus_ranker,
)

SPACES = ("ycc", "rgb", "yiq", "hsv")


def main() -> None:
    parser = standard_parser(__doc__)
    parser.add_argument("--epsilon", type=float, default=0.085)
    parser.add_argument("--k", type=int, default=10)
    args = parser.parse_args()

    dataset = build_collection(args)
    queries = make_queries(dataset, per_class=1)

    rows = []
    region_counts = {}
    for space in SPACES:
        database = build_database(
            dataset, RETRIEVAL_PARAMS.with_(color_space=space))
        region_counts[space] = database.region_count
        evaluation = evaluate_retriever(
            space, walrus_ranker(database,
                                 QueryParameters(epsilon=args.epsilon)),
            dataset, queries, k=args.k)
        rows.append([
            space,
            database.region_count,
            f"{evaluation.mean_precision:.3f}",
            f"{evaluation.mean_ap:.3f}",
            f"{evaluation.mean_seconds:.2f}",
        ])

    print_table(
        ["color space", "regions", f"P@{args.k}", "mAP", "s/query"],
        rows,
        title="Ablation: working color space",
    )
    print(f"\nshape check (Section 6.6: RGB more fragmented than YCC): "
          f"RGB {region_counts['rgb']} vs YCC {region_counts['ycc']} "
          f"regions -> "
          f"{'OK' if region_counts['rgb'] >= region_counts['ycc'] else 'MISMATCH'}")


if __name__ == "__main__":
    main()
