"""Chaos/load harness for the ``walrus serve`` query daemon.

Launches the daemon as a real subprocess (the same way an operator
would), drives it with concurrent clients, and asserts the robustness
contract end to end:

* **Correctness under faults** — every non-degraded answer must equal
  the answer a quiesced, unfaulted in-process database gives for the
  same image.  Zero tolerance: one wrong answer fails the run.
* **Bounded latency** — the p99 of successful queries must stay under
  ``--p99-limit`` even with injected slow reads.
* **Deadline promptness** — queries sent with a budget the server
  cannot meet must come back ``504`` with a server-side elapsed time
  within ``2x`` the budget (the deadline is checked down in the
  R*-tree and matcher loops, not just between requests).
* **Structured overload** — a burst beyond the admission capacity
  must shed with JSON ``503`` + ``Retry-After``, never by hanging or
  crashing.
* **Clean drain** — SIGTERM must exit ``0`` after printing the
  ``drained`` summary line; the process must never die on its own.

Run ``--smoke --faults`` for the CI-sized chaos pass; a JSON summary
is printed either way and the exit status is non-zero on any
violation.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters
from repro.datasets.generator import DatasetSpec, generate_dataset
from repro.exceptions import DeadlineExceededError, ServerError
from repro.imaging.codecs import read_image, write_image
from repro.server import RetryPolicy, WalrusClient

#: Small multi-scale windows: fast enough for a CI minute, slow
#: enough that a sub-latency budget genuinely expires mid-query.
SERVE_PARAMS = ExtractionParameters(window_min=16, window_max=32,
                                    stride=8, cluster_threshold=0.05)


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="load/chaos harness for `walrus serve`")
    parser.add_argument("--smoke", action="store_true",
                        help="CI sizing: small collection, short phases")
    parser.add_argument("--faults", action="store_true",
                        help="mount the fault-injecting page store "
                             "(slow reads + transient read errors)")
    parser.add_argument("--images-per-class", type=int, default=None,
                        help="collection size per class "
                             "(default: 2 smoke / 6 full)")
    parser.add_argument("--queries", type=int, default=None,
                        help="correctness-phase queries "
                             "(default: 24 smoke / 120 full)")
    parser.add_argument("--threads", type=int, default=4,
                        help="concurrent load clients (default: 4)")
    parser.add_argument("--sessions", type=int, default=2,
                        help="server reader sessions (default: 2)")
    parser.add_argument("--p99-limit", type=float, default=10.0,
                        help="p99 latency bound, seconds (default: 10)")
    parser.add_argument("--seed", type=int, default=1999)
    return parser.parse_args(argv)


def build_database(directory: str, seed: int,
                   images_per_class: int) -> list:
    """Create the serving database; returns the dataset's images."""
    dataset = generate_dataset(DatasetSpec(
        images_per_class=images_per_class, seed=seed))
    with WalrusDatabase.create(directory, params=SERVE_PARAMS) as database:
        database.add_images(dataset.images, bulk=True)
    return dataset.images


def reference_answers(directory: str,
                      probe_paths: list[str]) -> tuple[list[list], float]:
    """Quiesced, unfaulted ground truth for each probe image.

    Decodes the probes from the same on-disk files the clients will
    send (codec quantization must hit both sides identically).
    Returns the answers plus the median *uncached* single-query
    latency — the yardstick for the deadline phase's budget.
    """
    answers = []
    timings = []
    with WalrusDatabase.open(directory, readonly=True) as database:
        for path in probe_paths:
            image = read_image(path)
            started = time.perf_counter()
            result = database.query(image)
            timings.append(time.perf_counter() - started)
            answers.append([
                [match.image_id, match.name,
                 round(match.similarity, 9)]
                for match in result.matches])
    return answers, statistics.median(timings)


class ServerProcess:
    """A ``walrus serve`` subprocess plus the parsed bound URL."""

    def __init__(self, database_dir: str, *, sessions: int,
                 faults: bool) -> None:
        # Degradation is disabled (--degrade-at 99): this harness
        # compares every answer byte-for-byte with the unfaulted
        # reference, and a region-capped answer is legitimately
        # different.  The degradation path has its own unit tests.
        command = [sys.executable, "-m", "repro.cli", "serve",
                   database_dir, "--port", "0",
                   "--sessions", str(sessions),
                   "--max-queue", "2",
                   "--queue-timeout", "0.2",
                   "--retry-after", "0.1",
                   "--degrade-at", "99.0"]
        if faults:
            command += ["--fault-read-delay", "0.02",
                        "--fault-read-delay-rate", "0.05",
                        "--fault-read-error-rate", "0.02",
                        "--fault-seed", "7"]
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", environment.get("PYTHONPATH", "")) if p)
        environment["PYTHONUNBUFFERED"] = "1"
        self.process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=environment)
        self.url = self._await_banner()

    def _await_banner(self) -> str:
        assert self.process.stdout is not None
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                raise ServerError(
                    "server exited before announcing its address "
                    f"(returncode {self.process.poll()})")
            if "serving queries on " in line:
                return line.split("serving queries on ", 1)[1].split()[0]
        raise ServerError("server never printed its banner")

    def alive(self) -> bool:
        return self.process.poll() is None

    def drain(self) -> tuple[int, str]:
        """SIGTERM, wait, return ``(returncode, remaining stdout)``."""
        self.process.send_signal(signal.SIGTERM)
        try:
            output, _ = self.process.communicate(timeout=60.0)
        except subprocess.TimeoutExpired:
            self.process.kill()
            output, _ = self.process.communicate()
            return -9, output or ""
        return self.process.returncode, output or ""

    def kill(self) -> None:
        if self.alive():
            self.process.kill()
            self.process.communicate()


def correctness_phase(url: str, probe_paths: list[str],
                      expected: list[list], *, queries: int,
                      threads: int) -> dict:
    """Hammer the server; compare every clean answer to ground truth."""
    latencies: list[float] = []
    counters = {"ok": 0, "wrong": 0, "degraded": 0, "failed": 0}
    lock = threading.Lock()

    def worker(worker_index: int) -> None:
        client = WalrusClient(url, retry=RetryPolicy(
            attempts=8, base_delay_seconds=0.05, max_delay_seconds=0.5,
            budget_seconds=60.0, seed=worker_index))
        for step in range(queries // threads):
            probe = (worker_index + step) % len(probe_paths)
            started = time.perf_counter()
            try:
                payload = client.query(probe_paths[probe])
            except ServerError:
                with lock:
                    counters["failed"] += 1
                continue
            elapsed = time.perf_counter() - started
            answer = [[m["image_id"], m["name"],
                       round(m["similarity"], 9)]
                      for m in payload["matches"]]
            with lock:
                latencies.append(elapsed)
                if payload.get("degraded"):
                    counters["degraded"] += 1  # capped: not comparable
                elif answer != expected[probe]:
                    counters["wrong"] += 1
                else:
                    counters["ok"] += 1

    pool = [threading.Thread(target=worker, args=(i,))
            for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    latencies.sort()
    summary = dict(counters)
    if latencies:
        summary["p50_seconds"] = round(statistics.median(latencies), 4)
        summary["p99_seconds"] = round(
            latencies[min(len(latencies) - 1,
                          int(0.99 * len(latencies)))], 4)
    return summary


def deadline_phase(url: str, fresh_paths: list[str],
                   uncached_seconds: float) -> dict:
    """Budgets the server cannot meet must abort within 2x budget.

    Uses *fresh* images the server has never extracted, so the
    signature cache cannot make the work fit the budget, and sizes
    the budget at a fraction of the measured uncached latency.
    """
    budget = min(5.0, max(0.02, 0.4 * uncached_seconds))
    client = WalrusClient(url, retry=RetryPolicy(
        attempts=1, base_delay_seconds=0.05, max_delay_seconds=0.1,
        budget_seconds=30.0, seed=0))
    summary = {"budget_seconds": round(budget, 4), "aborted": 0,
               "completed": 0, "late_aborts": 0, "failed": 0,
               "worst_abort_seconds": 0.0}
    for path in fresh_paths:
        try:
            client.query(path, budget_seconds=budget)
            summary["completed"] += 1
        except DeadlineExceededError as error:
            summary["aborted"] += 1
            summary["worst_abort_seconds"] = round(
                max(summary["worst_abort_seconds"],
                    error.elapsed_seconds), 4)
            if error.elapsed_seconds > 2.0 * budget:
                summary["late_aborts"] += 1
        except ServerError:
            summary["failed"] += 1
    return summary


def overload_phase(url: str, probe_path: str, *, threads: int) -> dict:
    """A one-try burst past capacity must shed with structured 503s.

    Raw (non-retrying) POSTs so the 503 body and ``Retry-After``
    header are observable; each request is a batch, which holds its
    admission slot long enough for the burst to pile up.
    """
    body = WalrusClient.encode_image(probe_path)
    envelope = json.dumps({"queries": [body] * 8}).encode("utf-8")
    summary = {"ok": 0, "shed_503": 0, "retry_after_present": 0,
               "other_errors": 0}
    lock = threading.Lock()

    def worker(index: int) -> None:
        request = urllib.request.Request(
            url + "/query/batch", data=envelope,
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=30.0):
                with lock:
                    summary["ok"] += 1
        except urllib.error.HTTPError as error:
            payload = {}
            try:
                payload = json.loads(error.read())
            except (json.JSONDecodeError, UnicodeDecodeError):
                pass
            with lock:
                if error.code == 503 \
                        and payload.get("error") == "overloaded":
                    summary["shed_503"] += 1
                    if error.headers.get("Retry-After") is not None:
                        summary["retry_after_present"] += 1
                else:
                    summary["other_errors"] += 1
        except urllib.error.URLError:
            with lock:
                summary["other_errors"] += 1

    pool = [threading.Thread(target=worker, args=(i,))
            for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return summary


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    images_per_class = args.images_per_class \
        or (2 if args.smoke else 6)
    queries = args.queries or (24 if args.smoke else 120)

    violations: list[str] = []
    with tempfile.TemporaryDirectory(prefix="walrus-load-") as workdir:
        database_dir = os.path.join(workdir, "db")
        print(f"# building collection ({images_per_class}/class, "
              f"seed {args.seed})", flush=True)
        images = build_database(database_dir, args.seed, images_per_class)

        probes = images[::max(1, len(images) // 6)][:6]
        probe_paths = []
        for index, image in enumerate(probes):
            path = os.path.join(workdir, f"probe{index}.ppm")
            write_image(image, path)
            probe_paths.append(path)
        # A second, differently-seeded collection: images the server
        # has never seen, so deadline-phase extractions are uncached.
        fresh = generate_dataset(DatasetSpec(
            images_per_class=1, seed=args.seed + 1)).images[:6]
        fresh_paths = []
        for index, image in enumerate(fresh):
            path = os.path.join(workdir, f"fresh{index}.ppm")
            write_image(image, path)
            fresh_paths.append(path)
        print(f"# computing reference answers for {len(probes)} probes",
              flush=True)
        expected, uncached_seconds = reference_answers(database_dir,
                                                       probe_paths)

        print(f"# launching daemon (sessions={args.sessions}, "
              f"faults={args.faults})", flush=True)
        server = ServerProcess(database_dir, sessions=args.sessions,
                               faults=args.faults)
        try:
            correctness = correctness_phase(
                server.url, probe_paths, expected,
                queries=queries, threads=args.threads)
            if not server.alive():
                violations.append("server died during the load phase")
            deadline = deadline_phase(server.url, fresh_paths,
                                      uncached_seconds)
            overload = overload_phase(server.url, probe_paths[0],
                                      threads=max(8, 4 * args.sessions))
            if not server.alive():
                violations.append("server died during the chaos phases")
            returncode, tail = server.drain()
        finally:
            server.kill()

    if correctness["wrong"]:
        violations.append(
            f"{correctness['wrong']} answers differed from the "
            f"unfaulted reference")
    if correctness["ok"] == 0:
        violations.append("no query succeeded in the load phase")
    p99 = correctness.get("p99_seconds")
    if p99 is not None and p99 > args.p99_limit:
        violations.append(
            f"p99 {p99}s exceeds the {args.p99_limit}s bound")
    if deadline["aborted"] and deadline["late_aborts"]:
        violations.append(
            f"{deadline['late_aborts']} deadline aborts took longer "
            f"than 2x the budget")
    if deadline["aborted"] == 0:
        violations.append(
            "deadline phase produced no 504 aborts (budget "
            f"{deadline['budget_seconds']}s was met?)")
    if overload["shed_503"] == 0:
        violations.append("overload burst produced no structured 503")
    if returncode != 0:
        violations.append(
            f"SIGTERM drain exited {returncode}, want 0")
    if "drained" not in tail:
        violations.append("drain summary line missing from stdout")

    report = {
        "faults": args.faults,
        "smoke": args.smoke,
        "correctness": correctness,
        "deadline": deadline,
        "overload": overload,
        "drain": {"returncode": returncode,
                  "summary_line": next(
                      (line for line in tail.splitlines()
                       if "drained" in line), None)},
        "violations": violations,
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    if violations:
        print(f"FAIL: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("# all robustness assertions held", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
