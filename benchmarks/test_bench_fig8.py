"""Figures 7/8: retrieval quality and cost, WALRUS vs. the baselines.

The paper shows the top-14 grids for WBIIS (7/14 related) and WALRUS
(13-14/14 related) on the flower query.  ``run_fig7_fig8.py`` prints
the quantified comparison (precision@14 per retriever); these
benchmarks time one query of each system against the same indexed
collection and attach its precision@14 to the benchmark record.
"""

from __future__ import annotations

from typing import Any

import pytest

from repro.baselines.histogram import HistogramRetriever
from repro.baselines.jacobs import JacobsRetriever
from repro.baselines.wbiis import WbiisRetriever
from repro.core.parameters import QueryParameters
from repro.evaluation.metrics import precision_at_k


@pytest.fixture(scope="module")
def relevant(bench_dataset: Any) -> set[str]:
    return bench_dataset.relevant_names("flowers")


def test_walrus_query(benchmark: Any, bench_database: Any,
                      bench_dataset: Any, flower_query: Any,
                      relevant: set[str]) -> None:
    params = QueryParameters(epsilon=0.085)
    result = benchmark.pedantic(
        bench_database.query, args=(flower_query, params),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["precision_at_14"] = round(
        precision_at_k(result.names(), relevant, 14), 3)


@pytest.mark.parametrize("retriever_cls", [WbiisRetriever, JacobsRetriever,
                                           HistogramRetriever])
def test_baseline_query(benchmark: Any, bench_dataset: Any,
                        flower_query: Any, relevant: set[str],
                        retriever_cls: type) -> None:
    retriever = retriever_cls()
    retriever.add_images(bench_dataset.images)
    ranked = benchmark.pedantic(
        retriever.rank, args=(flower_query,),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    names = [name for name, _ in ranked]
    benchmark.extra_info["precision_at_14"] = round(
        precision_at_k(names, relevant, 14), 3)


def test_walrus_indexing_throughput(benchmark: Any,
                                    bench_dataset: Any) -> None:
    """Time to extract+index one image (the paper's indexing phase)."""
    from repro.core.database import WalrusDatabase

    from conftest import BENCH_PARAMS

    images = bench_dataset.images[:8]

    def index_batch():
        database = WalrusDatabase(BENCH_PARAMS)
        database.add_images(images)
        return database

    database = benchmark.pedantic(index_batch, rounds=2, iterations=1,
                                  warmup_rounds=0)
    benchmark.extra_info["regions_per_image"] = round(
        database.region_count / len(images), 1)
