"""Figures 7/8: retrieval quality, WALRUS vs. single-signature systems.

Paper: for the flower query (image 866), WBIIS returns 7/14
semantically related images (Figure 7) while WALRUS returns 13-14/14
(Figure 8).  With the synthetic collection's class labels, "related"
is exact, so the figures become precision@14 numbers.  Queries are
held-out renders (never pixel-identical to database images), with the
object translated/rescaled — the variation the paper's similarity
model targets.

Usage: python benchmarks/run_fig7_fig8.py [--images-per-class 14]
                                          [--queries-per-class 2]
"""

from __future__ import annotations

from harness_common import (
    RETRIEVAL_PARAMS,
    build_collection,
    build_database,
    print_table,
    standard_parser,
    timed,
)
from repro.baselines.histogram import HistogramRetriever
from repro.baselines.jacobs import JacobsRetriever
from repro.baselines.wbiis import WbiisRetriever
from repro.core.parameters import QueryParameters
from repro.evaluation.harness import (
    baseline_ranker,
    evaluate_retriever,
    make_queries,
    walrus_ranker,
)


def _write_figures(dataset, database, wbiis, epsilon: float,
                   directory: str) -> None:
    """Render fig7.ppm / fig8.ppm — the paper's actual artifacts."""
    import os

    from repro.datasets.generator import render_scene
    from repro.imaging.codecs import write_image
    from repro.imaging.montage import result_sheet

    os.makedirs(directory, exist_ok=True)
    by_name = {image.name: image for image in dataset.images}
    query = render_scene("flowers", seed=866_866, name="query-866")

    wbiis_names = [name for name, _ in wbiis.rank(query, k=14)]
    write_image(result_sheet(query, [by_name[n] for n in wbiis_names]),
                os.path.join(directory, "fig7_wbiis.ppm"))

    walrus_names = database.query(
        query, QueryParameters(epsilon=epsilon,
                               max_results=14)).names()
    write_image(result_sheet(query, [by_name[n] for n in walrus_names]),
                os.path.join(directory, "fig8_walrus.ppm"))
    print(f"# wrote fig7_wbiis.ppm / fig8_walrus.ppm to {directory}")


def main() -> None:
    parser = standard_parser(__doc__)
    parser.add_argument("--queries-per-class", type=int, default=2)
    parser.add_argument("--k", type=int, default=14)
    parser.add_argument("--epsilon", type=float, default=0.085)
    parser.add_argument("--figures-dir", default=None,
                        help="also render fig7/fig8 contact sheets "
                             "(PPM) into this directory")
    args = parser.parse_args()

    dataset = build_collection(args)
    database = build_database(dataset, RETRIEVAL_PARAMS)

    rankers = {
        "WALRUS (fig 8)": walrus_ranker(
            database, QueryParameters(epsilon=args.epsilon)),
    }
    for name, retriever in (("WBIIS (fig 7)", WbiisRetriever()),
                            ("Jacobs-Haar [JFS95]", JacobsRetriever()),
                            ("Color histogram [Nib93]",
                             HistogramRetriever())):
        elapsed, _ = timed(retriever.add_images, dataset.images)
        print(f"# indexed {name} in {elapsed:.1f}s")
        rankers[name] = baseline_ranker(retriever)

    queries = make_queries(dataset, per_class=args.queries_per_class)
    evaluations = {
        name: evaluate_retriever(name, rank, dataset, queries, k=args.k)
        for name, rank in rankers.items()
    }

    rows = [
        [name,
         f"{evaluation.mean_precision:.3f}",
         f"{evaluation.by_label().get('flowers', 0.0):.3f}",
         f"{evaluation.mean_ap:.3f}",
         f"{evaluation.mean_seconds:.2f}"]
        for name, evaluation in evaluations.items()
    ]
    print_table(
        ["retriever", f"P@{args.k} (all)", f"P@{args.k} (flowers)",
         "mAP", "s/query"],
        rows,
        title="Figures 7/8 quantified: precision at the paper's top-14",
    )

    if args.figures_dir:
        wbiis_retriever = WbiisRetriever()
        wbiis_retriever.add_images(dataset.images)
        _write_figures(dataset, database, wbiis_retriever, args.epsilon,
                       args.figures_dir)

    walrus_flowers = evaluations["WALRUS (fig 8)"].by_label()["flowers"]
    wbiis_flowers = evaluations["WBIIS (fig 7)"].by_label()["flowers"]
    print(f"\nshape check (paper: WALRUS ~13/14 = 0.93 vs WBIIS 7/14 = "
          f"0.50 on the flower query): WALRUS {walrus_flowers:.3f} vs "
          f"WBIIS {wbiis_flowers:.3f} -> "
          f"{'OK' if walrus_flowers > wbiis_flowers else 'MISMATCH'}")


if __name__ == "__main__":
    main()
