"""Ablation: fixed 64x64 windows vs. multi-scale window ranges.

Section 6.4 fixes the sliding-window size to 64x64 (their query's
flower bunch was large); Section 5.1's general algorithm slides
windows of every dyadic size in a range.  This harness measures what
the window range buys on a collection whose objects vary in size —
quality up, indexing cost up.

Usage: python benchmarks/run_ablation_windows.py
"""

from __future__ import annotations

from harness_common import (
    RETRIEVAL_PARAMS,
    build_collection,
    print_table,
    standard_parser,
    timed,
)
from repro.core.database import WalrusDatabase
from repro.core.parameters import QueryParameters
from repro.evaluation.harness import (
    evaluate_retriever,
    make_queries,
    walrus_ranker,
)

VARIANTS = (
    ("64 fixed (paper 6.4)", 64, 64),
    ("32..64", 32, 64),
    ("16..64 (default)", 16, 64),
    ("8..64", 8, 64),
)


def main() -> None:
    parser = standard_parser(__doc__)
    parser.add_argument("--epsilon", type=float, default=0.085)
    parser.add_argument("--k", type=int, default=10)
    args = parser.parse_args()

    dataset = build_collection(args)
    queries = make_queries(dataset, per_class=1)

    rows = []
    for label, window_min, window_max in VARIANTS:
        params = RETRIEVAL_PARAMS.with_(window_min=window_min,
                                        window_max=window_max)
        database = WalrusDatabase(params)
        index_elapsed, _ = timed(database.add_images, dataset.images)
        evaluation = evaluate_retriever(
            label, walrus_ranker(database,
                                 QueryParameters(epsilon=args.epsilon)),
            dataset, queries, k=args.k)
        rows.append([
            label,
            database.region_count,
            f"{index_elapsed:.1f}",
            f"{evaluation.mean_precision:.3f}",
            f"{evaluation.by_label().get('flowers', 0.0):.3f}",
            f"{evaluation.mean_seconds:.2f}",
        ])

    print_table(
        ["windows", "regions", "index (s)", f"P@{args.k}",
         f"P@{args.k} flowers", "s/query"],
        rows,
        title="Ablation: sliding-window size range",
    )


if __name__ == "__main__":
    main()
