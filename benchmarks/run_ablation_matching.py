"""Ablation: quick union vs. greedy one-to-one vs. exact matching.

Section 5.5 motivates the greedy heuristic (the quick metric can
inflate similarity when one query region matches many target regions)
and proves the exact problem NP-hard.  This harness measures, on real
query/target pairs: (a) how much similarity the one-to-one constraint
removes, (b) how close greedy gets to exact on instances small enough
to solve, and (c) the cost of each matcher.

Usage: python benchmarks/run_ablation_matching.py
"""

from __future__ import annotations

import time

from harness_common import (
    build_collection,
    build_database,
    print_table,
    standard_parser,
)
from repro.core.matching import exact_match, greedy_match, quick_match
from repro.core.parameters import QueryParameters
from repro.datasets.generator import render_scene


def main() -> None:
    parser = standard_parser(__doc__)
    parser.add_argument("--epsilon", type=float, default=0.085)
    args = parser.parse_args()

    dataset = build_collection(args)
    database = build_database(dataset)
    query = render_scene("flowers", seed=866_866, name="query-866")

    query_regions = database.extractor.extract(query)
    pairs_by_image = database._probe(
        query_regions, QueryParameters(epsilon=args.epsilon))

    rows = []
    greedy_vs_exact = []
    stats = {"quick": 0.0, "greedy": 0.0, "exact": 0.0}
    solved_exactly = 0
    for image_id, pairs in sorted(pairs_by_image.items()):
        target = database.images[image_id]
        started = time.perf_counter()
        quick = quick_match(query_regions, target.regions, pairs)
        stats["quick"] += time.perf_counter() - started

        started = time.perf_counter()
        greedy = greedy_match(query_regions, target.regions, pairs)
        stats["greedy"] += time.perf_counter() - started

        exact_similarity = None
        if len(set(pairs)) <= 12:
            started = time.perf_counter()
            exact = exact_match(query_regions, target.regions, pairs)
            stats["exact"] += time.perf_counter() - started
            exact_similarity = exact.similarity
            solved_exactly += 1
            if exact.similarity > 0:
                greedy_vs_exact.append(greedy.similarity / exact.similarity)

        rows.append([
            target.name, len(pairs),
            f"{quick.similarity:.3f}",
            f"{greedy.similarity:.3f}",
            "-" if exact_similarity is None else f"{exact_similarity:.3f}",
        ])

    print_table(["target", "pairs", "quick", "greedy", "exact"],
                rows[:20],
                title="Ablation: matching algorithm per candidate image "
                      "(first 20)")
    print(f"\ncandidates: {len(rows)}; solved exactly: {solved_exactly}")
    if greedy_vs_exact:
        worst = min(greedy_vs_exact)
        print(f"greedy/exact similarity ratio: worst {worst:.3f}, "
              f"mean {sum(greedy_vs_exact) / len(greedy_vs_exact):.3f} "
              f"(1.0 = greedy optimal)")
    print("total matcher time: "
          + ", ".join(f"{name} {elapsed:.3f}s"
                      for name, elapsed in stats.items()))


if __name__ == "__main__":
    main()
