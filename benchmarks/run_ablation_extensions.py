"""Ablation: the optional extension knobs (merge factor, refined phase).

Two mechanisms beyond the paper's Section 6.4 defaults:

* ``merge_factor`` — BIRCH phase-3-style agglomeration of fragmented
  subclusters; fewer, larger regions -> smaller index and faster
  queries, at some risk of blending adjacent textures.
* ``refine_signature_size`` + ``refine_epsilon`` — Section 5.5's
  refined matching phase; detailed 8x8 signatures re-check the coarse
  candidate pairs, trading a little query time for selectivity.

Usage: python benchmarks/run_ablation_extensions.py
"""

from __future__ import annotations

from harness_common import (
    RETRIEVAL_PARAMS,
    build_collection,
    build_database,
    print_table,
    standard_parser,
)
from repro.core.parameters import QueryParameters
from repro.evaluation.harness import (
    evaluate_retriever,
    make_queries,
    walrus_ranker,
)

VARIANTS = (
    ("baseline", {}, {}),
    ("merge x1.5", {"merge_factor": 1.5}, {}),
    ("merge x2.5", {"merge_factor": 2.5}, {}),
    ("refined 8x8, eps_r=0.25",
     {"refine_signature_size": 8}, {"refine_epsilon": 0.25}),
    ("refined 8x8, eps_r=0.15",
     {"refine_signature_size": 8}, {"refine_epsilon": 0.15}),
)


def main() -> None:
    parser = standard_parser(__doc__)
    parser.add_argument("--epsilon", type=float, default=0.085)
    parser.add_argument("--k", type=int, default=10)
    args = parser.parse_args()

    dataset = build_collection(args)
    queries = make_queries(dataset, per_class=1)

    rows = []
    for label, extraction_overrides, query_overrides in VARIANTS:
        database = build_database(
            dataset, RETRIEVAL_PARAMS.with_(**extraction_overrides))
        query_params = QueryParameters(epsilon=args.epsilon,
                                       **query_overrides)
        evaluation = evaluate_retriever(
            label, walrus_ranker(database, query_params), dataset,
            queries, k=args.k)
        rows.append([
            label,
            database.region_count,
            f"{evaluation.mean_precision:.3f}",
            f"{evaluation.mean_ap:.3f}",
            f"{evaluation.mean_seconds:.2f}",
        ])

    print_table(
        ["variant", "regions", f"P@{args.k}", "mAP", "s/query"],
        rows,
        title="Ablation: merge factor and refined matching phase",
    )


if __name__ == "__main__":
    main()
