"""Migration round-trip smoke: ``walrus migrate`` v2 → v3 → v2.

Builds a small on-disk database in the v2 (pickled) page format, runs
a reference query, then drives the real CLI through a full format
round trip and asserts the contract end to end:

* **Migration is invisible to queries** — after each hop the same
  query must return *bit-identical* matches (names, order, and exact
  ``similarity`` floats) and the commit generation must be unchanged.
* **fsck stays clean** — every hop is followed by ``walrus fsck``.
* **The formats really differ on disk** — the superblock magic is
  checked after each hop (``WALRUSP2`` vs ``WALRUSP3``).

Run with ``--smoke`` for CI sizing (it is the only sizing).  A JSON
summary is printed and the exit status is non-zero on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.cli import main as walrus_main
from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.datasets.generator import DatasetSpec, generate_dataset, render_scene

MIGRATE_PARAMS = ExtractionParameters(window_min=16, window_max=32,
                                      stride=8, cluster_threshold=0.05)


def page_magic(directory: str) -> str:
    path = os.path.join(directory, WalrusDatabase.PAGE_FILE)
    with open(path, "rb") as stream:
        return stream.read(8).decode("ascii")


def query_fingerprint(directory: str,
                      query_image: object) -> tuple[list, int]:
    database = WalrusDatabase.open(directory, readonly=True)
    try:
        result = database.query(query_image, QueryParameters(epsilon=0.085))
        matches = [(match.image_id, match.name, match.similarity)
                   for match in result.matches]
        generation = database.index.store.generation
    finally:
        database.close()
    return matches, generation


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="migration round-trip smoke for `walrus migrate`")
    parser.add_argument("--smoke", action="store_true",
                        help="CI sizing (the only sizing; accepted for "
                             "symmetry with the other harnesses)")
    parser.add_argument("--images", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1999)
    args = parser.parse_args(argv)

    violations: list[str] = []
    dataset = generate_dataset(DatasetSpec(images_per_class=1,
                                           seed=args.seed))
    collection = list(dataset.images)[:args.images]
    query_image = render_scene("flowers", seed=866_866, name="smoke-query")

    with tempfile.TemporaryDirectory(prefix="walrus-migrate-smoke-") as tmp:
        directory = os.path.join(tmp, "db")
        database = WalrusDatabase.create(path=directory,
                                         params=MIGRATE_PARAMS,
                                         page_format=2)
        database.add_images(collection, bulk=True)
        database.checkpoint()
        database.close()

        reference, generation = query_fingerprint(directory, query_image)
        if not reference:
            violations.append("reference query returned no matches")
        hops = (("v2->v3", ["migrate", directory, "--to-format", "3"],
                 "WALRUSP3"),
                ("v3->v2", ["migrate", directory, "--to-format", "2"],
                 "WALRUSP2"))
        for label, argv_hop, magic in hops:
            if walrus_main(argv_hop) != 0:
                violations.append(f"{label}: walrus migrate failed")
                continue
            if page_magic(directory) != magic:
                violations.append(
                    f"{label}: superblock magic is "
                    f"{page_magic(directory)!r}, expected {magic!r}")
            if walrus_main(["fsck", directory]) != 0:
                violations.append(f"{label}: post-migration fsck failed")
            matches, hop_generation = query_fingerprint(directory,
                                                        query_image)
            if matches != reference:
                violations.append(
                    f"{label}: query results changed across migration")
            if hop_generation != generation:
                violations.append(
                    f"{label}: generation moved {generation} -> "
                    f"{hop_generation}")

    summary = {
        "images": len(collection),
        "reference_matches": len(reference),
        "generation": generation,
        "violations": violations,
        "ok": not violations,
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if not violations else 1


if __name__ == "__main__":
    sys.exit(main())
