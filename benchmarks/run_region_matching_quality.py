"""Region-level matching quality on annotated texture collages.

The scene experiments validate WALRUS end to end; this harness
validates the *middle* of the pipeline: are the region pairs that the
epsilon-probe returns actually pairs of the same texture?  Collages
carry exact patch annotations, so every matched pair ``(Q_i, T_j)``
can be judged: correct iff the two regions' dominant patches carry the
same texture id.

Reported per epsilon: pair precision (correct pairs / judged pairs)
and image-level ranking quality (does similarity order track the
number of shared textures?).

Usage: python benchmarks/run_region_matching_quality.py
"""

from __future__ import annotations

import argparse
from typing import Iterator

import numpy as np

from harness_common import RETRIEVAL_PARAMS, print_table, timed
from repro.core.database import WalrusDatabase
from repro.core.parameters import QueryParameters
from repro.core.regions import Region
from repro.datasets.collage import generate_collages, window_texture


def dominant_texture(collage: np.ndarray, region: Region,
                     window_geometry: np.ndarray) -> str | None:
    """The texture most of a region's windows lie on (None if mixed)."""
    votes: dict[str, int] = {}
    for window_index in region_windows(region, window_geometry):
        row, col, size = window_geometry[window_index]
        texture = window_texture(collage, int(row), int(col), int(size))
        if texture is not None:
            votes[texture] = votes.get(texture, 0) + 1
    if not votes:
        return None
    best = max(votes, key=votes.get)
    if votes[best] < 0.6 * sum(votes.values()):
        return None  # no dominant texture: skip from judging
    return best


def region_windows(region: Region,
                   window_geometry: np.ndarray) -> Iterator[int]:
    # Region objects don't retain member window ids (only bitmaps), so
    # approximate: a window belongs to the region if its rect is fully
    # covered by the region's bitmap blocks.
    for index, (row, col, size) in enumerate(window_geometry):
        top = int(row)
        left = int(col)
        bitmap = region.bitmap
        row_edges = (top * bitmap.grid // bitmap.height,
                     min(bitmap.grid - 1,
                         (top + int(size) - 1) * bitmap.grid
                         // bitmap.height))
        col_edges = (left * bitmap.grid // bitmap.width,
                     min(bitmap.grid - 1,
                         (left + int(size) - 1) * bitmap.grid
                         // bitmap.width))
        block = bitmap.blocks[row_edges[0]:row_edges[1] + 1,
                              col_edges[0]:col_edges[1] + 1]
        if block.size and block.all():
            yield index


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=40)
    parser.add_argument("--seed", type=int, default=1999)
    args = parser.parse_args()

    dataset = generate_collages(args.count, seed=args.seed)
    database = WalrusDatabase(RETRIEVAL_PARAMS)
    elapsed, _ = timed(database.add_images, dataset.images, bulk=True)
    print(f"# indexed {args.count} collages "
          f"({database.region_count} regions) in {elapsed:.1f}s")

    from repro.core.signatures import compute_window_set

    queries = dataset.collages[: max(5, args.count // 8)]
    rows = []
    for epsilon in (0.05, 0.07, 0.09):
        judged = 0
        correct = 0
        rank_agreements = 0
        rank_comparisons = 0
        for query_collage in queries:
            query_image = query_collage.image
            query_regions = database.extractor.extract(query_image)
            geometry = compute_window_set(
                query_image, database.params).geometry
            pairs = database._probe(query_regions,
                                    QueryParameters(epsilon=epsilon))
            for image_id, region_pairs in pairs.items():
                target_record = database.images[image_id]
                target_collage = dataset.by_name(target_record.name)
                target_geometry = None
                for q_index, t_index in region_pairs:
                    query_texture = dominant_texture(
                        query_collage, query_regions[q_index], geometry)
                    if target_geometry is None:
                        target_geometry = compute_window_set(
                            target_collage.image,
                            database.params).geometry
                    target_texture = dominant_texture(
                        target_collage,
                        target_record.regions[t_index], target_geometry)
                    if query_texture is None or target_texture is None:
                        continue
                    judged += 1
                    correct += query_texture == target_texture
            # Image-level: similarity order should follow shared-texture
            # counts.
            result = database.query(query_image,
                                    QueryParameters(epsilon=epsilon))
            scored = [(match.similarity,
                       dataset.shared_count(query_image.name, match.name))
                      for match in result
                      if match.name != query_image.name]
            for i in range(len(scored)):
                for j in range(i + 1, len(scored)):
                    if scored[i][1] != scored[j][1]:
                        rank_comparisons += 1
                        if (scored[i][0] >= scored[j][0]) == (
                                scored[i][1] > scored[j][1]):
                            rank_agreements += 1
        rows.append([
            f"{epsilon:.2f}",
            judged,
            f"{correct / judged:.3f}" if judged else "-",
            f"{rank_agreements / rank_comparisons:.3f}"
            if rank_comparisons else "-",
        ])

    print_table(
        ["eps", "judged pairs", "pair precision", "rank agreement"],
        rows,
        title="Region-level matching quality on texture collages",
    )
    precisions = [float(row[2]) for row in rows if row[2] != "-"]
    print(f"\nshape check: matched region pairs are overwhelmingly "
          f"same-texture at tight eps: "
          f"{'OK' if precisions and precisions[0] >= 0.8 else 'MISMATCH'}")


if __name__ == "__main__":
    main()
