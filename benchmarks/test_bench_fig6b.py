"""Figure 6(b): wavelet-signature time vs. signature size.

Paper setup: 256x256 image, 128x128 sliding windows, stride 1,
signature sizes 2..32.  Naive cost is ~flat in the signature size (the
full window transform dominates); DP cost grows with ``s^2`` but stays
well below naive even at s = 32 (the paper measured ~5x there).
"""

from __future__ import annotations

from typing import Any

import pytest

import numpy as np

from repro.wavelets.sliding import (
    dp_sliding_signatures,
    naive_window_signatures,
)

SIGNATURE_SIZES = [2, 8, 32]


@pytest.mark.parametrize("s", SIGNATURE_SIZES)
def test_naive_by_signature_size(benchmark: Any,
                                 bench_channel: np.ndarray,
                                 s: int) -> None:
    benchmark.pedantic(
        naive_window_signatures,
        args=(bench_channel,),
        kwargs={"w": 128, "s": s, "stride": 1},
        rounds=1, iterations=1, warmup_rounds=0,
    )


@pytest.mark.parametrize("s", SIGNATURE_SIZES)
def test_dp_by_signature_size(benchmark: Any,
                              bench_channel: np.ndarray,
                              s: int) -> None:
    benchmark.pedantic(
        dp_sliding_signatures,
        args=(bench_channel,),
        kwargs={"s": s, "w_max": 128, "stride": 1},
        rounds=2, iterations=1, warmup_rounds=0,
    )
