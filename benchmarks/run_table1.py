"""Table 1: query response time and selectivity vs. querying epsilon.

Paper: flower query (image 866) against the 10000-image misc
collection; eps_c = 0.05, YCC, 64x64 windows, 2x2 signatures,
centroid region signatures, quick matching.  As eps grows 0.05 ->
0.09: response time 5.19s -> 19.86s, average matching regions per
query region 15 -> 890.7, distinct candidate images 65 -> 1287 — all
three columns monotonically increasing.

Our collection is synthetic and smaller (scale with
--images-per-class), so absolute values differ; the monotone shape is
the claim under test.

Usage: python benchmarks/run_table1.py [--images-per-class 12]
"""

from __future__ import annotations

from harness_common import (
    build_collection,
    build_database,
    print_table,
    standard_parser,
)
from repro.core.parameters import QueryParameters
from repro.datasets.generator import render_scene

EPSILONS = (0.05, 0.06, 0.07, 0.08, 0.09)


def main() -> None:
    parser = standard_parser(__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="query repetitions per epsilon (median taken)")
    args = parser.parse_args()

    dataset = build_collection(args)
    database = build_database(dataset)
    query = render_scene("flowers", seed=866_866, name="query-866")

    rows = []
    for epsilon in EPSILONS:
        samples = [database.query(query, QueryParameters(epsilon=epsilon))
                   for _ in range(args.repeats)]
        result = samples[-1]
        elapsed = sorted(r.stats.elapsed_seconds for r in samples)[
            args.repeats // 2]
        rows.append([
            f"{epsilon:.2f}",
            f"{elapsed:.3f}",
            f"{result.stats.mean_regions_per_query_region:.1f}",
            result.stats.candidate_images,
        ])

    print_table(
        ["eps", "response time (s)", "avg regions retrieved",
         "distinct images"],
        rows,
        title="Table 1: query response time / selectivity vs. eps",
    )

    times = [float(row[1]) for row in rows]
    regions = [float(row[2]) for row in rows]
    images = [int(row[3]) for row in rows]
    checks = {
        "regions monotone": regions == sorted(regions),
        "images monotone": images == sorted(images),
        "time trend upward": times[-1] >= times[0],
    }
    print("\nshape checks (paper: all columns increase with eps):")
    for name, ok in checks.items():
        print(f"  {name}: {'OK' if ok else 'MISMATCH'}")


if __name__ == "__main__":
    main()
