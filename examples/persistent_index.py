"""Disk-resident index: the durable directory layout, plus updates.

The paper stores region signatures in a *disk-based* R*-tree so the
index scales past memory and survives restarts.  This example shows
the library's persistence story:

* ``WalrusDatabase.create(directory)`` — the managed on-disk layout: a
  checksummed, crash-safe page file for the R*-tree plus
  commit-coupled metadata.  ``checkpoint()`` commits, ``open()``
  reattaches, and the database doubles as a context manager (leaving
  the ``with`` block checkpoints and closes);
* a raw :class:`FilePageStore` under an in-memory-managed database,
  for callers who want to own the file layout themselves;

plus incremental maintenance — adding and removing images after the
initial build, with queries staying consistent throughout.

Run: python examples/persistent_index.py
"""

from __future__ import annotations

import os
import tempfile

from repro import ExtractionParameters, QueryParameters, WalrusDatabase
from repro.datasets import render_scene
from repro.index import FilePageStore

PARAMS = ExtractionParameters(window_min=16, window_max=64, stride=8)
EPSILON = QueryParameters(epsilon=0.085)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="walrus-index-")
    db_dir = os.path.join(workdir, "db")

    scenes = [render_scene(label, seed=seed, name=f"{label}-{seed}")
              for seed, label in enumerate(
                  ["flowers", "flowers", "sunset", "ocean", "forest",
                   "night_sky", "desert", "brick_wall"])]
    query = render_scene("flowers", seed=4242, name="query")

    print(f"creating a durable database in {db_dir}")
    with WalrusDatabase.create(db_dir, params=PARAMS) as database:
        # A fresh database packs the R*-tree with one STR bulk-load
        # pass; pass workers=N to extract regions in parallel.
        database.add_images(scenes)
        database.checkpoint()
        before = database.query(query, EPSILON).names()
        page_file = os.path.join(db_dir, WalrusDatabase.PAGE_FILE)
        print(f"  {len(database)} images, {database.region_count} regions; "
              f"page file is {os.path.getsize(page_file):,} bytes")
        print(f"  query before reopen:  {before[:4]}")
    # The with-block close() checkpointed and released the page store.

    print("\nreopening the directory")
    with WalrusDatabase.open(db_dir) as restored:
        after = restored.query(query, EPSILON).names()
        print(f"  query after reopen:   {after[:4]}")
        assert before == after, "reopen changed query results"

        print("\nincremental maintenance: add one image, remove another")
        restored.add_image(
            render_scene("flowers", seed=777, name="flowers-late"))
        restored.remove_image(0)  # drop the first flower scene
        names = restored.query(query, EPSILON).names()
        print(f"  query after update:   {names[:4]}")
        assert scenes[0].name not in names, "removed image still retrieved"
        restored.index.check_invariants()
        print("  index invariants hold after updates")

    print("\nbring-your-own page store (caller owns the file layout)")
    page_file = os.path.join(workdir, "custom.pages")
    store = FilePageStore(page_file, buffer_pages=64)
    database = WalrusDatabase.create(params=PARAMS, store=store)
    database.add_images(scenes)
    store.sync()
    custom = database.query(query, EPSILON).names()
    assert custom == after[: len(custom)] or custom, "query failed"
    print(f"  {database.region_count} regions in "
          f"{os.path.getsize(page_file):,} bytes")
    store.close()

    print(f"\nartifacts left in {workdir}")


if __name__ == "__main__":
    main()
