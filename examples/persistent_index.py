"""Disk-resident index: file-backed R*-tree pages, save/load, updates.

The paper stores region signatures in a *disk-based* R*-tree so the
index scales past memory and survives restarts.  This example shows
both persistence paths the library offers:

* a :class:`FilePageStore` under the R*-tree, so index nodes live in a
  page file with a small LRU buffer pool (the GiST role);
* whole-database ``save``/``load`` snapshots;

plus incremental maintenance — adding and removing images after the
initial build, with queries staying consistent throughout.

Run: python examples/persistent_index.py
"""

from __future__ import annotations

import os
import tempfile

from repro import ExtractionParameters, QueryParameters, WalrusDatabase
from repro.datasets import render_scene
from repro.index import FilePageStore

PARAMS = ExtractionParameters(window_min=16, window_max=64, stride=8)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="walrus-index-")
    page_file = os.path.join(workdir, "regions.pages")
    snapshot = os.path.join(workdir, "database.pickle")

    print(f"building a database with a file-backed R*-tree "
          f"({page_file})")
    store = FilePageStore(page_file, buffer_pages=64)
    database = WalrusDatabase(PARAMS, store=store)
    scenes = [render_scene(label, seed=seed, name=f"{label}-{seed}")
              for seed, label in enumerate(
                  ["flowers", "flowers", "sunset", "ocean", "forest",
                   "night_sky", "desert", "brick_wall"])]
    database.add_images(scenes)
    store.sync()
    print(f"  {len(database)} images, {database.region_count} regions; "
          f"page file is {os.path.getsize(page_file):,} bytes\n")

    query = render_scene("flowers", seed=4242, name="query")
    before = database.query(query, QueryParameters(epsilon=0.085)).names()
    print(f"query before snapshot: {before[:4]}")

    print(f"\nsnapshotting the whole database to {snapshot}")
    # Snapshots require in-memory pages; migrate by re-adding images is
    # unnecessary — pickling the store object captures the buffer +
    # offsets, but for a clean demonstration we save a memory-backed
    # twin instead.
    twin = WalrusDatabase(PARAMS)
    twin.add_images(scenes)
    twin.save(snapshot)
    restored = WalrusDatabase.load(snapshot)
    after = restored.query(query, QueryParameters(epsilon=0.085)).names()
    print(f"query after reload:    {after[:4]}")
    assert before == after, "snapshot changed query results"

    print("\nincremental maintenance: add one image, remove another")
    new_id = restored.add_image(
        render_scene("flowers", seed=777, name="flowers-late"))
    restored.remove_image(0)  # drop the first flower scene
    names = restored.query(query, QueryParameters(epsilon=0.085)).names()
    print(f"query after update:    {names[:4]}")
    assert scenes[0].name not in names, "removed image still retrieved"
    restored.index.check_invariants()
    print("index invariants hold after updates")

    store.close()
    print(f"\nartifacts left in {workdir}")


if __name__ == "__main__":
    main()
