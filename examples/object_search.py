"""Object search under translation and scaling — the paper's Figure 1.

Section 1 motivates WALRUS with two images whose shared object sits at
different positions and sizes: whole-image signatures miss the match;
region-level matching finds it.  This example constructs that scenario
and runs *three* systems over it:

* **target** — the query's flower, but translated to the opposite
  corner and ~40% larger;
* **color-mimic** — the query's exact color composition (same red and
  yellow pixel budget) scattered as fine speckle: a palette twin with
  no flower anywhere;
* **plain-green** — just the background.

Expected outcome (and the assertion at the bottom):

* the global **color histogram** picks the color-mimic — palettes
  collide, content ignored;
* **WBIIS** (global wavelet signature) ranks the target *last* —
  moving and rescaling the object moved all its coefficient mass;
* **WALRUS** puts the target first with a margin, because the flower's
  regions match wherever (and at whatever size) they appear.

Run: python examples/object_search.py
"""

from __future__ import annotations

import numpy as np

from repro import ExtractionParameters, Image, QueryParameters, WalrusDatabase
from repro.baselines import HistogramRetriever, WbiisRetriever
from repro.imaging import Canvas, draw_flower

GREEN = (0.10, 0.45, 0.12)
RED = (0.85, 0.10, 0.10)
YELLOW = (0.90, 0.80, 0.20)


def scene_with_flower(cy: float, cx: float, radius: float,
                      name: str) -> Image:
    canvas = Canvas(96, 128, GREEN)
    draw_flower(canvas, cy, cx, radius, RED, YELLOW)
    return canvas.to_image(name=name)


def color_mimic(reference: Image, name: str, cell: int = 8) -> Image:
    """Scatter the reference's red/yellow pixel budget as fine speckle —
    identical global color composition, no coherent object."""
    red_fraction = float(((reference.pixels[:, :, 0] > 0.6)
                          & (reference.pixels[:, :, 1] < 0.3)).mean())
    yellow_fraction = float(((reference.pixels[:, :, 0] > 0.6)
                             & (reference.pixels[:, :, 1] > 0.6)).mean())
    canvas = Canvas(96, 128, GREEN)
    rng = np.random.default_rng(1)
    for i in range(96 // cell):
        for j in range(128 // cell):
            u = rng.uniform()
            if u < red_fraction:
                canvas.fill_rect(i * cell, j * cell, cell, cell, RED)
            elif u < red_fraction + yellow_fraction:
                canvas.fill_rect(i * cell, j * cell, cell, cell, YELLOW)
    return canvas.to_image(name=name)


def main() -> None:
    query = scene_with_flower(62, 92, 22, "query")
    target = scene_with_flower(34, 38, 30, "target")
    database_images = [
        target,
        color_mimic(query, "color-mimic"),
        Canvas(96, 128, GREEN).to_image(name="plain-green"),
    ]

    print("query:  flower at bottom-right, radius 22")
    print("target: the same flower at top-left, radius 30 "
          "(translated AND scaled)")
    print("plus a palette twin and a plain background\n")

    walrus = WalrusDatabase(ExtractionParameters(
        window_min=16, window_max=64, stride=8))
    walrus.add_images(database_images)
    walrus_result = walrus.query(
        query, QueryParameters(epsilon=0.05, matching="greedy"))

    histogram = HistogramRetriever(bins_per_channel=8)
    histogram.add_images(database_images)
    wbiis = WbiisRetriever()
    wbiis.add_images(database_images)

    print("WALRUS (region matching, Definition 4.3 similarity):")
    for rank, match in enumerate(walrus_result, start=1):
        print(f"  {rank}. {match.name:14s} {match.similarity:.3f}")
    print("color histogram (global; distance, lower = closer):")
    for rank, (name, distance) in enumerate(histogram.rank(query), 1):
        print(f"  {rank}. {name:14s} {distance:.3f}")
    print("WBIIS (global wavelet signature; distance):")
    for rank, (name, distance) in enumerate(wbiis.rank(query), 1):
        print(f"  {rank}. {name:14s} {distance:.2f}")

    walrus_top = walrus_result.matches[0].name
    histogram_top = histogram.rank(query)[0][0]
    wbiis_last = wbiis.rank(query)[-1][0]
    print(f"\nWALRUS top match:         {walrus_top}")
    print(f"histogram top match:      {histogram_top} "
          f"(fooled by the palette twin)")
    print(f"WBIIS *worst* match:      {wbiis_last} "
          f"(translation+scale moved its coefficient mass)")
    assert walrus_top == "target"
    print("\nWALRUS matches the flower's regions wherever and at "
          "whatever size they appear — the Figure 1 claim.")


if __name__ == "__main__":
    main()
