"""Quickstart: index a handful of images and run a region query.

Demonstrates the three core calls of the public API:

1. ``WalrusDatabase.create(params=ExtractionParameters(...))`` —
   configure the pipeline (color space, window range, clustering
   threshold).  ``create()`` with no path keeps the index in memory;
   ``create("some/dir")`` makes it durable.
2. ``database.add_images([...])`` — decompose each image into regions
   and index their wavelet signatures in the R*-tree (packed in one
   STR bulk-load pass on a fresh database; pass ``workers=N`` to fan
   extraction across processes).
3. ``database.query(image, QueryParameters(...))`` — decompose the
   query the same way and rank database images by the fraction of area
   covered by matching regions (the paper's Definition 4.3).

Run: python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExtractionParameters, QueryParameters, WalrusDatabase
from repro.datasets import render_scene


def main() -> None:
    # Multi-scale windows (Section 5.1); everything else is the paper's
    # Section 6.4 setting (YCC, 2x2 signatures, eps_c = 0.05).
    params = ExtractionParameters(window_min=16, window_max=64, stride=8)
    database = WalrusDatabase.create(params=params)

    print("indexing 10 synthetic scenes ...")
    scenes = [
        render_scene("flowers", seed=1, name="flowers-a"),
        render_scene("flowers", seed=2, name="flowers-b"),
        render_scene("sunset", seed=3, name="sunset-a"),
        render_scene("sunset", seed=4, name="sunset-b"),
        render_scene("ocean", seed=5, name="ocean-a"),
        render_scene("brick_wall", seed=6, name="bricks-a"),
        render_scene("dog_lawn", seed=7, name="dog-a"),
        render_scene("night_sky", seed=8, name="night-a"),
        render_scene("forest", seed=9, name="forest-a"),
        render_scene("desert", seed=10, name="desert-a"),
    ]
    database.add_images(scenes)
    print(f"  {len(database)} images, {database.region_count} regions "
          f"in the index\n")

    query = render_scene("flowers", seed=99, name="my-query")
    print(f"querying with a held-out flower scene "
          f"({query.height}x{query.width}) ...")
    result = database.query(query, QueryParameters(epsilon=0.085))

    stats = result.stats
    print(f"  {stats.query_regions} query regions, "
          f"{stats.regions_retrieved} matching regions, "
          f"{stats.candidate_images} candidate images, "
          f"{stats.elapsed_seconds:.2f}s\n")
    print("ranked matches (Definition 4.3 similarity):")
    for rank, match in enumerate(result, start=1):
        print(f"  {rank}. {match.name:12s} {match.similarity:.3f}")

    best = result.matches[0]
    assert best.name.startswith("flowers"), "expected a flower scene first"
    print("\nthe flower scenes rank first despite their flowers sitting "
          "at different positions and sizes — the behaviour a single "
          "whole-image signature cannot deliver.")


if __name__ == "__main__":
    main()
