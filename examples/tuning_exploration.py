"""Tuning a WALRUS deployment: picking epsilon, merging, refinement.

The paper leaves two thresholds to the user: the clustering epsilon
``eps_c`` and the querying epsilon ``eps`` (Table 1 shows how
selectivity explodes with the latter).  This example shows the
workflow this library supports for choosing them on a new collection:

1. ``database.describe()`` — how fragmented are the regions?
2. ``database.nearest_regions(query, k)`` — the actual distance
   distribution between query regions and their closest database
   regions; a natural ``eps`` sits just past the same-scene distances.
3. Compare query selectivity across ``eps`` values (Table 1 in
   miniature).
4. Turn on region merging and the refined matching phase and observe
   the effect on index size and candidate counts.

Run: python examples/tuning_exploration.py
"""

from __future__ import annotations

from repro import ExtractionParameters, QueryParameters, WalrusDatabase
from repro.datasets import DatasetSpec, generate_dataset, render_scene


def build(params: ExtractionParameters, images) -> WalrusDatabase:
    database = WalrusDatabase.create(params=params)
    database.add_images(images)  # fresh database -> STR bulk load
    return database


def main() -> None:
    dataset = generate_dataset(DatasetSpec(images_per_class=4, seed=77))
    query = render_scene("flowers", seed=4242, name="query")

    base_params = ExtractionParameters(window_min=16, window_max=64,
                                       stride=8)
    database = build(base_params, dataset.images)

    print("== 1. describe() ==")
    info = database.describe()
    for key in ("images", "regions", "regions_per_image_mean",
                "index_height"):
        print(f"  {key}: {info[key]}")

    print("\n== 2. nearest regions: the distance landscape ==")
    nearest = database.nearest_regions(query, k=1)
    distances = [match.distance for match in nearest]
    for q in (0, 25, 50, 75, 100):
        index = min(len(distances) - 1,
                    int(q / 100 * (len(distances) - 1)))
        print(f"  p{q:3d} nearest-region distance: "
              f"{sorted(distances)[index]:.4f}")
    print("  -> an eps just above the low percentiles matches "
          "same-texture regions without dragging in everything")

    print("\n== 3. selectivity vs eps (Table 1 in miniature) ==")
    print(f"  {'eps':>6s} {'regions':>8s} {'images':>7s} {'s':>6s}")
    for epsilon in (0.05, 0.07, 0.09):
        stats = database.query(query,
                               QueryParameters(epsilon=epsilon)).stats
        print(f"  {epsilon:6.2f} {stats.regions_retrieved:8d} "
              f"{stats.candidate_images:7d} "
              f"{stats.elapsed_seconds:6.2f}")

    print("\n== 4. merging and refinement ==")
    merged = build(base_params.with_(merge_factor=1.5), dataset.images)
    refined = build(base_params.with_(refine_signature_size=8),
                    dataset.images)
    plain_stats = database.query(query,
                                 QueryParameters(epsilon=0.085)).stats
    merged_stats = merged.query(query,
                                QueryParameters(epsilon=0.085)).stats
    refined_stats = refined.query(query, QueryParameters(
        epsilon=0.085, refine_epsilon=0.2)).stats
    print(f"  baseline:       {database.region_count:5d} regions, "
          f"{plain_stats.regions_retrieved} retrieved")
    print(f"  merge x1.5:     {merged.region_count:5d} regions, "
          f"{merged_stats.regions_retrieved} retrieved")
    print(f"  refined (8x8):  {refined.region_count:5d} regions, "
          f"{refined_stats.regions_retrieved} retrieved "
          f"(pairs re-checked at eps_r=0.2)")


if __name__ == "__main__":
    main()
