"""File-based workflow: render a collection to disk, index it from
files, and evaluate WALRUS against the single-signature baselines.

This is the full "image database" loop of the paper's Section 6.4 —
images live on disk as PPM files with a ground-truth label file, the
indexer reads them back through the codec layer, and retrieval quality
is scored as precision@k over held-out queries.

Run: python examples/dataset_retrieval.py [directory]
(the directory defaults to a temporary one and is left on disk for
inspection)
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro import ExtractionParameters, QueryParameters, WalrusDatabase
from repro.baselines import HistogramRetriever, JacobsRetriever, WbiisRetriever
from repro.datasets import DatasetSpec, RelevanceJudgments, generate_dataset
from repro.evaluation import (
    baseline_ranker,
    evaluate_retriever,
    make_queries,
    walrus_ranker,
)
from repro.imaging import read_image, write_image


def main() -> None:
    directory = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="walrus-misc-")
    os.makedirs(directory, exist_ok=True)

    print(f"rendering the synthetic 'misc' collection into {directory}")
    dataset = generate_dataset(DatasetSpec(images_per_class=6, seed=2024))
    with open(os.path.join(directory, "labels.txt"), "w") as stream:
        for image, label in zip(dataset.images, dataset.labels):
            write_image(image, os.path.join(directory, f"{image.name}.ppm"))
            stream.write(f"{image.name} {label}\n")
    print(f"  wrote {len(dataset)} PPM files + labels.txt\n")

    judgments = RelevanceJudgments.from_file(
        os.path.join(directory, "labels.txt"))
    print(f"classes: {sorted(judgments.classes())}\n")

    print("indexing from disk ...")
    database = WalrusDatabase(ExtractionParameters(
        window_min=16, window_max=64, stride=8))
    retrievers = {"wbiis": WbiisRetriever(), "jacobs": JacobsRetriever(),
                  "histogram": HistogramRetriever()}
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".ppm"):
            continue
        image = read_image(os.path.join(directory, entry))
        database.add_image(image)
        for retriever in retrievers.values():
            retriever.add_image(image)
    print(f"  WALRUS: {len(database)} images, "
          f"{database.region_count} regions\n")

    queries = make_queries(dataset, per_class=1)
    k = 6
    print(f"{'retriever':12s} {'P@%d' % k:>7s} {'recall':>7s} "
          f"{'mAP':>7s} {'s/query':>8s}")
    rankers = {"WALRUS": walrus_ranker(database,
                                       QueryParameters(epsilon=0.085))}
    rankers.update({name: baseline_ranker(retriever)
                    for name, retriever in retrievers.items()})
    for name, rank in rankers.items():
        evaluation = evaluate_retriever(name, rank, dataset, queries, k=k)
        print(f"{name:12s} {evaluation.mean_precision:7.3f} "
              f"{evaluation.mean_recall:7.3f} {evaluation.mean_ap:7.3f} "
              f"{evaluation.mean_seconds:8.2f}")

    print(f"\ncollection left in {directory} — try the CLI against it:")
    print(f"  walrus index {directory} /tmp/walrus.db "
          f"--window-min 16 --window-max 64")
    print(f"  walrus query /tmp/walrus.db "
          f"{directory}/flowers-0000.ppm --top 10")


if __name__ == "__main__":
    main()
