"""Setup shim: enables legacy editable installs where the `wheel`
package is unavailable (pip's PEP 660 path needs bdist_wheel)."""

from setuptools import setup

setup()
