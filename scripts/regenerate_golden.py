#!/usr/bin/env python
"""Regenerate the golden-extraction fixture.

Run from the repository root after an *intended* numerical change::

    PYTHONPATH=src python scripts/regenerate_golden.py

and commit the rewritten ``tests/fixtures/golden_flower.npz`` together
with the change that motivated it.  The canonical computation lives in
``tests/golden.py`` — this script only serializes its output.
"""

from __future__ import annotations

import os
import sys

import numpy as np

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, ROOT)
sys.path.insert(0, os.path.join(ROOT, "src"))

from tests.golden import GOLDEN_PATH, golden_arrays  # noqa: E402


def main() -> int:
    arrays = golden_arrays()
    path = os.path.join(ROOT, GOLDEN_PATH)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    np.savez_compressed(path, **arrays)
    for name, array in arrays.items():
        print(f"{name:15s} shape={array.shape} dtype={array.dtype}")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
