#!/bin/sh
# Run the full local gate: lint suite, mypy (when installed), tier-1 tests.
# Mirrors the CI `lint` + `tests` jobs; see docs/DEVELOPING.md.
set -eu

cd "$(dirname "$0")/.."

echo "==> python -m tools.lint src/ tools/ benchmarks/ scripts/"
python -m tools.lint src/ tools/ benchmarks/ scripts/

if python -c "import mypy" 2>/dev/null; then
    echo "==> mypy src/repro tools"
    MYPYPATH=src python -m mypy src/repro tools
else
    echo "==> mypy not installed; skipping (pip install -e .[dev] to enable)"
fi

echo "==> tier-1 tests"
PYTHONPATH=src python -m pytest -x -q

echo "==> all checks passed"
