"""CI smoke: ``walrus serve`` with tracing on, end to end.

Builds a tiny database, launches the real daemon subprocess with
``--trace --trace-slow 0`` (every request is "slow", so the flight
recorder force-retains it even if sampling were off), issues one
query over HTTP, and asserts that ``GET /debug/traces`` returns
parseable JSON containing a full ``server.request`` -> ``query`` ->
``probe`` span chain under a single trace id.  SIGTERM must then
drain the daemon cleanly (exit 0).

Usage::

    PYTHONPATH=src python scripts/serve_trace_smoke.py
"""

from __future__ import annotations

import base64
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import urllib.request
from typing import NoReturn

from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters
from repro.datasets.generator import render_scene
from repro.imaging.codecs import write_image

FAST_PARAMS = ExtractionParameters(window_min=16, window_max=32, stride=8,
                                   cluster_threshold=0.05)

BANNER = re.compile(r"serving queries on (http://[\d.]+:\d+)")


def fail(message: str) -> NoReturn:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def build_database(root: str) -> str:
    path = os.path.join(root, "db")
    with WalrusDatabase.create(path, params=FAST_PARAMS) as database:
        database.add_images([
            render_scene("flowers", seed=11, name="a"),
            render_scene("flowers", seed=22, name="b"),
        ])
    return path


def launch(db_path: str) -> tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", db_path,
         "--port", "0", "--trace", "--trace-sample", "1.0",
         "--trace-slow", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    assert process.stdout is not None
    line = process.stdout.readline()
    match = BANNER.search(line)
    if match is None:
        process.kill()
        fail(f"no serve banner, got: {line!r}")
    return process, match.group(1)


def query_once(base_url: str, root: str) -> None:
    image_path = os.path.join(root, "query.ppm")
    write_image(render_scene("flowers", seed=11, name="q"), image_path)
    with open(image_path, "rb") as stream:
        blob = stream.read()
    body = {"image": base64.b64encode(blob).decode("ascii"),
            "format": ".ppm"}
    request = urllib.request.Request(
        base_url + "/query", data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=30) as response:
        payload = json.loads(response.read())
    if not payload.get("matches"):
        fail(f"query returned no matches: {payload}")


def check_traces(base_url: str) -> None:
    with urllib.request.urlopen(base_url + "/debug/traces",
                                timeout=10) as response:
        dump = json.loads(response.read())
    traces = dump.get("traces")
    if not traces:
        fail(f"/debug/traces holds no traces: {dump}")
    trace = traces[-1]
    spans = {span["name"]: span for span in trace["spans"]}
    for name in ("server.request", "query", "extract", "probe", "match"):
        if name not in spans:
            fail(f"span {name!r} missing from trace: {sorted(spans)}")
    if len({span["trace_id"] for span in trace["spans"]}) != 1:
        fail("spans of one request carry different trace ids")
    if spans["probe"]["parent_id"] != spans["query"]["span_id"]:
        fail("probe span not parented under the query span")
    if "slow" not in trace["retained"]:
        fail(f"--trace-slow 0 did not force-retain: {trace['retained']}")
    print(f"trace {trace['trace_id'][:16]}... retained "
          f"{trace['retained']} with {len(trace['spans'])} spans")


def main() -> int:
    with tempfile.TemporaryDirectory() as root:
        db_path = build_database(root)
        process, base_url = launch(db_path)
        try:
            query_once(base_url, root)
            check_traces(base_url)
        finally:
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
        if process.returncode != 0:
            fail(f"daemon exited {process.returncode}:\n{output}")
    print("serve trace smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
