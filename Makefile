# Local development targets; see docs/DEVELOPING.md.

.PHONY: lint typecheck test check

lint:
	python -m tools.lint src/ tools/

typecheck:
	MYPYPATH=src python -m mypy src/repro tools

test:
	PYTHONPATH=src python -m pytest -x -q

check:
	sh scripts/check.sh
