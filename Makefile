# Local development targets; see docs/DEVELOPING.md.

.PHONY: lint typecheck test coverage check bench-history

lint:
	python -m tools.lint src/ tools/ benchmarks/ scripts/

typecheck:
	MYPYPATH=src python -m mypy src/repro tools

test:
	PYTHONPATH=src python -m pytest -x -q

coverage:
	@if python -c "import pytest_cov" 2>/dev/null; then \
		PYTHONPATH=src python -m pytest -q --cov=repro \
			--cov-report=term-missing:skip-covered --cov-fail-under=75; \
	else \
		echo "pytest-cov is not installed (pip install pytest-cov);"; \
		echo "falling back to 'make test' without coverage."; \
		PYTHONPATH=src python -m pytest -x -q; \
	fi

check:
	sh scripts/check.sh

bench-history:
	PYTHONPATH=src python -m tools.bench.history --dir .
