"""End-to-end tests of the ``walrus serve`` HTTP daemon."""

from __future__ import annotations

import base64
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.database import WalrusDatabase
from repro.exceptions import ServerError
from repro.imaging.codecs import write_image
from repro.server import WalrusServer
from tests.conftest import make_flower_image


@pytest.fixture
def db_dir(tmp_path, fast_params):
    directory = str(tmp_path / "db")
    with WalrusDatabase.create(directory, params=fast_params) as database:
        database.add_images([
            make_flower_image(name="a", cx=20),
            make_flower_image(name="b", cx=40),
        ])
    return directory


@pytest.fixture
def query_body(tmp_path):
    path = tmp_path / "query.ppm"
    write_image(make_flower_image(name="q", cx=20), str(path))
    blob = path.read_bytes()
    return {"image": base64.b64encode(blob).decode("ascii"),
            "format": ".ppm"}


def _post(url: str, payload: dict, timeout: float = 10.0) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get(url: str, timeout: float = 10.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


class TestEndpoints:
    def test_query_matches_direct_results(self, db_dir, query_body):
        query = make_flower_image(name="q", cx=20)
        with WalrusDatabase.open(db_dir) as database:
            expected = [(m.image_id, m.name, m.similarity)
                        for m in database.query(query).matches]
        with WalrusServer(db_dir, port=0) as server:
            payload = _post(server.url("/query"), query_body)
        got = [(m["image_id"], m["name"], m["similarity"])
               for m in payload["matches"]]
        assert got == expected
        assert payload["degraded"] is False
        assert payload["generation"] >= 1
        assert payload["stats"]["query_regions"] > 0

    def test_query_with_params_and_explain(self, db_dir, query_body):
        body = dict(query_body, params={"tau": 0.0, "matching": "greedy"},
                    explain=True)
        with WalrusServer(db_dir, port=0) as server:
            payload = _post(server.url("/query"), body)
        assert "report" in payload
        assert payload["report"]["query_regions"] > 0

    def test_batch_reports_per_item_outcomes(self, db_dir, query_body):
        bad = dict(query_body, image="!!!not-base64!!!")
        envelope = {"queries": [query_body, bad]}
        with WalrusServer(db_dir, port=0) as server:
            payload = _post(server.url("/query/batch"), envelope)
        good_result, bad_result = payload["results"]
        assert "matches" in good_result
        assert bad_result["error"] == "bad_request"

    def test_batch_shares_probes_across_duplicate_items(self, db_dir,
                                                        query_body):
        item = dict(query_body, explain=True)
        envelope = {"queries": [item, item]}
        with WalrusServer(db_dir, port=0) as server:
            payload = _post(server.url("/query/batch"), envelope)
        first, second = payload["results"]
        assert first["matches"] == second["matches"]
        assert first["generation"] == second["generation"]
        # The duplicate item rides the first item's tree walks via the
        # batch-scoped probe table instead of probing again.
        assert second["report"]["probe"]["probes_shared"] > 0

    def test_healthz_stats_metrics(self, db_dir):
        with WalrusServer(db_dir, port=0, sessions=2) as server:
            health = json.loads(_get(server.url("/healthz")))
            stats = json.loads(_get(server.url("/stats")))
            metrics = _get(server.url("/metrics"))
        assert health == {"status": "ok"}
        assert stats["sessions"] == 2
        assert stats["idle_sessions"] == 2
        assert stats["admission"]["admitted_total"] == 0
        assert isinstance(metrics.decode("utf-8"), str)


class TestErrors:
    def _status_and_body(self, call) -> tuple[int, dict, dict]:
        with pytest.raises(urllib.error.HTTPError) as info:
            call()
        error = info.value
        return error.code, json.loads(error.read()), dict(error.headers)

    def test_bad_base64_is_400(self, db_dir, query_body):
        bad = dict(query_body, image="!!!")
        with WalrusServer(db_dir, port=0) as server:
            status, body, _ = self._status_and_body(
                lambda: _post(server.url("/query"), bad))
        assert status == 400
        assert body["error"] == "bad_request"

    def test_bad_format_is_400(self, db_dir, query_body):
        bad = dict(query_body, format=".exe")
        with WalrusServer(db_dir, port=0) as server:
            status, body, _ = self._status_and_body(
                lambda: _post(server.url("/query"), bad))
        assert status == 400

    def test_unknown_route_is_404(self, db_dir):
        with WalrusServer(db_dir, port=0) as server:
            status, body, _ = self._status_and_body(
                lambda: _get(server.url("/nope")))
        assert status == 404
        assert body["error"] == "not_found"

    def test_expired_budget_is_504_with_details(self, db_dir, query_body):
        body = dict(query_body, budget_seconds=0.000001)
        with WalrusServer(db_dir, port=0) as server:
            status, payload, _ = self._status_and_body(
                lambda: _post(server.url("/query"), body))
        assert status == 504
        assert payload["error"] == "deadline_exceeded"
        assert payload["budget_seconds"] == pytest.approx(0.000001)
        assert payload["elapsed_seconds"] >= payload["budget_seconds"]
        assert payload["context"]

    def test_overload_is_503_with_retry_after(self, db_dir, query_body):
        with WalrusServer(db_dir, port=0, sessions=1, max_queue=0,
                          queue_timeout_seconds=0.1,
                          retry_after_seconds=0.2) as server:
            url = server.url("/query")
            outcomes: list[object] = []

            def fire() -> None:
                try:
                    outcomes.append(_post(url, query_body))
                except urllib.error.HTTPError as error:
                    outcomes.append((error.code,
                                     json.loads(error.read()),
                                     error.headers.get("Retry-After")))

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
        oks = [o for o in outcomes if isinstance(o, dict)]
        rejections = [o for o in outcomes if isinstance(o, tuple)]
        assert oks, "at least one request must be served"
        assert rejections, "saturation must shed something"
        for status, body, retry_after in rejections:
            assert status == 503
            assert body["error"] == "overloaded"
            assert retry_after is not None
            assert float(retry_after) == pytest.approx(0.2)


class TestLifecycle:
    def test_bind_conflict_is_server_error(self, db_dir):
        with WalrusServer(db_dir, port=0) as server:
            _, port = server.address
            rival = WalrusServer(db_dir, port=port)
            with pytest.raises(ServerError, match="cannot bind"):
                rival.start()
            rival.pool.close()

    def test_double_start_is_error(self, db_dir):
        server = WalrusServer(db_dir, port=0).start()
        try:
            with pytest.raises(ServerError, match="already running"):
                server.start()
        finally:
            server.stop()

    def test_stop_is_idempotent_and_drains(self, db_dir, query_body):
        server = WalrusServer(db_dir, port=0).start()
        url = server.url("/query")
        _post(url, query_body)
        server.stop()
        server.stop()
        assert not server.running
        with pytest.raises(urllib.error.URLError):
            _post(url, query_body, timeout=0.5)

    def test_degraded_queries_marked(self, db_dir, query_body):
        # degrade_at=0.5 with one session: the handler itself holds the
        # only slot, so load is 1.0 >= 0.5 while it runs -> degraded.
        with WalrusServer(db_dir, port=0, sessions=1,
                          degrade_at=0.5,
                          degraded_max_regions=1) as server:
            payload = _post(server.url("/query"), query_body)
        assert payload["degraded"] is True
        assert payload["max_regions"] == 1
        assert payload["stats"]["query_regions"] <= 1
