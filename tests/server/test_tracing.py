"""Distributed tracing across the client/server HTTP boundary.

Client and server run in one process here, so they share the
process-global tracer and flight recorder — a query issued through
:class:`WalrusClient` against a live :class:`WalrusServer` lands both
halves of the trace in the same recorder, stitched together by the
``traceparent`` header that actually travelled over the socket.
"""

from __future__ import annotations

import base64
import json
import urllib.request

import pytest

from repro.core.database import WalrusDatabase
from repro.exceptions import DeadlineExceededError
from repro.imaging.codecs import write_image
from repro.observability import (FlightRecorder, Tracer, get_tracer,
                                 set_tracer)
from repro.server import WalrusClient, WalrusServer
from tests.conftest import make_flower_image


@pytest.fixture
def db_dir(tmp_path, fast_params):
    directory = str(tmp_path / "db")
    with WalrusDatabase.create(directory, params=fast_params) as database:
        database.add_images([
            make_flower_image(name="a", cx=20),
            make_flower_image(name="b", cx=40),
        ])
    return directory


@pytest.fixture
def query_body(tmp_path):
    path = tmp_path / "query.ppm"
    write_image(make_flower_image(name="q", cx=20), str(path))
    blob = path.read_bytes()
    return {"image": base64.b64encode(blob).decode("ascii"),
            "format": ".ppm"}


@pytest.fixture
def tracing():
    """Always-sample tracing installed process-wide for one test."""
    tracer = Tracer(enabled=True, sample_rate=1.0, seed=7,
                    recorder=FlightRecorder(capacity=32, slow_seconds=60.0))
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def one_trace(tracer: Tracer) -> dict:
    dump = tracer.recorder.dump()
    assert len(dump["traces"]) == 1
    return dump["traces"][0]


class TestEndToEnd:
    def test_client_and_server_spans_share_one_trace(self, db_dir,
                                                     query_body, tracing):
        with WalrusServer(db_dir, port=0) as server:
            client = WalrusClient(server.url(""))
            payload = client.query_body(query_body)
        assert payload["matches"]

        trace = one_trace(tracing)
        spans = {span["name"]: span for span in trace["spans"]}
        for name in ("client.request", "server.request",
                     "admission.acquire", "session.acquire",
                     "query", "extract", "probe", "match", "rank"):
            assert name in spans, f"missing span {name}"
        assert len({span["trace_id"] for span in trace["spans"]}) == 1
        # The server half hangs off the client span via the
        # traceparent header that crossed the socket.
        assert spans["server.request"]["parent_id"] \
            == spans["client.request"]["span_id"]
        assert spans["query"]["parent_id"] \
            == spans["server.request"]["span_id"]
        assert spans["probe"]["parent_id"] == spans["query"]["span_id"]
        assert spans["server.request"]["attributes"]["request.status"] \
            == "ok"
        assert spans["client.request"]["attributes"]["tries"] == 1

    def test_explicit_traceparent_header_is_honored(self, db_dir,
                                                    query_body, tracing):
        header = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        with WalrusServer(db_dir, port=0) as server:
            request = urllib.request.Request(
                server.url("/query"),
                data=json.dumps(query_body).encode("utf-8"),
                headers={"Content-Type": "application/json",
                         "traceparent": header},
                method="POST")
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 200
        trace = one_trace(tracing)
        assert trace["trace_id"] == "ab" * 16
        root = next(span for span in trace["spans"]
                    if span["name"] == "server.request")
        assert root["parent_id"] == "cd" * 8

    def test_debug_traces_endpoint_serves_the_recorder(self, db_dir,
                                                       query_body, tracing):
        with WalrusServer(db_dir, port=0) as server:
            client = WalrusClient(server.url(""))
            client.query_body(query_body)
            with urllib.request.urlopen(server.url("/debug/traces"),
                                        timeout=10) as response:
                assert response.status == 200
                dump = json.loads(response.read())
        assert dump["capacity"] == 32
        names = {span["name"]
                 for trace in dump["traces"] for span in trace["spans"]}
        assert "probe" in names and "server.request" in names

    def test_deadline_exceeded_is_force_retained_unsampled(self, db_dir,
                                                           query_body):
        tracer = Tracer(enabled=True, sample_rate=0.0, seed=7,
                        recorder=FlightRecorder(capacity=8,
                                                slow_seconds=60.0))
        previous = set_tracer(tracer)
        try:
            with WalrusServer(db_dir, port=0) as server:
                client = WalrusClient(server.url(""))
                with pytest.raises(DeadlineExceededError):
                    client.query_body(dict(query_body,
                                           budget_seconds=1e-6))
            dump = tracer.recorder.dump()
        finally:
            set_tracer(previous)
        retained = {reason for trace in dump["traces"]
                    for reason in trace["retained"]}
        assert "deadline" in retained
        statuses = {span["status"] for trace in dump["traces"]
                    for span in trace["spans"]}
        assert "deadline_exceeded" in statuses

    def test_write_trace_dump_lands_on_disk(self, db_dir, query_body,
                                            tracing, tmp_path):
        target = str(tmp_path / "traces.json")
        with WalrusServer(db_dir, port=0,
                          trace_dump_path=target) as server:
            client = WalrusClient(server.url(""))
            client.query_body(query_body)
            assert server.write_trace_dump() == target
        with open(target, encoding="utf-8") as stream:
            dump = json.load(stream)
        assert len(dump["traces"]) == 1


def _strip_timings(node):
    """The report with every float zeroed, structure intact."""
    if isinstance(node, dict):
        return {key: _strip_timings(value) for key, value in node.items()}
    if isinstance(node, list):
        return [_strip_timings(item) for item in node]
    if isinstance(node, float):
        return 0.0
    return node


class TestExplainParity:
    def test_explain_report_matches_with_tracing_on(self, db_dir,
                                                    query_body):
        body = dict(query_body, explain=True)

        def run() -> dict:
            with WalrusServer(db_dir, port=0) as server:
                return WalrusClient(server.url("")).query_body(body)

        assert not get_tracer().enabled
        baseline = run()
        tracer = Tracer(enabled=True, sample_rate=1.0, seed=7,
                        recorder=FlightRecorder(capacity=8,
                                                slow_seconds=60.0))
        previous = set_tracer(tracer)
        try:
            traced = run()
        finally:
            set_tracer(previous)
        # Wall-clock timings differ run to run; everything else —
        # stage names, counters, matches, report shape — must not.
        assert _strip_timings(traced["report"]) \
            == _strip_timings(baseline["report"])
        assert traced["matches"] == baseline["matches"]
