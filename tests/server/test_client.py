"""The retrying HTTP client: backoff math and live-server behavior."""

from __future__ import annotations

import threading

import pytest

from repro.core.database import WalrusDatabase
from repro.exceptions import ServerError
from repro.imaging.codecs import write_image
from repro.server import (RequestFailed, RetriesExhausted, RetryPolicy,
                          WalrusClient, WalrusServer)
from tests.conftest import make_flower_image


@pytest.fixture
def db_dir(tmp_path, fast_params):
    directory = str(tmp_path / "db")
    with WalrusDatabase.create(directory, params=fast_params) as database:
        database.add_images([
            make_flower_image(name="a", cx=20),
            make_flower_image(name="b", cx=40),
        ])
    return directory


@pytest.fixture
def query_image(tmp_path):
    path = tmp_path / "query.ppm"
    write_image(make_flower_image(name="q", cx=20), str(path))
    return str(path)


class TestRetryPolicy:
    def test_delays_grow_exponentially_within_cap(self):
        policy = RetryPolicy(base_delay_seconds=0.1, max_delay_seconds=0.5,
                             seed=7)
        delays = [policy.delay(attempt) for attempt in range(5)]
        # Jitter is at most +25%, so each base doubling still dominates.
        assert delays[0] < delays[1] < delays[2]
        assert all(delay <= 0.5 * 1.25 for delay in delays)

    def test_retry_after_floors_the_delay(self):
        policy = RetryPolicy(base_delay_seconds=0.01, seed=0)
        assert policy.delay(0, retry_after=0.9) >= 0.9

    def test_jitter_is_seeded(self):
        first = [RetryPolicy(seed=3).delay(i) for i in range(4)]
        second = [RetryPolicy(seed=3).delay(i) for i in range(4)]
        assert first == second

    def test_validation(self):
        with pytest.raises(ServerError):
            RetryPolicy(attempts=0)
        with pytest.raises(ServerError):
            RetryPolicy(budget_seconds=0.0)


class TestClientAgainstLiveServer:
    def test_query_roundtrip(self, db_dir, query_image):
        with WalrusServer(db_dir, port=0) as server:
            client = WalrusClient(server.url())
            payload = client.query(query_image)
        names = [match["name"] for match in payload["matches"]]
        assert "a" in names
        assert payload["degraded"] is False

    def test_healthz_and_stats(self, db_dir):
        with WalrusServer(db_dir, port=0) as server:
            client = WalrusClient(server.url())
            assert client.healthz() == {"status": "ok"}
            assert client.stats()["sessions"] == 4

    def test_batch(self, db_dir, query_image):
        with WalrusServer(db_dir, port=0) as server:
            client = WalrusClient(server.url())
            body = WalrusClient.encode_image(query_image)
            payload = client.query_batch([body, body])
        assert len(payload["results"]) == 2
        assert all("matches" in item for item in payload["results"])

    def test_bad_request_is_terminal_not_retried(self, db_dir):
        with WalrusServer(db_dir, port=0) as server:
            client = WalrusClient(server.url())
            with pytest.raises(RequestFailed) as info:
                client.query_body({"image": "!!!", "format": ".ppm"})
        assert info.value.status == 400

    def test_overload_retries_until_success(self, db_dir, query_image):
        # One slot, no queue: a slow occupant forces 503s, then the
        # retrying client lands once the slot frees.
        with WalrusServer(db_dir, port=0, sessions=1, max_queue=0,
                          queue_timeout_seconds=0.05,
                          retry_after_seconds=0.05) as server:
            server.admission.try_acquire()  # occupy the only slot

            def free_later() -> None:
                server.admission.release()

            timer = threading.Timer(0.3, free_later)
            timer.start()
            try:
                client = WalrusClient(
                    server.url(),
                    retry=RetryPolicy(attempts=20,
                                      base_delay_seconds=0.05,
                                      max_delay_seconds=0.2,
                                      budget_seconds=10.0, seed=1))
                payload = client.query(query_image)
            finally:
                timer.cancel()
        assert payload["matches"]

    def test_retries_exhausted_reports_last_error(self, db_dir, query_image):
        with WalrusServer(db_dir, port=0, sessions=1, max_queue=0,
                          queue_timeout_seconds=0.02,
                          retry_after_seconds=0.01) as server:
            server.admission.try_acquire()  # never released
            client = WalrusClient(
                server.url(),
                retry=RetryPolicy(attempts=3, base_delay_seconds=0.01,
                                  max_delay_seconds=0.02,
                                  budget_seconds=5.0, seed=1))
            try:
                with pytest.raises(RetriesExhausted) as info:
                    client.query(query_image)
            finally:
                server.admission.release()
        assert info.value.tries == 3
        assert "overloaded" in info.value.last_error

    def test_dead_port_fails_fast(self):
        client = WalrusClient(
            "http://127.0.0.1:1",  # reserved port, nothing listens
            timeout_seconds=0.2,
            retry=RetryPolicy(attempts=2, base_delay_seconds=0.01,
                              max_delay_seconds=0.02, budget_seconds=1.0,
                              seed=0))
        with pytest.raises(RetriesExhausted):
            client.healthz()
