"""Reader sessions: snapshot pinning, staleness, the pool."""

from __future__ import annotations

import pytest

from repro.core.database import WalrusDatabase
from repro.exceptions import DatabaseError, ServerError
from repro.server import ReaderSession, SessionPool
from tests.conftest import make_flower_image


@pytest.fixture
def db_dir(tmp_path, fast_params):
    directory = str(tmp_path / "db")
    with WalrusDatabase.create(directory, params=fast_params) as database:
        database.add_images([
            make_flower_image(name="a", cx=20),
            make_flower_image(name="b", cx=40),
        ])
    return directory


def _names(result) -> list[str]:
    return [match.name for match in result.matches]


class TestReaderSession:
    def test_session_matches_direct_query(self, db_dir):
        query = make_flower_image(name="q", cx=20)
        with WalrusDatabase.open(db_dir) as database:
            expected = _names(database.query(query))
        session = ReaderSession(db_dir)
        try:
            assert _names(session.query(query)) == expected
        finally:
            session.close()

    def test_readonly_handle_cannot_checkpoint(self, db_dir):
        session = ReaderSession(db_dir)
        try:
            assert session.database.readonly
            with pytest.raises(DatabaseError, match="readonly"):
                session.database.checkpoint()
        finally:
            session.close()

    def test_snapshot_pinned_across_writer_commit(self, db_dir):
        query = make_flower_image(name="q", cx=20)
        session = ReaderSession(db_dir)
        try:
            before = _names(session.query(query))
            assert not session.stale()
            with WalrusDatabase.open(db_dir) as writer:
                writer.add_image(make_flower_image(name="late", cx=20))
                writer.checkpoint()
            # The pinned snapshot must not see the new image...
            assert _names(session.query(query)) == before
            assert "late" not in _names(session.query(query))
            # ...but staleness is detectable, and refresh catches up.
            assert session.stale()
            session.refresh()
            assert "late" in _names(session.query(query))
            assert not session.stale()
        finally:
            session.close()

    def test_generation_advances_on_refresh(self, db_dir):
        session = ReaderSession(db_dir)
        try:
            pinned = session.generation
            with WalrusDatabase.open(db_dir) as writer:
                writer.add_image(make_flower_image(name="x"))
                writer.checkpoint()
            session.refresh()
            assert session.generation > pinned
        finally:
            session.close()


class TestSessionPool:
    def test_acquire_release_cycle(self, db_dir):
        with SessionPool(db_dir, size=2) as pool:
            first = pool.acquire(timeout=1.0)
            second = pool.acquire(timeout=1.0)
            assert pool.idle == 0
            pool.release(first)
            pool.release(second)
            assert pool.idle == 2

    def test_acquire_refreshes_stale_sessions(self, db_dir):
        query = make_flower_image(name="q", cx=20)
        with SessionPool(db_dir, size=1) as pool:
            session = pool.acquire(timeout=1.0)
            pool.release(session)
            with WalrusDatabase.open(db_dir) as writer:
                writer.add_image(make_flower_image(name="late", cx=20))
                writer.checkpoint()
            session = pool.acquire(timeout=1.0)
            try:
                assert pool.refreshes == 1
                assert "late" in _names(session.query(query))
            finally:
                pool.release(session)

    def test_exhausted_pool_times_out(self, db_dir):
        with SessionPool(db_dir, size=1) as pool:
            session = pool.acquire(timeout=1.0)
            with pytest.raises(ServerError, match="idle"):
                pool.acquire(timeout=0.05)
            pool.release(session)

    def test_closed_pool_rejects_acquire(self, db_dir):
        pool = SessionPool(db_dir, size=1)
        pool.close()
        with pytest.raises(ServerError, match="closed"):
            pool.acquire(timeout=0.05)
        pool.close()  # idempotent

    def test_inflight_session_closes_on_release_after_close(self, db_dir):
        pool = SessionPool(db_dir, size=1)
        session = pool.acquire(timeout=1.0)
        pool.close()
        pool.release(session)
        assert session.database.closed

    def test_size_validation(self, db_dir):
        with pytest.raises(ServerError):
            SessionPool(db_dir, size=0)
