"""Admission control: bounded concurrency, bounded queue, shedding."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import InvalidParameterError, OverloadedError
from repro.server import AdmissionController, DegradationPolicy


class TestAdmissionController:
    def test_free_slot_admits_even_with_zero_queue(self):
        controller = AdmissionController(max_concurrency=1, max_queue=0)
        with controller.slot():
            assert controller.active == 1
        assert controller.active == 0
        assert controller.admitted_total == 1

    def test_saturated_zero_queue_sheds_immediately(self):
        controller = AdmissionController(max_concurrency=1, max_queue=0,
                                         retry_after_seconds=0.25)
        controller.try_acquire()
        with pytest.raises(OverloadedError) as info:
            controller.try_acquire()
        assert info.value.retry_after_seconds == 0.25
        assert controller.rejected_total == 1
        controller.release()

    def test_queue_wait_timeout_sheds(self):
        controller = AdmissionController(max_concurrency=1, max_queue=2,
                                         queue_timeout_seconds=0.05)
        controller.try_acquire()
        with pytest.raises(OverloadedError, match="no execution slot"):
            controller.try_acquire()
        assert controller.waiting == 0  # the waiter cleaned up
        controller.release()

    def test_queued_request_gets_freed_slot(self):
        controller = AdmissionController(max_concurrency=1, max_queue=2,
                                         queue_timeout_seconds=5.0)
        controller.try_acquire()
        outcome: list[str] = []

        def waiter() -> None:
            try:
                controller.try_acquire()
                outcome.append("admitted")
                controller.release()
            except OverloadedError:
                outcome.append("shed")

        thread = threading.Thread(target=waiter)
        thread.start()
        controller.release()
        thread.join(timeout=5.0)
        assert outcome == ["admitted"]
        assert controller.admitted_total == 2

    def test_full_queue_sheds_new_arrivals(self):
        controller = AdmissionController(max_concurrency=1, max_queue=1,
                                         queue_timeout_seconds=1.0)
        controller.try_acquire()
        gate = threading.Event()
        results: list[str] = []

        def queued() -> None:
            gate.set()
            try:
                controller.try_acquire()
                results.append("admitted")
                controller.release()
            except OverloadedError:
                results.append("shed")

        thread = threading.Thread(target=queued)
        thread.start()
        assert gate.wait(timeout=5.0)
        # Spin until the thread occupies the queue slot.
        for _ in range(1000):
            if controller.waiting:
                break
            threading.Event().wait(0.001)
        with pytest.raises(OverloadedError, match="queue full"):
            controller.try_acquire()
        controller.release()
        thread.join(timeout=5.0)
        assert results == ["admitted"]

    def test_load_counts_active_and_waiting(self):
        controller = AdmissionController(max_concurrency=2, max_queue=4)
        assert controller.load() == 0.0
        controller.try_acquire()
        assert controller.load() == 0.5
        controller.try_acquire()
        assert controller.load() == 1.0
        controller.release()
        controller.release()

    def test_snapshot_shape(self):
        controller = AdmissionController(max_concurrency=3, max_queue=7)
        snapshot = controller.snapshot()
        assert snapshot["max_concurrency"] == 3
        assert snapshot["max_queue"] == 7
        assert snapshot["active"] == 0

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            AdmissionController(max_concurrency=0)
        with pytest.raises(InvalidParameterError):
            AdmissionController(max_queue=-1)
        with pytest.raises(InvalidParameterError):
            AdmissionController(queue_timeout_seconds=0.0)


class TestDegradationPolicy:
    def test_no_cap_when_idle(self):
        controller = AdmissionController(max_concurrency=2)
        policy = DegradationPolicy(degrade_at=1.0, degraded_max_regions=4)
        assert policy.max_regions(controller) is None

    def test_caps_at_watermark(self):
        controller = AdmissionController(max_concurrency=1, max_queue=4)
        policy = DegradationPolicy(degrade_at=1.0, degraded_max_regions=4)
        controller.try_acquire()
        assert policy.max_regions(controller) == 4
        controller.release()

    def test_only_tightens_requested_cap(self):
        controller = AdmissionController(max_concurrency=1, max_queue=4)
        policy = DegradationPolicy(degrade_at=1.0, degraded_max_regions=4)
        controller.try_acquire()
        assert policy.max_regions(controller, requested=2) == 2
        assert policy.max_regions(controller, requested=9) == 4
        controller.release()
        assert policy.max_regions(controller, requested=9) == 9

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            DegradationPolicy(degrade_at=0.0)
        with pytest.raises(InvalidParameterError):
            DegradationPolicy(degraded_max_regions=0)
