"""Property test: reader snapshots are immune to writer interleaving.

The serve daemon's correctness story rests on one claim: a
:class:`~repro.server.sessions.ReaderSession` opened at commit N
answers every query from commit N's state, no matter what the writer
does afterwards — adds, checkpoints, even a full ``compact()`` that
``os.replace``s the heap file out from under the reader's fd.

Hypothesis drives randomized writer schedules against pinned readers
and compares every answer with a quiesced reference database opened
read-only at the same commit.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters
from repro.server import ReaderSession
from tests.conftest import make_flower_image

FAST = ExtractionParameters(window_min=16, window_max=32, stride=8,
                            cluster_threshold=0.05)

#: Writer operations a schedule is drawn from.  ``add`` ingests a new
#: image + checkpoint (a new committed generation); ``checkpoint`` is
#: a redundant commit; ``compact`` rewrites and replaces the heap
#: file, the harshest thing a writer can do to a live reader.
OPS = st.lists(st.sampled_from(["add", "checkpoint", "compact"]),
               min_size=1, max_size=4)


def _build(tmp_path_factory) -> str:
    directory = str(tmp_path_factory.mktemp("interleave") / "db")
    with WalrusDatabase.create(directory, params=FAST) as database:
        database.add_images([
            make_flower_image(name="seed-a", cx=20),
            make_flower_image(name="seed-b", cx=40),
        ])
    return directory


def _answer(database_or_session, image) -> list[tuple[str, float]]:
    result = database_or_session.query(image)
    return [(match.name, round(match.similarity, 9))
            for match in result.matches]


class TestSnapshotInterleaving:
    @pytest.fixture(scope="class")
    def query_image(self):
        return make_flower_image(name="probe", cx=20)

    @given(ops=OPS)
    @settings(max_examples=10, deadline=None)
    def test_pinned_reader_ignores_writer_schedule(
            self, tmp_path_factory, query_image, ops):
        directory = _build(tmp_path_factory)
        session = ReaderSession(directory)
        try:
            reference = _answer(session, query_image)
            serial = 0
            with WalrusDatabase.open(directory) as writer:
                for op in ops:
                    if op == "add":
                        serial += 1
                        writer.add_image(make_flower_image(
                            name=f"w{serial}", cx=20))
                        writer.checkpoint()
                    elif op == "checkpoint":
                        writer.checkpoint()
                    else:
                        writer.checkpoint()
                        writer.index.store.compact()
                    # After EVERY writer step the pinned snapshot
                    # still answers exactly as it did at open time.
                    assert _answer(session, query_image) == reference
            # A refreshed session agrees with a fresh readonly open.
            session.refresh()
            with WalrusDatabase.open(directory, readonly=True) as quiesced:
                assert _answer(session, query_image) \
                    == _answer(quiesced, query_image)
        finally:
            session.close()

    @given(ops=OPS)
    @settings(max_examples=6, deadline=None)
    def test_refresh_between_steps_tracks_the_writer(
            self, tmp_path_factory, query_image, ops):
        directory = _build(tmp_path_factory)
        session = ReaderSession(directory)
        try:
            serial = 0
            with WalrusDatabase.open(directory) as writer:
                for op in ops:
                    if op == "add":
                        serial += 1
                        writer.add_image(make_flower_image(
                            name=f"w{serial}", cx=20))
                    writer.checkpoint()
                    if op == "compact":
                        writer.index.store.compact()
                    if session.stale():
                        session.refresh()
                    with WalrusDatabase.open(directory,
                                             readonly=True) as quiesced:
                        assert _answer(session, query_image) \
                            == _answer(quiesced, query_image)
        finally:
            session.close()
