"""Tests for retrieval metrics."""

from __future__ import annotations

import pytest

from repro.evaluation.metrics import (
    average_precision,
    precision_at_k,
    r_precision,
    recall_at_k,
    reciprocal_rank,
)
from repro.exceptions import ParameterError

RANKED = ["a", "x", "b", "y", "c"]
RELEVANT = {"a", "b", "c"}


class TestPrecision:
    def test_basic(self):
        assert precision_at_k(RANKED, RELEVANT, 1) == 1.0
        assert precision_at_k(RANKED, RELEVANT, 2) == 0.5
        assert precision_at_k(RANKED, RELEVANT, 5) == pytest.approx(3 / 5)

    def test_short_list_counts_misses(self):
        assert precision_at_k(["a"], RELEVANT, 4) == 0.25

    def test_paper_figures(self):
        """Figure 7 vs Figure 8: 7/14 vs 13/14 related images."""
        wbiis = ["r"] * 7 + ["x"] * 7
        walrus = ["r"] * 13 + ["x"]
        relevant = {"r"}
        # (duplicates in a ranked list are unrealistic but fine for
        # arithmetic checking)
        assert precision_at_k(wbiis, relevant, 14) == pytest.approx(0.5)
        assert precision_at_k(walrus, relevant, 14) == pytest.approx(13 / 14)

    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            precision_at_k(RANKED, RELEVANT, 0)


class TestRecall:
    def test_basic(self):
        assert recall_at_k(RANKED, RELEVANT, 3) == pytest.approx(2 / 3)
        assert recall_at_k(RANKED, RELEVANT, 5) == 1.0

    def test_empty_relevant_rejected(self):
        with pytest.raises(ParameterError):
            recall_at_k(RANKED, set(), 3)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(["a", "b", "c"], RELEVANT) == 1.0

    def test_worst_ranking(self):
        assert average_precision(["x", "y", "z"], RELEVANT) == 0.0

    def test_interleaved(self):
        # hits at ranks 1, 3, 5 -> (1/1 + 2/3 + 3/5) / 3
        expected = (1.0 + 2 / 3 + 3 / 5) / 3
        assert average_precision(RANKED, RELEVANT) == pytest.approx(expected)

    def test_missing_relevant_penalized(self):
        assert average_precision(["a"], RELEVANT) == pytest.approx(1 / 3)

    def test_empty_relevant_rejected(self):
        with pytest.raises(ParameterError):
            average_precision(RANKED, set())


class TestOtherMetrics:
    def test_reciprocal_rank(self):
        assert reciprocal_rank(RANKED, {"b"}) == pytest.approx(1 / 3)
        assert reciprocal_rank(RANKED, {"missing"}) == 0.0

    def test_r_precision(self):
        assert r_precision(RANKED, RELEVANT) == pytest.approx(2 / 3)

    def test_r_precision_empty(self):
        with pytest.raises(ParameterError):
            r_precision(RANKED, set())
