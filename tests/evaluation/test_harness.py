"""Tests for the evaluation harness."""

from __future__ import annotations

import pytest

from repro.baselines.histogram import HistogramRetriever
from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.datasets.generator import DatasetSpec, generate_dataset
from repro.evaluation.harness import (
    baseline_ranker,
    evaluate_retriever,
    make_queries,
    walrus_ranker,
)
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_dataset(DatasetSpec(
        classes=("flowers", "night_sky", "ocean"),
        images_per_class=3, seed=23))


class TestMakeQueries:
    def test_one_per_class(self, tiny_dataset):
        queries = make_queries(tiny_dataset, per_class=1)
        assert len(queries) == 3
        labels = [label for label, _ in queries]
        assert labels == list(tiny_dataset.spec.classes)

    def test_multiple_per_class(self, tiny_dataset):
        queries = make_queries(tiny_dataset, per_class=2)
        assert len(queries) == 6
        names = [image.name for _, image in queries]
        assert len(set(names)) == 6

    def test_queries_not_in_dataset(self, tiny_dataset):
        dataset_names = {image.name for image in tiny_dataset.images}
        for _, image in make_queries(tiny_dataset):
            assert image.name not in dataset_names

    def test_rejects_bad_per_class(self, tiny_dataset):
        with pytest.raises(ParameterError):
            make_queries(tiny_dataset, per_class=0)


class TestEvaluateRetriever:
    def test_oracle_retriever_scores_one(self, tiny_dataset):
        """A retriever that returns exactly the relevant set gets
        P == recall == AP == 1 at k == class size."""

        def oracle(image):
            label = image.name.split("-")[1]
            return sorted(tiny_dataset.relevant_names(label))

        evaluation = evaluate_retriever("oracle", oracle, tiny_dataset,
                                        make_queries(tiny_dataset), k=3)
        assert evaluation.mean_precision == 1.0
        assert evaluation.mean_recall == 1.0
        assert evaluation.mean_ap == 1.0

    def test_adversarial_retriever_scores_zero(self, tiny_dataset):
        def nothing(image):
            return []

        evaluation = evaluate_retriever("empty", nothing, tiny_dataset,
                                        make_queries(tiny_dataset), k=3)
        assert evaluation.mean_precision == 0.0
        assert evaluation.mean_ap == 0.0

    def test_by_label_breakdown(self, tiny_dataset):
        def oracle(image):
            label = image.name.split("-")[1]
            return sorted(tiny_dataset.relevant_names(label))

        evaluation = evaluate_retriever("oracle", oracle, tiny_dataset,
                                        make_queries(tiny_dataset), k=3)
        assert set(evaluation.by_label()) == set(tiny_dataset.spec.classes)

    def test_rejects_empty_queries(self, tiny_dataset):
        with pytest.raises(ParameterError):
            evaluate_retriever("x", lambda image: [], tiny_dataset, [],
                               k=3)


class TestAdapters:
    def test_walrus_ranker(self, tiny_dataset):
        database = WalrusDatabase(ExtractionParameters(
            window_min=16, window_max=32, stride=8))
        database.add_images(tiny_dataset.images)
        rank = walrus_ranker(database, QueryParameters(epsilon=0.1))
        queries = make_queries(tiny_dataset)
        evaluation = evaluate_retriever("walrus", rank, tiny_dataset,
                                        queries, k=3)
        assert evaluation.mean_precision > 0.3

    def test_baseline_ranker(self, tiny_dataset):
        retriever = HistogramRetriever()
        retriever.add_images(tiny_dataset.images)
        rank = baseline_ranker(retriever)
        ranked = rank(tiny_dataset.images[0])
        assert len(ranked) == len(tiny_dataset)
        assert ranked[0] == tiny_dataset.images[0].name
